"""Host interpreter.

Executes the host portion of a compiled program, dispatching OpenACC
constructs to the runtime:

* ``data`` regions run their memory plans around the wrapped statement;
* compute regions run their :class:`KernelPlan` on the simulated device
  (the region's statements never execute on the host unless OpenACC is
  disabled — the sequential reference mode);
* ``update``/``wait`` carriers hit the runtime directly;
* instrumentation calls inserted by the check-insertion pass
  (``__check_read`` etc.) route to the coherence tracker;
* verification markers (``__verify_*``) route to the attached
  :class:`VerifySession` hooks.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

import numpy as np

from repro.compiler.driver import CompiledProgram, compile_ast
from repro.compiler.kernelgen import KernelPlan
from repro.device.engine import Schedule
from repro.device.reduction import combine
from repro.errors import (
    ChaosFault,
    InterpError,
    TransferCorruptionError,
    WatchdogTimeout,
)
from repro.interp.values import HostEnv
from repro.lang import ast, semantics
from repro.runtime.accrt import AccRuntime
from repro.runtime.profiler import CTR_LAUNCH_DEGRADED


class VerifySession:
    """Hook interface the kernel-verification harness implements."""

    def begin(self, kernel: str) -> None:  # pragma: no cover - interface
        pass

    def redirect(self, kernel: str, var: str, host: np.ndarray) -> np.ndarray:
        return host  # pragma: no cover - interface

    def redirect_scalar(self, kernel: str, var: str, value) -> None:
        pass  # pragma: no cover - interface

    def compare(self, kernel: str, var: str) -> None:  # pragma: no cover
        pass

    def end(self, kernel: str) -> None:  # pragma: no cover - interface
        pass


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value


# Flush CPU-step accounting to the profiler in batches of this many.
_FLUSH_EVERY = 4096


class Interp:
    """One program execution."""

    def __init__(
        self,
        compiled: CompiledProgram,
        runtime: Optional[AccRuntime] = None,
        params: Optional[Dict[str, object]] = None,
        acc_enabled: bool = True,
        schedule: Optional[Schedule] = None,
        verify: Optional[VerifySession] = None,
        ctx=None,
    ):
        self.compiled = compiled
        self.ctx = ctx
        self.runtime = runtime or AccRuntime(ctx=ctx)
        self.params = dict(params or {})
        self.acc_enabled = acc_enabled
        self.schedule = schedule
        self.verify = verify
        self.env = HostEnv(self.params, call_handler=self._handle_call)
        self._cpu_steps = 0
        self._verify_kernel: Optional[str] = None
        # Phase-sampled execution: attach a sampler when the context asks
        # for one.  ``None`` (the default) leaves every loop untouched.
        self.sampler = None
        sampling = getattr(ctx, "sampling", None) if ctx is not None else None
        if sampling is not None:
            from repro.errors import SamplingConflictError
            from repro.sampling import PhaseSampler

            if self.runtime.chaos is not None:
                raise SamplingConflictError(
                    "phase sampling cannot run under chaos fault injection: "
                    "skipped iterations would starve the stochastic draw "
                    "sequence")
            if getattr(self.runtime.device.config, "delta_transfers", False):
                raise SamplingConflictError(
                    "phase sampling cannot run with delta transfers: "
                    "skipped kernel launches leave the dirty-interval map "
                    "(and host data) behind the modeled execution, so "
                    "delta-planned byte counts would diverge")
            if getattr(self.runtime, "ndevices", 1) > 1:
                from repro.errors import ShardingConflictError

                raise ShardingConflictError(
                    "phase sampling cannot run with --devices "
                    f"{self.runtime.ndevices}: fast-forwarded iterations "
                    "skip the halo exchanges that keep peer replicas "
                    "coherent (run with --devices 1)")
            self.sampler = PhaseSampler(sampling, self.runtime)
        # Checkpoint/rollback recovery: attach a manager when the context
        # carries an enabled CheckpointConfig.  None (the default) keeps
        # every loop on the historical path.
        self.ckpt = None
        ckpt_cfg = getattr(ctx, "checkpoint", None) if ctx is not None else None
        if ckpt_cfg is not None and ckpt_cfg.enabled:
            from repro.errors import CheckpointConflictError
            from repro.runtime.checkpoint import CheckpointManager

            if self.sampler is not None:
                raise CheckpointConflictError(
                    "checkpointing cannot run with phase sampling: skipped "
                    "iterations have no concrete state to snapshot, so a "
                    "rollback could not replay them")
            self.ckpt = CheckpointManager(
                ckpt_cfg, self.runtime, self.env,
                program=getattr(compiled.program, "name", "") or "")

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self) -> HostEnv:
        for decl in self.compiled.program.decls:
            value = semantics.evaluate(decl.init, self.env) if decl.init is not None else None
            self.env.declare(decl.name, decl.ctype, value)
        try:
            self.exec_stmt(self.compiled.main.body)
        except _Return:
            pass
        self._flush_cpu()
        if self.ckpt is not None:
            self.ckpt.finish()
        return self.env

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    def exec_stmt(self, stmt: ast.Stmt) -> None:
        if self.acc_enabled and stmt.pragmas:
            acc = [p for p in stmt.pragmas if p.namespace == "acc"]
            if acc:
                self._exec_with_pragmas(stmt, acc)
                return
        self._exec_plain(stmt)

    def _exec_with_pragmas(self, stmt: ast.Stmt, pragmas: List) -> None:
        if not pragmas:
            self._exec_plain(stmt)
            return
        directive, rest = pragmas[0], pragmas[1:]
        if not self._if_clause_true(directive):
            # OpenACC `if(cond)` false: the construct's device behaviour is
            # suppressed — data regions move nothing, compute regions run
            # sequentially on the host.
            if directive.is_compute:
                self._exec_plain(stmt)
            else:
                self._exec_with_pragmas(stmt, rest)
            return
        if directive.is_data:
            self._exec_data_region(stmt, directive, rest)
        elif directive.is_compute:
            self._exec_kernel(stmt)
        elif directive.name == "update":
            self._exec_update(directive)
            self._exec_with_pragmas(stmt, rest)
        elif directive.name in ("enter data", "exit data"):
            self._exec_unstructured_data(directive)
            self._exec_with_pragmas(stmt, rest)
        elif directive.name == "wait":
            self._flush_cpu()
            clause = directive.clause("wait")
            queue = int(semantics.evaluate(clause.args[0], self.env)) if clause else None
            self.runtime.wait(queue)
            self._exec_with_pragmas(stmt, rest)
        else:
            # declare/cache/host_data: no runtime behaviour in this model.
            self._exec_with_pragmas(stmt, rest)

    def _exec_plain(self, stmt: ast.Stmt) -> None:
        kind = type(stmt)
        if kind is ast.Block:
            self.env.push_scope()
            try:
                for inner in stmt.body:
                    self.exec_stmt(inner)
            finally:
                self.env.pop_scope()
        elif kind in (ast.Assign, ast.ExprStmt, ast.VarDecl):
            semantics.exec_simple(stmt, self.env)
            self._tick()
        elif kind is ast.If:
            self._tick()
            if semantics.evaluate(stmt.cond, self.env):
                self.exec_stmt(stmt.then)
            elif stmt.orelse is not None:
                self.exec_stmt(stmt.orelse)
        elif kind is ast.For:
            self._exec_for(stmt)
        elif kind is ast.While:
            self._exec_while(stmt)
        elif kind is ast.Return:
            value = semantics.evaluate(stmt.value, self.env) if stmt.value is not None else None
            raise _Return(value)
        elif kind is ast.Break:
            raise _Break()
        elif kind is ast.Continue:
            raise _Continue()
        else:
            raise InterpError(f"cannot execute {kind.__name__}")

    def _exec_for(self, stmt: ast.For) -> None:
        self.env.push_scope()
        tracker = self.runtime.coherence
        loop_var = None
        ctl = None
        ckpt_active = False
        try:
            if stmt.init is not None:
                semantics_stmt = stmt.init
                if isinstance(semantics_stmt, (ast.Assign, ast.VarDecl, ast.ExprStmt)):
                    semantics.exec_simple(semantics_stmt, self.env)
                    self._tick()
                else:
                    self._exec_plain(semantics_stmt)
                loop_var = _loop_var_name(stmt)
            if tracker is not None and loop_var is not None:
                tracker.push_context(loop_var, 0)
            # Phase sampling: counted loops get a controller that records
            # one phase per iteration and, once stable, extrapolates the
            # remaining trips instead of executing them.
            if self.sampler is not None:
                ctl = self.sampler.controller_for(
                    stmt, loop_var, semantics.compile_expr)
                if ctl is not None:
                    ctl.enter()
            # Checkpointing claims only the outermost counted loop: nested
            # loops are part of the iteration being protected, and two
            # checkpoint sites would alternately evict each other from the
            # ring.
            ckpt_active = (self.ckpt is not None and loop_var is not None
                           and self.ckpt.acquire(stmt))
            site = f"{loop_var}@{stmt.line}" if ckpt_active else None
            # Hoist the per-iteration closures out of the hot loop (one
            # cache lookup per loop instead of one per iteration).
            env = self.env
            cond_fn = semantics.compile_expr(stmt.cond) if stmt.cond is not None else None
            step_fn = semantics.compile_stmt(stmt.step) if stmt.step is not None else None
            iteration = 0
            # ``replaying`` skips the loop header (tick/condition/save)
            # exactly once after a rollback or a disk resume: the snapshot
            # was taken *after* that header ran, so re-executing it would
            # double-charge ticks and re-save the same checkpoint.
            replaying = False
            if ckpt_active:
                resumed = self.ckpt.resume_into(site)
                if resumed is not None:
                    self._cpu_steps = self.ckpt.restored_cpu_steps
                    iteration = resumed
                    replaying = True
            while True:
                if not replaying:
                    self._tick()
                    if cond_fn is not None and not cond_fn(env):
                        break
                    if ctl is not None:
                        # Iteration boundary: flush CPU accounting so the phase
                        # just finished owns its ticks, close it, and either
                        # extrapolate the rest of the loop or open the next
                        # phase.  The trailing tick + failed condition of a
                        # full run belongs to its last phase, so after
                        # extrapolating we leave the loop directly.
                        self._flush_cpu()
                        ctl.finish_phase()
                        if ctl.should_skip():
                            n_rem = ctl.remaining(env)
                            if n_rem is not None and n_rem > 0:
                                ctl.charge_skip(n_rem)
                                ctl.fast_forward(env, n_rem)
                                break
                        ctl.open_phase()
                    if ckpt_active and self.ckpt.should_save(iteration):
                        # The pending CPU tally rides in the snapshot as a
                        # count; flushing it here would split one profiler
                        # charge into two and shift float accumulation.
                        self.ckpt.save(site, iteration,
                                       cpu_steps=self._cpu_steps)
                replaying = False
                if tracker is not None and loop_var is not None:
                    tracker.set_context_iteration(iteration)
                try:
                    try:
                        self.exec_stmt(stmt.body)
                    except _Break:
                        break
                    except _Continue:
                        pass
                    if step_fn is not None:
                        step_fn(env)
                        self._tick()
                except (ChaosFault, TransferCorruptionError) as err:
                    # Unrecoverable fault inside a protected iteration:
                    # rewind to the last checkpoint and replay forward.
                    # WatchdogTimeout / DeviceMemoryError deliberately
                    # propagate — replaying an infinite loop or an
                    # over-subscribed footprint reproduces the failure.
                    if not ckpt_active or not self.ckpt.can_recover(site):
                        raise
                    iteration = self.ckpt.rollback(site, iteration, err)
                    self._cpu_steps = self.ckpt.restored_cpu_steps
                    replaying = True
                    continue
                iteration += 1
        finally:
            if ctl is not None:
                self._flush_cpu()
                ctl.exit()
            if ckpt_active:
                self.ckpt.release(stmt)
            if tracker is not None and loop_var is not None:
                tracker.pop_context()
            self.env.pop_scope()

    def _exec_while(self, stmt: ast.While) -> None:
        cond_fn = semantics.compile_expr(stmt.cond)
        while True:
            self._tick()
            if not cond_fn(self.env):
                break
            try:
                self.exec_stmt(stmt.body)
            except _Break:
                break
            except _Continue:
                continue

    # ------------------------------------------------------------------
    # OpenACC constructs
    # ------------------------------------------------------------------
    def _if_clause_true(self, directive) -> bool:
        clause = directive.clause("if") if directive.namespace == "acc" else None
        if clause is None or not clause.args:
            return True
        return bool(semantics.evaluate(clause.args[0], self.env))

    def _exec_data_region(self, stmt: ast.Stmt, directive, rest: List) -> None:
        plan = self.compiled.data_mem.get(id(directive))
        if plan is None:
            from repro.compiler.memgen import plan_data_region

            plan = plan_data_region(directive, region_label=f"data@{directive.line}")
        self._flush_cpu()
        for action in plan.entries:
            cname = self.env.canonical_name(action.var)
            self.runtime.data_enter(cname, self.env.array(action.var),
                                    copyin=action.copyin, site=action.site)
        self._exec_with_pragmas(stmt, rest)
        self._flush_cpu()
        for action in plan.exits:
            cname = self.env.canonical_name(action.var)
            self.runtime.data_exit(cname, self.env.array(action.var),
                                   copyout=action.copyout, site=action.site)

    def _exec_unstructured_data(self, directive) -> None:
        """OpenACC 2.0 unstructured data lifetimes (`enter data`/`exit data`).

        `enter data` acquires a device-lifetime reference (allocating and
        optionally copying in); `exit data` optionally copies out and
        releases it (`delete` releases without a transfer)."""
        from repro.acc.directives import CLAUSE_COPIES_IN, CLAUSE_COPIES_OUT, DATA_CLAUSES

        self._flush_cpu()
        site = f"{directive.name.replace(' ', '')}@{directive.line}"
        entering = directive.name == "enter data"
        for clause in directive.clauses:
            if clause.name not in DATA_CLAUSES:
                continue
            for var in clause.var_names():
                cname = self.env.canonical_name(var)
                host = self.env.array(var)
                if entering:
                    self.runtime.data_enter(
                        cname, host,
                        copyin=clause.name in CLAUSE_COPIES_IN,
                        site=f"{site}.enter({var})",
                    )
                else:
                    self.runtime.data_exit(
                        cname, host,
                        copyout=clause.name in CLAUSE_COPIES_OUT,
                        site=f"{site}.exit({var})",
                    )

    def _exec_update(self, directive) -> None:
        self._flush_cpu()
        point = next(
            (p for p in self.compiled.regions.updates if p.directive is directive), None
        )
        label = point.name if point is not None else f"update@{directive.line}"
        async_clause = directive.clause("async")
        queue = None
        if async_clause is not None:
            queue = (
                int(semantics.evaluate(async_clause.args[0], self.env))
                if async_clause.args
                else 0
            )
        from repro.acc.directives import VarRef

        def section_of(ref) -> object:
            if not isinstance(ref, VarRef) or ref.section is None:
                return None
            start = int(semantics.evaluate(ref.section[0], self.env))
            length = int(semantics.evaluate(ref.section[1], self.env))
            return (start, length)

        for clause in directive.clauses_named("host", "self"):
            for ref in clause.args:
                if not isinstance(ref, VarRef):
                    continue
                cname = self.env.canonical_name(ref.name)
                self.runtime.update_host(
                    cname, self.env.array(ref.name),
                    queue=queue, site=label, section=section_of(ref),
                )
        for clause in directive.clauses_named("device"):
            for ref in clause.args:
                if not isinstance(ref, VarRef):
                    continue
                cname = self.env.canonical_name(ref.name)
                self.runtime.update_device(
                    cname, self.env.array(ref.name),
                    queue=queue, site=label, section=section_of(ref),
                )

    def _launch_resilient(self, spec, queue):
        """Kernel launch with graceful backend degradation.

        Ladder: vectorized fast path -> interleaved stepper -> sequential
        schedule on the stepper.  Only non-transient chaos faults degrade
        (accrt already retried transient ones, and a chaos fault is raised
        before any device state moved, so re-launching is safe).  A watchdog
        timeout always propagates: an infinite loop is infinite on every
        backend.
        """
        try:
            return self.runtime.launch(spec, queue=queue, schedule=self.schedule)
        except WatchdogTimeout:
            raise
        except ChaosFault:
            pass
        self.runtime.profiler.count(CTR_LAUNCH_DEGRADED)
        self.runtime.tracer.event("launch.degraded", kernel=spec.name,
                                  to="interleaved")
        try:
            return self.runtime.launch(spec, queue=queue, schedule=self.schedule,
                                       backend="interleaved")
        except WatchdogTimeout:
            raise
        except ChaosFault:
            pass
        self.runtime.profiler.count(CTR_LAUNCH_DEGRADED)
        self.runtime.tracer.event("launch.degraded", kernel=spec.name,
                                  to="interleaved-sequential")
        return self.runtime.launch(spec, queue=queue,
                                   schedule=Schedule.sequential(),
                                   backend="interleaved")

    def _exec_kernel(self, stmt: ast.Stmt) -> None:
        plan = self.compiled.kernel_for_stmt(stmt)
        if plan is None:
            raise InterpError("compute region has no kernel plan (recompile needed)")
        memplan = self.compiled.kernel_mem[plan.name]
        self._flush_cpu()
        env = self.env
        queue = (
            int(semantics.evaluate(plan.async_queue, env))
            if plan.async_queue is not None
            else None
        )

        for action in memplan.entries:
            cname = env.canonical_name(action.var)
            self.runtime.data_enter(cname, env.array(action.var),
                                    copyin=action.copyin, site=action.site, queue=queue)

        spec = self._build_launch_spec(plan)
        result = self._launch_resilient(spec, queue)

        verifying = self._verify_kernel is not None and self.verify is not None
        for var, op, _dtype in plan.reductions:
            current = env.load(var)
            merged = combine(op, current, result.reductions[var])
            if verifying:
                # The sequential reference runs next and must start from the
                # untouched host value; the GPU result goes to temp space.
                self.verify.redirect_scalar(self._verify_kernel, var, merged)
            else:
                env.store(var, merged)
            self.runtime.note_reduction(env.canonical_name(var), site=plan.name)
        for var in plan.split_vars:
            if var in result.shared_final:
                if verifying:
                    self.verify.redirect_scalar(
                        self._verify_kernel, var, result.shared_final[var]
                    )
                else:
                    env.store(var, result.shared_final[var])
        for var in plan.cached_vars:
            # Register-cached falsely-shared scalars: the dump-back value is
            # schedule-dependent, and — matching the paper's latent-error
            # account — it is *not* part of the kernel's compared outputs.
            if var in result.shared_final and not verifying:
                env.store(var, result.shared_final[var])

        for action in memplan.exits:
            cname = env.canonical_name(action.var)
            host_target = env.array(action.var)
            if self._verify_kernel is not None and action.copyout and self.verify is not None:
                host_target = self.verify.redirect(self._verify_kernel, cname, host_target)
            self.runtime.data_exit(cname, host_target,
                                   copyout=action.copyout, site=action.site, queue=queue)

    def _build_launch_spec(self, plan: KernelPlan):
        from repro.device.engine import LaunchSpec

        env = self.env

        def ev(expr):
            return semantics.evaluate(expr, env)

        ranges = [loop.iteration_values(ev) for loop in plan.loops]
        threads = list(itertools.product(*ranges))
        arrays = {}
        array_names = {}
        for var in plan.arrays:
            cname = env.canonical_name(var)
            arrays[var] = self.runtime.device_array(cname)
            array_names[var] = cname
        scalars = {name: env.load(name) for name in plan.scalars}
        for var in plan.split_vars:
            scalars[var] = _safe_load(env, var)
        cached = {var: _safe_load(env, var) for var in plan.cached_vars}
        firstprivate = {var: env.load(var) for var in plan.firstprivate}
        return LaunchSpec(
            name=plan.name,
            instrs=plan.instrs,
            index_vars=plan.index_vars,
            threads=threads,
            arrays=arrays,
            scalars=scalars,
            private_decls=plan.private_decls,
            firstprivate=firstprivate,
            cached_vars=cached,
            shared_writable=set(plan.split_vars) | set(plan.cached_vars),
            reductions=plan.reductions,
            array_names=array_names,
        )

    # ------------------------------------------------------------------
    # Intercepted calls
    # ------------------------------------------------------------------
    def _handle_call(self, func: str, args):
        if not func.startswith("__"):
            user = self._user_function(func)
            if user is not None:
                return True, self._call_user_function(user, args)
            return False, None
        runtime = self.runtime
        if func == "__check_read":
            var, side, site = args[0], args[1], args[2]
            runtime.check_read(self.env.canonical_name(var), side, site=site)
        elif func == "__check_write":
            var, side, site = args[0], args[1], args[2]
            full = len(args) > 3 and args[3] == "full"
            runtime.check_write(self.env.canonical_name(var), side, site=site, full=full)
        elif func == "__reset_status":
            var, side, status, site = args[0], args[1], args[2], args[3]
            runtime.reset_status(self.env.canonical_name(var), side, status, site=site)
        elif func == "__pin_after_alloc":
            var, side, status, site = args[0], args[1], args[2], args[3]
            runtime.pin_after_alloc(self.env.canonical_name(var), side, status, site=site)
        elif func == "__verify_begin":
            self._verify_kernel = args[0]
            if self.verify is not None:
                self.verify.begin(args[0])
        elif func == "__verify_compare":
            if self.verify is not None:
                self.verify.compare(args[0], args[1])
        elif func == "__verify_end":
            if self.verify is not None:
                self.verify.end(args[0])
            self._verify_kernel = None
        else:
            raise InterpError(f"unknown intrinsic {func!r}")
        return True, 0

    def _user_function(self, name: str):
        for func in self.compiled.program.funcs:
            if func.name == name:
                return func
        return None

    def _call_user_function(self, func: ast.FuncDef, args):
        if len(args) != len(func.params):
            raise InterpError(
                f"{func.name}() takes {len(func.params)} arguments, got {len(args)}"
            )
        self.env.push_scope()
        try:
            for param, value in zip(func.params, args):
                if isinstance(value, np.ndarray):
                    self.env.scopes[-1][param.name] = value
                else:
                    self.env.declare(param.name, param.ctype, value)
            try:
                self._exec_plain(func.body)
            except _Return as ret:
                return ret.value
            return None
        finally:
            self.env.pop_scope()

    # ------------------------------------------------------------------
    # CPU-step accounting
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._cpu_steps += 1
        if self._cpu_steps >= _FLUSH_EVERY:
            self._flush_cpu()

    def _flush_cpu(self) -> None:
        if self._cpu_steps:
            self.runtime.charge_cpu(self._cpu_steps)
            self._cpu_steps = 0


def _loop_var_name(stmt: ast.For) -> Optional[str]:
    if isinstance(stmt.init, ast.VarDecl):
        return stmt.init.name
    if isinstance(stmt.init, ast.Assign):
        return ast.base_name(stmt.init.target)
    return None


def _safe_load(env: HostEnv, name: str):
    try:
        return env.load(name)
    except InterpError:
        return 0


def run_compiled(
    compiled: CompiledProgram,
    params: Optional[Dict[str, object]] = None,
    runtime: Optional[AccRuntime] = None,
    schedule: Optional[Schedule] = None,
    acc_enabled: bool = True,
    verify: Optional[VerifySession] = None,
    ctx=None,
) -> Interp:
    """Run a compiled program; returns the interpreter (env + runtime)."""
    interp = Interp(
        compiled,
        runtime=runtime,
        params=params,
        acc_enabled=acc_enabled,
        schedule=schedule,
        verify=verify,
        ctx=ctx,
    )
    interp.run()
    return interp


def run_sequential(
    compiled: CompiledProgram,
    params: Optional[Dict[str, object]] = None,
    ctx=None,
) -> Interp:
    """Run the sequential reference version (all acc directives stripped)."""
    from repro.toolchain import default_context

    ctx = ctx or default_context()
    stripped = compile_ast(
        ctx.passes.rewrite("fault.strip_acc", compiled.program),
        compiled.options.copy(strict_validation=False),
        ctx=ctx,
    )
    return run_compiled(stripped, params=params, acc_enabled=False, ctx=ctx)
