"""Host memory environment.

Scalars live in a scope stack; arrays are numpy buffers allocated when their
declaration executes (symbolic dimensions resolve against program parameters
and already-bound scalars).  Pointers are bindings to arrays; the
environment can map any value back to its *canonical* array name, which is
what the runtime's whole-array coherence tracking is keyed on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import InterpError
from repro.lang import semantics
from repro.lang.ctypes import Array, CType, Pointer, Scalar


class HostEnv:
    """Name resolution + storage for one function activation."""

    def __init__(self, params: Optional[Dict[str, object]] = None,
                 call_handler: Optional[Callable] = None):
        self.params = dict(params or {})
        self.scopes: List[Dict[str, object]] = [{}]
        self.dtypes: Dict[str, object] = {}
        self.canonical: Dict[int, str] = {}   # id(ndarray) -> declared name
        self.stdout: List[str] = []
        self._call_handler = call_handler

    # -- scope management ----------------------------------------------------
    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def _find_scope(self, name: str) -> Optional[Dict[str, object]]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope
        return None

    # -- declaration ---------------------------------------------------------
    def declare(self, name: str, ctype: Optional[CType], value=None) -> None:
        scope = self.scopes[-1]
        if isinstance(ctype, Array):
            shape = self._resolve_shape(ctype, name)
            preset = self.params.get(name)
            if isinstance(preset, np.ndarray):
                if preset.shape != shape:
                    raise InterpError(
                        f"parameter array '{name}' has shape {preset.shape}, "
                        f"declaration wants {shape}"
                    )
                # Always copy: program runs must never mutate caller-owned
                # parameter arrays (re-runs depend on pristine inputs).
                array = np.array(preset, dtype=ctype.elem.dtype, copy=True)
            else:
                array = np.zeros(shape, dtype=ctype.elem.dtype)
            scope[name] = array
            self.canonical.setdefault(id(array), name)
            return
        if isinstance(ctype, Pointer):
            scope[name] = value  # None until bound
            return
        # Scalar: parameter overrides take precedence over the initializer.
        if name in self.params and not isinstance(self.params[name], np.ndarray):
            value = self.params[name]
        if value is None:
            value = 0
        if isinstance(ctype, Scalar):
            self.dtypes[name] = ctype.dtype
            value = np.dtype(ctype.dtype).type(value).item()
        scope[name] = value

    def _resolve_shape(self, ctype: Array, name: str):
        dims = []
        for d in ctype.dims:
            if isinstance(d, int):
                dims.append(d)
                continue
            try:
                dims.append(int(self.load(d)))
            except InterpError:
                if d in self.params:
                    dims.append(int(self.params[d]))
                else:
                    raise InterpError(
                        f"array '{name}': dimension '{d}' is unbound "
                        "(pass it as a program parameter)"
                    )
        return tuple(dims)

    # -- evaluator protocol ----------------------------------------------------
    def load(self, name: str):
        scope = self._find_scope(name)
        if scope is None:
            if name in self.params and not isinstance(self.params[name], np.ndarray):
                return self.params[name]
            raise InterpError(f"unbound name {name!r}")
        value = scope[name]
        if value is None:
            raise InterpError(f"use of unbound pointer {name!r}")
        return value

    def store(self, name: str, value) -> None:
        scope = self._find_scope(name)
        if scope is None:
            # Assignment to an undeclared name: C would reject it; we create
            # a function-scope binding to keep harness-generated code simple.
            scope = self.scopes[0]
        dtype = self.dtypes.get(name)
        if dtype is not None and not isinstance(value, np.ndarray):
            value = np.dtype(dtype).type(value).item()
        scope[name] = value

    def call(self, func: str, args):
        if self._call_handler is not None:
            handled, result = self._call_handler(func, args)
            if handled:
                return result
        if func == "printf":
            self.stdout.append(_format_printf(args))
            return 0
        return semantics.Builtins.call(func, args)

    # -- canonical array names -------------------------------------------------
    def canonical_name(self, name: str) -> str:
        """Resolve a (possibly pointer) name to the underlying array's
        declared name; scalars resolve to themselves."""
        scope = self._find_scope(name)
        if scope is None:
            return name
        value = scope[name]
        if isinstance(value, np.ndarray):
            return self.canonical.get(id(value), name)
        return name

    def array(self, name: str) -> np.ndarray:
        value = self.load(name)
        if not isinstance(value, np.ndarray):
            raise InterpError(f"{name!r} is not an array")
        return value

    # -- checkpoint support --------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Deep copy of the scope stack (checkpoint payload).

        Arrays are captured once per *object*, keyed by identity, so pointer
        bindings that alias one array restore as aliases of one array —
        copying per name would silently split them."""
        arrays: Dict[int, np.ndarray] = {}
        scopes = []
        for scope in self.scopes:
            entry = {}
            for name, value in scope.items():
                if isinstance(value, np.ndarray):
                    key = id(value)
                    if key not in arrays:
                        arrays[key] = value.copy()
                    entry[name] = ("array", key)
                else:
                    entry[name] = ("plain", value)
            scopes.append(entry)
        return {
            "scopes": scopes,
            "arrays": arrays,
            "canonical": {key: name for key, name in self.canonical.items()
                          if key in arrays},
            "dtypes": dict(self.dtypes),
            "stdout": list(self.stdout),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Rewind to a :meth:`snapshot_state` capture.

        The scope-stack depth must match the capture point (restores happen
        at the same structural program point the snapshot was taken at).
        Array contents are copied *into* the currently bound objects when
        geometry matches — ``canonical`` is keyed by object identity, and
        device-side bookkeeping may hold the same references — and recreated
        from copies otherwise (a resume into a fresh process)."""
        from repro.errors import CheckpointError

        saved_scopes = state["scopes"]
        if len(saved_scopes) != len(self.scopes):
            raise CheckpointError(
                f"scope depth mismatch restoring checkpoint: snapshot has "
                f"{len(saved_scopes)} scopes, live environment has "
                f"{len(self.scopes)} (snapshot from a different program point?)"
            )
        live: Dict[int, np.ndarray] = {}
        claimed = set()
        for scope, entry in zip(self.scopes, saved_scopes):
            for name, (kind, ref) in entry.items():
                if kind != "array" or ref in live:
                    continue
                current = scope.get(name)
                saved = state["arrays"][ref]
                if (isinstance(current, np.ndarray)
                        and id(current) not in claimed
                        and current.shape == saved.shape
                        and current.dtype == saved.dtype):
                    live[ref] = current
                    claimed.add(id(current))
        for ref, saved in state["arrays"].items():
            target = live.get(ref)
            if target is None:
                live[ref] = saved.copy()
            else:
                np.copyto(target, saved, casting="no")
        for scope, entry in zip(self.scopes, saved_scopes):
            scope.clear()
            for name, (kind, ref) in entry.items():
                scope[name] = live[ref] if kind == "array" else ref
        self.dtypes = dict(state["dtypes"])
        self.stdout[:] = state["stdout"]
        self.canonical = {id(live[ref]): name
                          for ref, name in state["canonical"].items()}


def _format_printf(args) -> str:
    if not args:
        return ""
    fmt, rest = args[0], args[1:]
    if not isinstance(fmt, str):
        return " ".join(str(a) for a in args)
    # C format -> Python %-format (good enough for benchmark output).
    pyfmt = fmt.replace("%lf", "%f").replace("%le", "%e").replace("%lld", "%d")
    try:
        return pyfmt % tuple(rest)
    except (TypeError, ValueError):
        return fmt + " " + " ".join(str(a) for a in rest)
