"""Host interpreter: executes mini-C programs against the OpenACC runtime."""

from repro.interp.interp import Interp, run_compiled, run_sequential
from repro.interp.values import HostEnv

__all__ = ["Interp", "HostEnv", "run_compiled", "run_sequential"]
