"""Memory-transfer code generation.

Produces per-region entry/exit *memory actions*:

* data regions: one action pair per data-clause variable (present-or
  semantics; copyin/copyout as the clause dictates);
* compute regions: variables covered by a clause on the compute directive or
  an enclosing data region follow those clauses; every *uncovered* array the
  kernel touches falls back to OpenACC's **default scheme** (§II-C): copy
  everything accessed to the GPU right before the launch and everything
  modified back right after — the naive baseline of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.acc.directives import (
    CLAUSE_COPIES_IN,
    CLAUSE_COPIES_OUT,
    DATA_CLAUSES,
    Directive,
)
from repro.acc.regions import ComputeRegion
from repro.compiler.kernelgen import KernelPlan


@dataclass(frozen=True)
class EntryAction:
    """At region entry: ensure present (alloc if absent), then maybe copyin."""

    var: str
    copyin: bool
    site: str


@dataclass(frozen=True)
class ExitAction:
    """At region exit: maybe copyout, then release (free when last ref)."""

    var: str
    copyout: bool
    site: str


@dataclass
class RegionMemPlan:
    entries: List[EntryAction]
    exits: List[ExitAction]

    def entry_vars(self) -> List[str]:
        return [a.var for a in self.entries]


def plan_data_region(directive: Directive, region_label: str = "data") -> RegionMemPlan:
    """Memory actions of a ``#pragma acc data`` directive."""
    entries: List[EntryAction] = []
    exits: List[ExitAction] = []
    for clause in directive.clauses:
        if clause.name not in DATA_CLAUSES or clause.name == "deviceptr":
            continue
        for var in clause.var_names():
            entries.append(EntryAction(var, clause.name in CLAUSE_COPIES_IN,
                                       site=f"{region_label}.enter({var})"))
            exits.append(ExitAction(var, clause.name in CLAUSE_COPIES_OUT,
                                    site=f"{region_label}.exit({var})"))
    # Copyouts run in reverse declaration order (LIFO, like region teardown).
    exits.reverse()
    return RegionMemPlan(entries, exits)


def plan_compute_region(
    region: ComputeRegion,
    kernel: KernelPlan,
    default_data_management: bool = True,
    unstructured_covered: Optional[set] = None,
) -> RegionMemPlan:
    """Memory actions around one kernel launch.

    ``unstructured_covered`` names variables given a device lifetime by an
    ``enter data`` directive somewhere in the function: like data-region
    coverage, they opt out of the default per-launch scheme (the runtime's
    present table does the exact dynamic check)."""
    label = kernel.name
    covered_by_data: Dict[str, str] = {}
    for data_region in region.enclosing_data:
        for clause_name, var in data_region.directive.data_clause_vars():
            covered_by_data.setdefault(var, clause_name)
    for var in unstructured_covered or ():
        covered_by_data.setdefault(var, "present")

    clause_here: Dict[str, str] = {}
    for clause_name, var in region.directive.data_clause_vars():
        clause_here[var] = clause_name

    entries: List[EntryAction] = []
    exits: List[ExitAction] = []
    written = set(kernel.written_arrays)
    for var in kernel.arrays:
        if var in clause_here:
            name = clause_here[var]
            entries.append(EntryAction(var, name in CLAUSE_COPIES_IN,
                                       site=f"{label}.entry({var})"))
            exits.append(ExitAction(var, name in CLAUSE_COPIES_OUT,
                                    site=f"{label}.exit({var})"))
        elif var in covered_by_data:
            continue  # device-resident for the data region's duration
        elif default_data_management:
            # Naive default: copy accessed data in, modified data out, with
            # a per-launch allocation lifetime.
            entries.append(EntryAction(var, True, site=f"{label}.default-in({var})"))
            exits.append(ExitAction(var, var in written, site=f"{label}.default-out({var})"))
        else:
            # Treated as present (trust the programmer); the runtime faults
            # if it is not.
            continue
    exits.reverse()
    return RegionMemPlan(entries, exits)
