"""Kernel generation: compute region -> executable kernel plan.

Decides the partitioned iteration space, classifies every scalar the body
touches (local / private / firstprivate / reduction / falsely-shared), and
lowers the body to device bytecode.  The classification encodes the paper's
translation-bug taxonomy:

* a privatizable scalar with auto-privatization disabled and no ``private``
  clause becomes a *cached* shared scalar (register + dump-back → latent
  race);
* a reduction-shaped scalar with recognition disabled and no ``reduction``
  clause becomes a *split* shared scalar (read-modify-write in two
  instructions → active race).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.acc.directives import Directive
from repro.acc.regions import ComputeRegion
from repro.compiler.privatize import privatizable_scalars, written_scalars
from repro.compiler.reduction import recognize_reductions
from repro.device.compile import compile_body
from repro.errors import CompileError
from repro.ir.defuse import region_access
from repro.lang import ast
from repro.lang.ctypes import Array, CType, Pointer, Scalar


class PartitionedLoop:
    """One partitioned loop level: ``for (var = init; var OP bound; var += step)``."""

    __slots__ = ("var", "init", "cond_op", "bound", "step")

    def __init__(self, var: str, init: ast.Expr, cond_op: str, bound: ast.Expr, step: int):
        self.var = var
        self.init = init
        self.cond_op = cond_op
        self.bound = bound
        self.step = step

    def iteration_values(self, evaluate) -> range:
        """Resolve to a concrete range; ``evaluate(expr) -> int``."""
        start = int(evaluate(self.init))
        bound = int(evaluate(self.bound))
        step = self.step
        if self.cond_op == "<":
            return range(start, bound, step) if step > 0 else range(start, bound, step)
        if self.cond_op == "<=":
            return range(start, bound + 1, step)
        if self.cond_op == ">":
            return range(start, bound, step)
        if self.cond_op == ">=":
            return range(start, bound - 1, step)
        raise CompileError(f"bad loop condition operator {self.cond_op!r}")

    def __repr__(self):
        return f"PartitionedLoop({self.var})"


class KernelPlan:
    """Everything needed to launch one translated kernel."""

    def __init__(self, name: str, region: ComputeRegion):
        self.name = name
        self.region = region
        self.loops: List[PartitionedLoop] = []
        self.body: List[ast.Stmt] = []
        self.instrs = []
        self.private_decls: Dict[str, object] = {}   # name -> numpy dtype|None
        self.firstprivate: List[str] = []
        self.cached_vars: List[str] = []
        self.split_vars: List[str] = []
        self.reductions: List[Tuple[str, str, object]] = []  # (var, op, dtype)
        self.arrays: List[str] = []
        self.scalars: List[str] = []
        self.async_queue: Optional[ast.Expr] = None   # None = synchronous
        self.warnings: List[str] = []

    @property
    def index_vars(self) -> Tuple[str, ...]:
        return tuple(l.var for l in self.loops)

    @property
    def written_arrays(self) -> List[str]:
        acc = region_access(self.region.stmt)
        return [a for a in self.arrays if a in acc.defs]

    @property
    def read_arrays(self) -> List[str]:
        acc = region_access(self.region.stmt)
        return [a for a in self.arrays if a in acc.use]

    def __repr__(self):
        return f"KernelPlan({self.name}, loops={[l.var for l in self.loops]})"


def canonicalize_loop(loop: ast.For) -> PartitionedLoop:
    """Extract the canonical form of a partitionable loop."""
    # init
    if isinstance(loop.init, ast.VarDecl) and loop.init.init is not None:
        var, init = loop.init.name, loop.init.init
    elif isinstance(loop.init, ast.Assign) and isinstance(loop.init.target, ast.Name) and not loop.init.op:
        var, init = loop.init.target.id, loop.init.value
    else:
        raise CompileError(f"line {loop.line}: cannot canonicalize loop init")
    # cond
    cond = loop.cond
    if not (isinstance(cond, ast.Binary) and cond.op in ("<", "<=", ">", ">=")):
        raise CompileError(f"line {loop.line}: cannot canonicalize loop condition")
    if isinstance(cond.left, ast.Name) and cond.left.id == var:
        cond_op, bound = cond.op, cond.right
    elif isinstance(cond.right, ast.Name) and cond.right.id == var:
        flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        cond_op, bound = flip[cond.op], cond.left
    else:
        raise CompileError(f"line {loop.line}: loop condition does not test the index")
    # step
    step = _canonical_step(loop.step, var, loop.line)
    if (step > 0) != (cond_op in ("<", "<=")):
        raise CompileError(f"line {loop.line}: loop step direction conflicts with condition")
    return PartitionedLoop(var, init, cond_op, bound, step)


def _canonical_step(step: Optional[ast.Stmt], var: str, line: int) -> int:
    if isinstance(step, ast.ExprStmt) and isinstance(step.expr, ast.Unary):
        unary = step.expr
        if ast.base_name(unary.operand) == var:
            if unary.op in ("++", "p++"):
                return 1
            if unary.op in ("--", "p--"):
                return -1
    if isinstance(step, ast.Assign) and isinstance(step.target, ast.Name) and step.target.id == var:
        if step.op in ("+", "-") and isinstance(step.value, ast.IntLit):
            return step.value.value if step.op == "+" else -step.value.value
        value = step.value
        if (
            not step.op
            and isinstance(value, ast.Binary)
            and value.op in ("+", "-")
            and isinstance(value.left, ast.Name)
            and value.left.id == var
            and isinstance(value.right, ast.IntLit)
        ):
            return value.right.value if value.op == "+" else -value.right.value
    raise CompileError(f"line {line}: cannot canonicalize loop step for '{var}'")


def _partitioned_nest(region: ComputeRegion) -> Tuple[List[ast.For], ast.Block]:
    """The loops to partition and the body block one thread executes."""
    directive = region.directive
    stmt = region.stmt
    if directive.name.endswith("loop"):
        if not isinstance(stmt, ast.For):
            raise CompileError(
                f"line {directive.line}: combined '{directive.name}' must annotate a for loop"
            )
        first = stmt
    else:
        # Bare kernels/parallel: require a single annotated top-level loop.
        body = stmt.body if isinstance(stmt, ast.Block) else None
        loops = [
            s for s in (body or [])
            if isinstance(s, ast.For) and any(p.is_loop for p in s.pragmas)
        ]
        if body is None or len(body) != 1 or len(loops) != 1:
            raise CompileError(
                f"line {directive.line}: a bare '{directive.name}' region must contain "
                "exactly one '#pragma acc loop' for statement"
            )
        first = loops[0]

    nest = [first]
    collapse = directive.clause("collapse")
    depth = 1
    if collapse is not None:
        if not isinstance(collapse.args[0], ast.IntLit):
            raise CompileError("collapse argument must be an integer literal")
        depth = collapse.args[0].value
    current = first
    while True:
        inner = _sole_inner_loop(current)
        if len(nest) < depth:
            if inner is None:
                raise CompileError(
                    f"line {directive.line}: collapse({depth}) needs {depth} perfectly nested loops"
                )
            nest.append(inner)
            current = inner
            continue
        # Beyond collapse: also partition a directly nested `#pragma acc loop`.
        if inner is not None and any(
            p.is_loop and not p.is_compute and not p.has_clause("seq")
            for p in inner.pragmas
        ):
            nest.append(inner)
            current = inner
            continue
        break
    body = current.body if isinstance(current.body, ast.Block) else ast.Block([current.body])
    return nest, body


def _sole_inner_loop(loop: ast.For) -> Optional[ast.For]:
    body = loop.body
    stmts = body.body if isinstance(body, ast.Block) else [body]
    if len(stmts) == 1 and isinstance(stmts[0], ast.For):
        return stmts[0]
    return None


def generate_kernel(
    region: ComputeRegion,
    symbols: Dict[str, CType],
    auto_privatize: bool = True,
    auto_reduction: bool = True,
) -> KernelPlan:
    """Translate one compute region into a :class:`KernelPlan`."""
    plan = KernelPlan(region.name, region)
    nest, body = _partitioned_nest(region)
    plan.loops = [canonicalize_loop(loop) for loop in nest]
    plan.body = list(body.body)

    directives = _region_directives(region)
    array_names = {
        name for name, ctype in symbols.items() if isinstance(ctype, (Array, Pointer))
    }
    indices = set(plan.index_vars)
    acc = region_access(region.stmt)

    # Inner (non-partitioned) loop indices are locals when declared, else
    # implicitly private.
    inner_indices = _inner_loop_indices(plan.body) - indices

    explicit_private: Set[str] = set()
    explicit_firstprivate: Set[str] = set()
    explicit_reduction: Dict[str, str] = {}
    for directive in directives:
        for clause in directive.clauses_named("private"):
            explicit_private |= set(clause.var_names())
        for clause in directive.clauses_named("firstprivate"):
            explicit_firstprivate |= set(clause.var_names())
        for clause in directive.clauses_named("reduction"):
            for var in clause.var_names():
                explicit_reduction[var] = clause.op

    written = written_scalars(plan.body, array_names) - indices
    handled = explicit_private | explicit_firstprivate | set(explicit_reduction)
    remaining = written - handled - inner_indices

    auto_private: Set[str] = set()
    auto_red: Dict[str, str] = {}
    if remaining:
        privatizable = privatizable_scalars(plan.body, array_names, indices)
        if auto_privatize:
            auto_private = remaining & privatizable
            remaining -= auto_private
        if auto_reduction and remaining:
            auto_red = recognize_reductions(plan.body, remaining)
            remaining -= set(auto_red)
        # Falsely shared: privatizable scalars get register-cached (latent
        # race); accumulator-shaped ones stay shared with split RMW (active).
        for var in sorted(remaining):
            if var in privatizable:
                plan.cached_vars.append(var)
                plan.warnings.append(
                    f"{plan.name}: scalar '{var}' is shared across threads "
                    "(missing privatization?); register-cached with dump-back"
                )
            else:
                plan.split_vars.append(var)
                plan.warnings.append(
                    f"{plan.name}: scalar '{var}' is updated concurrently "
                    "(missing reduction?); executing with shared read-modify-write"
                )

    def dtype_of(name: str):
        ctype = symbols.get(name)
        return ctype.dtype if isinstance(ctype, Scalar) else None

    for var in sorted(explicit_private | auto_private | inner_indices):
        plan.private_decls[var] = dtype_of(var)
    plan.firstprivate = sorted(explicit_firstprivate)
    for var, op in sorted({**explicit_reduction, **auto_red}.items()):
        plan.reductions.append((var, op, dtype_of(var)))

    locals_ = {
        node.name for stmt in plan.body for node in stmt.walk()
        if isinstance(node, ast.VarDecl)
    }
    touched = acc.use | acc.defs
    plan.arrays = sorted(touched & array_names)
    plan.scalars = sorted(
        v for v in touched
        if v in symbols
        and not isinstance(symbols[v], (Array, Pointer))
        and v not in indices
        and v not in locals_
        and v not in plan.private_decls
        and v not in plan.firstprivate
        and v not in {r[0] for r in plan.reductions}
        and v not in plan.cached_vars
        and v not in plan.split_vars
    )

    async_clause = region.directive.clause("async")
    if async_clause is not None:
        plan.async_queue = async_clause.args[0] if async_clause.args else ast.IntLit(0)

    plan.instrs = compile_body(plan.body, split_vars=plan.split_vars, dump_vars=plan.cached_vars)
    return plan


def _region_directives(region: ComputeRegion) -> List[Directive]:
    out = [region.directive]
    for sub in region.stmt.walk():
        if isinstance(sub, ast.Stmt):
            out.extend(p for p in sub.pragmas if p.namespace == "acc" and p is not region.directive)
    return out


def _inner_loop_indices(stmts: Sequence[ast.Stmt]) -> Set[str]:
    out: Set[str] = set()
    for stmt in stmts:
        for node in stmt.walk():
            if isinstance(node, ast.For):
                if isinstance(node.init, ast.Assign) and isinstance(node.init.target, ast.Name):
                    out.add(node.init.target.id)
    return out
