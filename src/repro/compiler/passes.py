"""Explicit pass pipeline: every compilation stage is a named, timed pass.

The source → :class:`CompiledProgram` pipeline and the AST-rewriting
transforms (demotion, result comparison, check insertion, fault injection)
all run through one :class:`PassManager`:

* **observability** — each pass records self wall-clock time, invocation
  and cache counters into the context's :class:`~repro.toolchain.PassStats`
  (``repro ... --time-passes``), and any pass's output can be dumped after
  it runs (``--dump-after=<pass>``);
* **caching** — results are cached per pass in the context's cache
  registry.  The whole-pipeline cache (pass ``pipeline``) subsumes the old
  ``compile_source`` memo; the ``parse`` cache shares one AST across
  differing :class:`CompilerOptions`; analysis passes (regions, symbols,
  alias, kernelgen, memgen) cache keyed by (AST fingerprint, the subset of
  options they read), so recompiling the same source with different knobs
  reruns only the passes those knobs feed.

Cache-soundness rules:

* a fingerprint (source hash) is attached — in an identity-keyed side
  table, *not* on the node — only to trees owned by the parse cache, which
  are immutable by the long-standing invariant that transforms clone
  before editing.  ``clone_tree`` (deepcopy) products are new objects with
  no side-table entry, so a cloned-then-mutated tree (check insertion
  mutates its clone between two compiles) can never hit a stale analysis;
* rewrite passes return freshly cloned, caller-mutable trees, so their
  results are never cached.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.toolchain import ToolchainContext, default_context

__all__ = ["PassInfo", "PassManager", "all_passes", "pass_names"]


@dataclass(frozen=True)
class PassInfo:
    """Registry entry: one named pass."""

    name: str
    kind: str          # "frontend" | "analysis" | "codegen" | "rewrite"
    description: str


# Pipeline passes in execution order, then the rewrite passes.
_REGISTRY: Dict[str, PassInfo] = {}


def _register(name: str, kind: str, description: str) -> None:
    _REGISTRY[name] = PassInfo(name, kind, description)


_register("parse", "frontend", "source text -> AST")
_register("validate", "frontend", "directive legality checks")
_register("regions", "analysis", "compute/data region extraction")
_register("symbols", "analysis", "declared-name/type table")
_register("alias", "analysis", "conservative may-alias analysis")
_register("kernelgen", "codegen", "compute region -> KernelPlan")
_register("memgen", "codegen", "region entry/exit memory actions")
_register("demotion", "rewrite", "§III-A memory-transfer demotion")
_register("resultcomp", "rewrite", "§III-A result-comparison insertion")
_register("checkinsert", "rewrite", "§III-B coherence-check insertion")
_register("fault.drop_private", "rewrite", "drop private/firstprivate clauses")
_register("fault.drop_reduction", "rewrite", "drop reduction clauses")
_register("fault.strip_data", "rewrite", "strip manual memory management")
_register("fault.strip_acc", "rewrite", "strip every acc directive")


def all_passes() -> List[PassInfo]:
    return list(_REGISTRY.values())


def pass_names() -> List[str]:
    return list(_REGISTRY)


def _rewrite_fn(name: str) -> Callable:
    """Implementation lookup for a rewrite pass (imported lazily: the
    transform modules import driver, which imports this module)."""
    if name == "demotion":
        from repro.compiler.demotion import demote_for_verification

        return demote_for_verification
    if name == "resultcomp":
        from repro.compiler.resultcomp import insert_result_comparison

        return insert_result_comparison
    if name == "checkinsert":
        from repro.compiler.checkinsert import instrument_for_memverify

        return instrument_for_memverify
    from repro.compiler import faults

    return {
        "fault.drop_private": faults.drop_private_clauses,
        "fault.drop_reduction": faults.drop_reduction_clauses,
        "fault.strip_data": faults.strip_data_management,
        "fault.strip_acc": faults.strip_all_acc,
    }[name]


class _Frame:
    __slots__ = ("start", "child_seconds")

    def __init__(self, start: float):
        self.start = start
        self.child_seconds = 0.0


def _source_fingerprint(source: str) -> str:
    return hashlib.sha256(source.encode()).hexdigest()


def _options_key(options) -> Tuple:
    return tuple(sorted(options.__dict__.items()))


class PassManager:
    """Runs registered passes against one :class:`ToolchainContext`."""

    def __init__(self, ctx: Optional[ToolchainContext] = None):
        self.ctx = ctx or default_context()
        # Pass frames for self-time accounting (nested pass time is
        # charged to the nested pass, not its caller).
        self._stack: List[_Frame] = []
        self._entry_depth = 0
        # AST -> fingerprint, identity-keyed and weak: only parse-cache
        # trees appear here; clones (deepcopy) never do.  The table lives on
        # the cache registry so contexts sharing a registry (daemon request
        # contexts) share fingerprint knowledge along with the parse cache.
        self._fingerprints = self.ctx.caches.fingerprints

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def compile_source(self, source: str, options=None):
        """Parse and compile source text (pipeline-cached)."""
        from repro.compiler.driver import CompilerOptions

        options = options or CompilerOptions()
        start = time.perf_counter()
        self._entry_depth += 1
        try:
            with self.ctx.tracer.span("compile", category="compiler",
                                      source_bytes=len(source)) as sp:
                fingerprint = _source_fingerprint(source)
                cache = self.ctx.caches.get("compile")
                key = (fingerprint, _options_key(options))
                cached = cache.get(key)
                self.ctx.pass_stats.record_cache("pipeline", cached is not None)
                sp.set_attr("cache", "hit" if cached is not None else "miss")
                if cached is not None:
                    return cached
                program = self._parse(source, fingerprint)
                compiled = self._pipeline(program, options, fingerprint)
                cache.put(key, compiled)
                return compiled
        finally:
            self._leave_entry(start)

    def compile_ast(self, program, options=None):
        """Run the pipeline over an already-parsed (possibly transformed)
        AST.  Analysis caching applies only when the tree is a known
        parse-cache resident (see module docstring)."""
        start = time.perf_counter()
        self._entry_depth += 1
        try:
            return self._pipeline(
                program, options, self._fingerprints.get(program)
            )
        finally:
            self._leave_entry(start)

    def rewrite(self, name: str, *args, **kwargs):
        """Run a registered rewrite pass (demotion, resultcomp,
        checkinsert, fault.*) with timing and dump support."""
        info = _REGISTRY.get(name)
        if info is None or info.kind != "rewrite":
            raise KeyError(f"unknown rewrite pass {name!r}")
        fn = _rewrite_fn(name)
        start = time.perf_counter()
        self._entry_depth += 1
        try:
            result = self._run_pass(name, lambda: fn(*args, **kwargs))
            self._maybe_dump(name, result)
            return result
        finally:
            self._leave_entry(start)

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def _parse(self, source: str, fingerprint: str):
        """Parse pass, cached by source hash so equal sources compiled
        under different options share one (immutable) tree."""
        from repro.lang.parser import parse_program

        cache = self.ctx.caches.get("parse")
        program = cache.get(fingerprint)
        self.ctx.pass_stats.record_cache("parse", program is not None)
        if program is not None:
            self.ctx.tracer.event("pass.cache_hit", name="parse")
        if program is None:
            program = self._run_pass("parse", lambda: parse_program(source))
            cache.put(fingerprint, program)
            self._fingerprints[program] = fingerprint
        self._maybe_dump("parse", program)
        return program

    def _pipeline(self, program, options, fingerprint: Optional[str]):
        from repro.acc.regions import collect_regions
        from repro.acc.validate import declared_names, validate_program
        from repro.compiler.driver import CompiledProgram, CompilerOptions
        from repro.compiler.kernelgen import generate_kernel
        from repro.compiler.memgen import plan_compute_region, plan_data_region
        from repro.errors import CompileError
        from repro.ir.alias import analyze_aliases

        options = options or CompilerOptions()
        try:
            main = program.func(options.main_function)
        except KeyError:
            raise CompileError(
                f"program has no '{options.main_function}' function"
            )

        if options.strict_validation:
            self._analysis_pass(
                "validate", fingerprint, (options.main_function,),
                lambda: (validate_program(program).raise_if_errors(), True)[1],
            )

        regions = self._analysis_pass(
            "regions", fingerprint, (options.main_function,),
            lambda: collect_regions(main),
        )
        symbols = self._analysis_pass(
            "symbols", fingerprint, (options.main_function,),
            lambda: declared_names(main, program),
        )
        aliases = self._analysis_pass(
            "alias", fingerprint, (options.main_function,),
            lambda: analyze_aliases(program, main),
        )
        compiled = CompiledProgram(
            program, options, regions=regions, symbols=symbols, aliases=aliases
        )

        def _kernelgen():
            kernels = {}
            warnings: List[str] = []
            for region in regions.compute:
                plan = generate_kernel(
                    region,
                    symbols,
                    auto_privatize=options.auto_privatize,
                    auto_reduction=options.auto_reduction,
                )
                kernels[region.name] = plan
                warnings.extend(plan.warnings)
            return kernels, tuple(warnings)

        kernels, warnings = self._analysis_pass(
            "kernelgen", fingerprint,
            (options.main_function, options.auto_privatize, options.auto_reduction),
            _kernelgen,
        )
        compiled.kernels.update(kernels)
        compiled.warnings.extend(warnings)

        def _memgen():
            # Variables with an unstructured device lifetime (`enter
            # data`) opt out of the naive default scheme like data-region
            # coverage does.
            unstructured = set()
            for node in main.body.walk():
                for directive in getattr(node, "pragmas", []):
                    if directive.namespace == "acc" and directive.name == "enter data":
                        for _, var in directive.data_clause_vars():
                            unstructured.add(var)
            kernel_mem = {
                name: plan_compute_region(
                    region, kernels[name],
                    default_data_management=options.default_data_management,
                    unstructured_covered=unstructured,
                )
                for name, region in ((r.name, r) for r in regions.compute)
            }
            data_mem = {
                id(r.directive): plan_data_region(
                    r.directive, region_label=f"data@{r.directive.line}"
                )
                for r in regions.data
            }
            return kernel_mem, data_mem

        kernel_mem, data_mem = self._analysis_pass(
            "memgen", fingerprint,
            (options.main_function, options.auto_privatize,
             options.auto_reduction, options.default_data_management),
            _memgen,
        )
        compiled.kernel_mem.update(kernel_mem)
        compiled.data_mem.update(data_mem)
        return compiled

    # ------------------------------------------------------------------
    # Pass execution plumbing
    # ------------------------------------------------------------------
    def _analysis_pass(self, name: str, fingerprint: Optional[str],
                       config_key: Tuple, thunk: Callable):
        """Run (or fetch) one pipeline pass.  Cached only for fingerprinted
        (parse-cache-resident, therefore immutable) trees."""
        if fingerprint is None:
            result = self._run_pass(name, thunk)
        else:
            cache = self.ctx.caches.get("passes")
            key = (fingerprint, name, config_key)
            result = cache.get(key)
            self.ctx.pass_stats.record_cache(name, result is not None)
            if result is None:
                result = self._run_pass(name, thunk)
                cache.put(key, result)
            else:
                self.ctx.tracer.event("pass.cache_hit", name=name)
        self._maybe_dump(name, result)
        return result

    def _run_pass(self, name: str, thunk: Callable):
        frame = _Frame(time.perf_counter())
        self._stack.append(frame)
        try:
            with self.ctx.tracer.span(f"pass.{name}", category="compiler"):
                return thunk()
        finally:
            self._stack.pop()
            elapsed = time.perf_counter() - frame.start
            self.ctx.pass_stats.record(name, max(0.0, elapsed - frame.child_seconds))
            if self._stack:
                self._stack[-1].child_seconds += elapsed

    def _leave_entry(self, start: float) -> None:
        self._entry_depth -= 1
        if self._entry_depth == 0:
            self.ctx.pass_stats.record_total(time.perf_counter() - start)

    # ------------------------------------------------------------------
    # --dump-after support
    # ------------------------------------------------------------------
    def _maybe_dump(self, name: str, result) -> None:
        if self.ctx.dump_after != name:
            return
        self.ctx.dump_sink(f"=== after pass '{name}' ===\n"
                           f"{describe_pass_output(name, result)}")

    def describe(self, name: str, result) -> str:
        return describe_pass_output(name, result)


def describe_pass_output(name: str, result) -> str:
    """Human-readable dump of one pass's output: printed source for
    tree-shaped results, a plan/summary rendering otherwise."""
    from repro.lang import ast

    if name == "validate":
        return "(validation passed)"
    if name == "regions":
        lines = [
            f"compute {r.name} @ line {r.directive.line}" for r in result.compute
        ] + [
            f"data    @ line {r.directive.line}" for r in result.data
        ]
        return "\n".join(lines) or "(no regions)"
    if name == "symbols":
        return "\n".join(f"{n}: {t}" for n, t in sorted(result.items()))
    if name == "alias":
        return repr(result)
    if name == "kernelgen":
        kernels, warnings = result
        lines = [summarize_kernel(name_, plan) for name_, plan in kernels.items()]
        lines.extend(f"warning: {w}" for w in warnings)
        return "\n".join(lines) or "(no kernels)"
    if name == "memgen":
        kernel_mem, data_mem = result
        lines = []
        for kname, plan in kernel_mem.items():
            ins = [a.var for a in plan.entries if a.copyin]
            outs = [a.var for a in plan.exits if a.copyout]
            lines.append(f"{kname}: copyin={ins} copyout={outs}")
        lines.extend(
            f"data region: {len(plan.entries)} entry / {len(plan.exits)} exit actions"
            for plan in data_mem.values()
        )
        return "\n".join(lines) or "(no memory plans)"
    if name == "checkinsert":
        return result.compiled.to_source()
    if isinstance(result, ast.Node):
        from repro.lang.printer import to_source

        return to_source(result)
    return repr(result)


def summarize_kernel(name: str, plan) -> str:
    """One-line kernel summary (shared by ``repro compile`` and
    ``--dump-after=kernelgen``)."""
    bits = [f"arrays={plan.arrays}", f"scalars={plan.scalars}"]
    if plan.private_decls:
        bits.append(f"private={sorted(plan.private_decls)}")
    if plan.firstprivate:
        bits.append(f"firstprivate={plan.firstprivate}")
    if plan.reductions:
        bits.append(f"reduction={[(v, op) for v, op, _ in plan.reductions]}")
    if plan.cached_vars or plan.split_vars:
        bits.append(f"RACY shared={plan.cached_vars + plan.split_vars}")
    return f"{name}: {' '.join(bits)}"
