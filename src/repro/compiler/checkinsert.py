"""Runtime-check insertion with optimized placement (§III-B).

Instruments a program with ``__check_read`` / ``__check_write`` /
``__reset_status`` intrinsic calls that the interpreter routes to the
coherence tracker.  Placement follows the paper's optimizations:

* GPU-side checks only at kernel boundaries;
* CPU-side checks only at first-read / first-write sites along some path
  from the program entry or from each kernel call
  (:mod:`repro.ir.firstaccess`);
* checks inside kernel-free loops hoist out of the loop;
* GPU write-checks hoist above an enclosing loop under the two Listing-3
  conditions — (i) the loop contains no CPU access of the variable and
  (ii) no transfer of the variable precedes the check inside the loop —
  which is what exposes cross-iteration redundant transfers;
* ``reset_status`` for a dead remote copy goes at CPU last-write sites
  (:mod:`repro.ir.lastwrite`, gated by :mod:`repro.ir.deadness`) and, for
  dead CPU copies, right after the kernel call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.driver import CompiledProgram, compile_ast
from repro.ir.cfg import BRANCH, KERNEL, STMT, build_cfg
from repro.ir.deadness import analyze_deadness
from repro.ir.defuse import annotate
from repro.ir.firstaccess import analyze_firstaccess
from repro.ir.lastwrite import analyze_lastwrite
from repro.lang import ast
from repro.lang.ctypes import Array, Pointer
from repro.lang.visitor import clone_tree, parent_map
from repro.runtime.coherence import MAYSTALE, NOTSTALE


@dataclass(frozen=True)
class InsertedCheck:
    kind: str        # "check_read" | "check_write" | "reset_status"
    var: str
    side: str
    site: str
    position: str    # "before" | "after"
    anchor_line: int
    status: Optional[str] = None  # reset_status only


@dataclass
class InstrumentationResult:
    program: ast.Program
    compiled: CompiledProgram
    universe: Set[str]
    checks: List[InsertedCheck] = field(default_factory=list)

    def count(self, kind: Optional[str] = None) -> int:
        return sum(1 for c in self.checks if kind is None or c.kind == kind)


def shared_universe(compiled: CompiledProgram) -> Set[str]:
    """Arrays shared between CPU and GPU: everything any kernel touches
    (pointer accesses expanded through the alias analysis) plus everything a
    data clause names."""
    arrays = {
        name for name, ctype in compiled.symbols.items() if isinstance(ctype, Array)
    }
    universe: Set[str] = set()
    for plan in compiled.kernels.values():
        universe |= compiled.aliases.expand(set(plan.arrays)) & arrays
    for region in compiled.regions.data:
        for _, var in region.directive.data_clause_vars():
            if var in arrays:
                universe.add(var)
    for region in compiled.regions.compute:
        for _, var in region.directive.data_clause_vars():
            if var in arrays:
                universe.add(var)
    for point in compiled.regions.updates:
        for clause in point.directive.clauses_named("host", "device", "self"):
            for var in clause.var_names():
                if var in arrays:
                    universe.add(var)
    return universe


def instrument_for_memverify(compiled: CompiledProgram,
                             optimize_placement: bool = True,
                             ctx=None) -> InstrumentationResult:
    """Clone, analyze, and instrument the program for a verification run.

    ``optimize_placement=False`` disables the §III-B placement optimizations
    (first-access filtering and loop hoisting): every tracked access gets a
    check — the ablation baseline for the Figure-4 overhead study."""
    cloned_ast = clone_tree(compiled.program)
    clone = compile_ast(
        cloned_ast, compiled.options.copy(strict_validation=False), ctx=ctx
    )
    universe = shared_universe(clone)

    func = clone.main
    cfg = build_cfg(func, clone.regions)
    aliases = clone.aliases.alias_map()
    annotate(cfg, aliases)

    first_cpu = analyze_firstaccess(cfg, "cpu", universe)
    last_cpu = analyze_lastwrite(cfg, "cpu", universe)
    # Value view (transfers transparent): gates write-site resets.
    dead_cpu = analyze_deadness(cfg, "cpu", universe)
    dead_gpu = analyze_deadness(cfg, "gpu", universe)
    # Location view (transfers overwrite): gates transfer-site pins.
    dead_cpu_loc = analyze_deadness(cfg, "cpu", universe, transfers_as_defs=True)
    dead_gpu_loc = analyze_deadness(cfg, "gpu", universe, transfers_as_defs=True)

    parents = parent_map(func.body)
    inserter = _Inserter(func, parents, clone)
    pointer_names = {
        name for name, ctype in clone.symbols.items() if isinstance(ctype, Pointer)
    }

    def in_universe(var: str) -> bool:
        if var in universe:
            return True
        if var in pointer_names:
            return bool(clone.aliases.aliases_of(var) & universe)
        return False

    for node in cfg.nodes:
        if node.kind in (STMT, BRANCH) and node.stmt is not None:
            anchor = inserter.anchor_for(node)
            if anchor is None:
                continue
            site = f"line {anchor.line}"
            reads = (
                first_cpu.first_reads(node) if optimize_placement
                else node.cpu_use & universe
            )
            writes = (
                first_cpu.first_writes(node) if optimize_placement
                else node.cpu_def & universe
            )
            for var in sorted(reads):
                if in_universe(var):
                    inserter.insert_check(
                        "check_read", var, "cpu", site, anchor,
                        hoist=optimize_placement,
                    )
            for var in sorted(writes):
                if in_universe(var):
                    inserter.insert_check(
                        "check_write", var, "cpu", site, anchor,
                        hoist=optimize_placement,
                    )
            # reset_status at CPU last-writes whose GPU copy is dead.
            for var in sorted(last_cpu.last_writes(node)):
                if var not in universe:
                    continue
                verdict = dead_gpu.classify_out(node, var)
                if verdict == "must-dead":
                    inserter.insert_reset(var, "gpu", NOTSTALE, site, anchor)
                elif verdict == "may-dead":
                    inserter.insert_reset(var, "gpu", MAYSTALE, site, anchor)
        elif node.kind == KERNEL:
            anchor = node.stmt
            kernel_name = node.region.name
            for var in sorted(node.gpu_use):
                if in_universe(var):
                    inserter.insert_check(
                        "check_read", var, "gpu", kernel_name, anchor, hoist=False
                    )
            for var in sorted(node.gpu_def):
                if in_universe(var):
                    hoist_to = (
                        inserter.gpu_write_hoist_target(node, var)
                        if optimize_placement else None
                    )
                    inserter.insert_check(
                        "check_write", var, "gpu", kernel_name,
                        hoist_to if hoist_to is not None else anchor,
                        hoist=False,
                    )
            # reset_status after kernels whose CPU copy is dead.
            for var in sorted(node.gpu_def):
                if var not in universe:
                    continue
                verdict = dead_cpu.classify_out(node, var)
                if verdict == "must-dead":
                    inserter.insert_reset(var, "cpu", NOTSTALE, kernel_name, anchor, after=True)
                elif verdict == "may-dead":
                    inserter.insert_reset(var, "cpu", MAYSTALE, kernel_name, anchor, after=True)

    # Dead-target pins for region-entry copyins (h2d whose GPU destination
    # the analysis proves (may-)dead at the region entrance).  The pin is
    # applied by the runtime *after* the buffer's allocation, which would
    # otherwise reset the fresh buffer to stale and mask the verdict.
    enter_nodes = {
        id(n.data_directive): n for n in cfg.nodes if n.kind == "data_enter"
    }
    for data_region in clone.regions.data:
        plan = clone.data_mem.get(id(data_region.directive))
        anchor_node = enter_nodes.get(id(data_region.directive))
        if plan is None or anchor_node is None:
            continue
        for action in plan.entries:
            if not action.copyin or action.var not in universe:
                continue
            # OUT of the enter node: deadness just after the copyins ran.
            verdict = dead_gpu_loc.classify_out(anchor_node, action.var)
            if verdict == "must-dead":
                inserter.insert_pin(action.var, "gpu", NOTSTALE, action.site,
                                    data_region.stmt)
            elif verdict == "may-dead":
                inserter.insert_pin(action.var, "gpu", MAYSTALE, action.site,
                                    data_region.stmt)
    for region in clone.regions.compute:
        plan = clone.kernel_mem.get(region.name)
        node = cfg.node_for_stmt(region.stmt)
        if plan is None or node is None:
            continue
        for action in plan.entries:
            if not action.copyin or action.var not in universe:
                continue
            verdict = dead_gpu_loc.classify_in(node, action.var)
            if verdict == "must-dead":
                inserter.insert_pin(action.var, "gpu", NOTSTALE, action.site, region.stmt)
            elif verdict == "may-dead":
                inserter.insert_pin(action.var, "gpu", MAYSTALE, action.site, region.stmt)
    # ... and for `update` directives: the destination copy's deadness just
    # after the transfer (OUT of the node — the transfer itself must not
    # count as its own overwrite) gates the pin.
    for point in clone.regions.updates:
        node = cfg.node_for_stmt(point.stmt)
        if node is None:
            continue
        for clause, side, dead in (
            *((c, "gpu", dead_gpu_loc) for c in point.directive.clauses_named("device")),
            *((c, "cpu", dead_cpu_loc) for c in point.directive.clauses_named("host", "self")),
        ):
            for var in clause.var_names():
                if var not in universe:
                    continue
                verdict = dead.classify_out(node, var)
                if verdict == "must-dead":
                    inserter.insert_pin(var, side, NOTSTALE, point.name, point.stmt)
                elif verdict == "may-dead":
                    inserter.insert_pin(var, side, MAYSTALE, point.name, point.stmt)

    inserter.apply()
    # Recompile: region tables keep statement identity, but kernel plans are
    # unaffected by inserted ExprStmts outside regions.
    final = compile_ast(
        cloned_ast, compiled.options.copy(strict_validation=False), ctx=ctx
    )
    return InstrumentationResult(cloned_ast, final, universe, inserter.report)



class _Inserter:
    """Collects insertions keyed by anchor statement, then rewrites blocks."""

    def __init__(self, func: ast.FuncDef, parents, compiled: CompiledProgram):
        self.func = func
        self.parents = parents
        self.compiled = compiled
        self.before: Dict[int, List[ast.Stmt]] = {}
        self.after: Dict[int, List[ast.Stmt]] = {}
        self.report: List[InsertedCheck] = []
        self._seen: Set[Tuple] = set()
        self._anchors: Dict[int, ast.Stmt] = {}

    # -- anchoring -----------------------------------------------------------
    def anchor_for(self, node) -> Optional[ast.Stmt]:
        """Nearest enclosing statement that sits in a Block's body list."""
        stmt = node.stmt
        while stmt is not None and not isinstance(self.parents.get(id(stmt)), ast.Block):
            parent = self.parents.get(id(stmt))
            if parent is None:
                return None
            if isinstance(parent, ast.Stmt):
                stmt = parent
            else:
                return None
        return stmt

    def enclosing_loops(self, stmt: ast.Stmt) -> List[ast.Stmt]:
        chain: List[ast.Stmt] = []
        node = self.parents.get(id(stmt))
        while node is not None:
            if isinstance(node, (ast.For, ast.While)):
                chain.append(node)
            node = self.parents.get(id(node))
        return chain  # innermost first

    def _loop_has_kernel(self, loop: ast.Stmt) -> bool:
        regions = self.compiled.regions
        return any(
            any(n is inner for n in loop.walk())
            for inner in (r.stmt for r in regions.compute)
        )

    def hoist_anchor(self, anchor: ast.Stmt) -> ast.Stmt:
        """Move a CPU check above every enclosing kernel-free loop."""
        target = anchor
        for loop in self.enclosing_loops(anchor):
            if self._loop_has_kernel(loop):
                break
            target = loop
        return target

    # -- GPU write-check hoisting (Listing 3) --------------------------------
    def gpu_write_hoist_target(self, kernel_node, var: str) -> Optional[ast.Stmt]:
        region_stmt = kernel_node.stmt
        aliases = self.compiled.aliases
        var_objects = aliases.aliases_of(var)
        target: Optional[ast.Stmt] = None
        for loop in self.enclosing_loops(region_stmt):
            if self._loop_cpu_accesses(loop, var_objects):
                break  # condition (i) violated
            if self._loop_transfers_before(loop, region_stmt, var_objects):
                break  # condition (ii) violated
            target = loop
        return target

    def _loop_cpu_accesses(self, loop: ast.Stmt, var_objects: Set[str]) -> bool:
        """Does CPU code inside the loop touch any of the objects?"""
        from repro.ir.defuse import stmt_access

        region_stmts = [r.stmt for r in self.compiled.regions.compute]

        def rec(stmt: ast.Stmt) -> bool:
            if any(stmt is r for r in region_stmts):
                return False  # kernel code is not CPU code
            if isinstance(stmt, ast.Block):
                return any(rec(s) for s in stmt.body)
            if isinstance(stmt, ast.If):
                from repro.ir.defuse import expr_uses

                if expr_uses(stmt.cond) & var_objects:
                    return True
                return rec(stmt.then) or (stmt.orelse is not None and rec(stmt.orelse))
            if isinstance(stmt, (ast.For, ast.While)):
                from repro.ir.defuse import expr_uses

                if isinstance(stmt, ast.While) and expr_uses(stmt.cond) & var_objects:
                    return True
                if isinstance(stmt, ast.For):
                    for part in (stmt.init, stmt.step):
                        if part is not None and rec(part):
                            return True
                    if stmt.cond is not None and expr_uses(stmt.cond) & var_objects:
                        return True
                return rec(stmt.body)
            acc = stmt_access(stmt, self.compiled.aliases.alias_map())
            return bool((acc.use | acc.defs) & var_objects)

        body = loop.body if isinstance(loop, (ast.For, ast.While)) else loop
        return rec(body)

    def _loop_transfers_before(
        self, loop: ast.Stmt, region_stmt: ast.Stmt, var_objects: Set[str]
    ) -> bool:
        """Listing 3's condition (ii): a transfer of the variable that
        executes *before the write check* within the loop body disqualifies
        hoisting.  The check sits right before the region, so we scan the
        loop body in statement order up to the region statement; the
        region's own entry copyins also count (they run with the launch,
        i.e. at the check position every iteration)."""
        expand = self.compiled.aliases.expand
        region_by_stmt = {
            id(r.stmt): r for r in self.compiled.regions.compute
        }

        def region_entry_copies(region) -> bool:
            plan = self.compiled.kernel_mem.get(region.name)
            if plan is None:
                return False
            return any(
                action.copyin and expand({action.var}) & var_objects
                for action in plan.entries
            )

        def stmt_transfers(stmt: ast.Stmt) -> bool:
            for directive in getattr(stmt, "pragmas", []):
                if directive.namespace != "acc":
                    continue
                if directive.name == "update":
                    for clause in directive.clauses_named("host", "device", "self"):
                        if expand(set(clause.var_names())) & var_objects:
                            return True
                elif directive.is_data:
                    for clause_name, var in directive.data_clause_vars():
                        from repro.acc.directives import CLAUSE_COPIES_IN, CLAUSE_COPIES_OUT

                        if clause_name in (CLAUSE_COPIES_IN | CLAUSE_COPIES_OUT):
                            if expand({var}) & var_objects:
                                return True
            return False

        found = False

        def rec(stmt: ast.Stmt) -> bool:
            """True once the region statement has been reached."""
            nonlocal found
            if stmt is region_stmt:
                if region_entry_copies(region_by_stmt[id(stmt)]):
                    found = True
                return True
            if stmt_transfers(stmt):
                found = True
            if id(stmt) in region_by_stmt:
                # A different kernel before ours: its transfers count.
                if region_entry_copies(region_by_stmt[id(stmt)]):
                    found = True
                plan = self.compiled.kernel_mem.get(region_by_stmt[id(stmt)].name)
                if plan is not None and any(
                    action.copyout and expand({action.var}) & var_objects
                    for action in plan.exits
                ):
                    found = True
                return False
            if isinstance(stmt, ast.Block):
                return any(rec(s) for s in stmt.body)
            if isinstance(stmt, ast.If):
                hit = rec(stmt.then)
                if stmt.orelse is not None:
                    hit = rec(stmt.orelse) or hit
                return hit
            if isinstance(stmt, (ast.For, ast.While)):
                return rec(stmt.body)
            return False

        body = loop.body if isinstance(loop, (ast.For, ast.While)) else loop
        rec(body)
        return found

    # -- recording / applying --------------------------------------------------
    def insert_check(self, kind: str, var: str, side: str, site: str,
                     anchor: ast.Stmt, hoist: bool) -> None:
        if hoist and side == "cpu":
            anchor = self.hoist_anchor(anchor)
        key = (kind, var, side, id(anchor))
        if key in self._seen:
            return
        self._seen.add(key)
        func = "__check_read" if kind == "check_read" else "__check_write"
        call = _intrinsic(func, [var, side, site], anchor.line)
        self.before.setdefault(id(anchor), []).append(call)
        self._anchors[id(anchor)] = anchor
        self.report.append(
            InsertedCheck(kind, var, side, site, "before", anchor.line)
        )

    def insert_reset(self, var: str, side: str, status: str, site: str,
                     anchor: ast.Stmt, after: bool = True) -> None:
        key = ("reset", var, side, status, id(anchor))
        if key in self._seen:
            return
        self._seen.add(key)
        call = _intrinsic("__reset_status", [var, side, status, site], anchor.line)
        table = self.after if after else self.before
        table.setdefault(id(anchor), []).append(call)
        self._anchors[id(anchor)] = anchor
        self.report.append(
            InsertedCheck("reset_status", var, side, site,
                          "after" if after else "before", anchor.line, status)
        )

    def insert_pin(self, var: str, side: str, status: str, site: str,
                   anchor: ast.Stmt) -> None:
        key = ("pin", var, side, status, id(anchor))
        if key in self._seen:
            return
        self._seen.add(key)
        call = _intrinsic("__pin_after_alloc", [var, side, status, site], anchor.line)
        self.before.setdefault(id(anchor), []).append(call)
        self._anchors[id(anchor)] = anchor
        self.report.append(
            InsertedCheck("pin_after_alloc", var, side, site, "before",
                          anchor.line, status)
        )

    def apply(self) -> None:
        if not (self.before or self.after):
            return

        def rewrite(block: ast.Block) -> None:
            new_body: List[ast.Stmt] = []
            for stmt in block.body:
                new_body.extend(self.before.get(id(stmt), ()))
                new_body.append(stmt)
                new_body.extend(self.after.get(id(stmt), ()))
            block.body = new_body

        for node in self.func.body.walk():
            if isinstance(node, ast.Block):
                rewrite(node)


def _intrinsic(func: str, args: List[str], line: int) -> ast.ExprStmt:
    return ast.ExprStmt(
        ast.Call(func, [ast.StrLit(a, line) for a in args], line), line
    )
