"""Memory-transfer demotion (§III-A).

For each *target* kernel the pass rewrites the program so the kernel always
consumes reference CPU data (Listing 1 -> Listing 2 of the paper):

* data clauses in enclosing ``data`` regions are *demoted* onto the target
  compute region — read-only data lands in ``copyin``, modified data in
  ``copy`` (the copy-back goes to a temporary, handled by the
  result-comparison transformation);
* the kernel and its transfers become asynchronous (``async(q)``) so they
  overlap with the sequential CPU execution;
* every directive unrelated to a target kernel is removed, so unrelated
  compute regions execute sequentially on the CPU — no error propagation
  from earlier GPU translations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.acc.directives import Clause, VarRef
from repro.acc.regions import collect_regions
from repro.ir.defuse import region_access
from repro.lang import ast
from repro.lang.visitor import clone_tree

# The async queue the verification harness uses (paper's Listing 2 uses 1).
VERIFY_QUEUE = 1


def demote_for_verification(
    program: ast.Program,
    target_kernels: Set[str],
    main_function: str = "main",
) -> ast.Program:
    """Return a clone of ``program`` rewritten for kernel verification."""
    cloned = clone_tree(program)
    func = cloned.func(main_function)
    regions = collect_regions(func)
    known = {r.name for r in regions.compute}
    unknown = target_kernels - known
    if unknown:
        from repro.errors import CompileError

        raise CompileError(f"unknown verification targets: {sorted(unknown)}")

    target_stmts: Dict[int, str] = {}
    for region in regions.compute:
        if region.name in target_kernels:
            target_stmts[id(region.stmt)] = region.name
            _demote_region(region)

    _strip_unrelated(func, target_stmts)
    return cloned


def _demote_region(region) -> None:
    """Rewrite the region's directive with demoted data clauses + async."""
    directive = region.directive
    acc = region_access(region.stmt)
    # Locals / privates are excluded the same way kernelgen does it: only
    # names that look like shared arrays matter, but at this level we cannot
    # consult types, so we demote everything the enclosing data regions or
    # the directive itself named, plus everything the region accesses that
    # an enclosing region covered.
    covered: List[str] = []
    for data_region in region.enclosing_data:
        for _, var in data_region.directive.data_clause_vars():
            if var not in covered:
                covered.append(var)
    own: List[str] = [v for _, v in directive.data_clause_vars()]

    demoted = [v for v in covered + own if v in (acc.use | acc.defs)]
    read_only = [v for v in demoted if v not in acc.defs]
    written = [v for v in demoted if v in acc.defs]

    directive.remove_clauses(
        "copy", "copyin", "copyout", "create", "present",
        "present_or_copy", "present_or_copyin", "present_or_copyout",
        "present_or_create",
    )
    if written:
        directive.add_clause(Clause("copy", [VarRef(v) for v in written]))
    if read_only:
        directive.add_clause(Clause("copyin", [VarRef(v) for v in read_only]))
    if not directive.has_clause("async"):
        directive.add_clause(Clause("async", [ast.IntLit(VERIFY_QUEUE)]))


def _strip_unrelated(func: ast.FuncDef, target_stmts: Dict[int, str]) -> None:
    """Remove every acc directive not belonging to a target kernel."""
    for node in func.body.walk():
        if not isinstance(node, ast.Stmt) or not node.pragmas:
            continue
        if id(node) in target_stmts:
            # Keep the (rewritten) compute directive and loop directives.
            node.pragmas = [
                p for p in node.pragmas
                if p.namespace != "acc" or p.is_compute or p.is_loop
            ]
            continue
        if _inside_target(node, target_stmts, func):
            continue  # inner `loop` directives of a target region survive
        node.pragmas = [p for p in node.pragmas if p.namespace != "acc"]


def _inside_target(node: ast.Stmt, target_stmts: Dict[int, str], func: ast.FuncDef) -> bool:
    for stmt_id in target_stmts:
        stmt = _find_by_id(func, stmt_id)
        if stmt is not None and any(n is node for n in stmt.walk()):
            return True
    return False


def _find_by_id(func: ast.FuncDef, stmt_id: int) -> Optional[ast.Stmt]:
    for node in func.body.walk():
        if id(node) == stmt_id:
            return node
    return None
