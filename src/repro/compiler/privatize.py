"""Automatic privatization analysis.

A scalar written inside a compute region's partitioned body can safely be
made thread-private when no execution path through one iteration reads it
before writing it (no loop-carried flow through the scalar).  Scalars that
fail the test (or everything, when auto-privatization is disabled — the
Table II study) are *falsely shared*: kernelgen register-caches them with a
dump-back, reproducing the paper's latent-race behaviour.
"""

from __future__ import annotations

from typing import Sequence, Set

from repro.ir.cfg import CFG, build_cfg
from repro.ir.defuse import annotate
from repro.ir.liveness import analyze_liveness
from repro.lang import ast


def _body_cfg(stmts: Sequence[ast.Stmt]) -> CFG:
    """CFG over a loop body treated as a standalone function."""
    wrapper = ast.FuncDef("__body", None, [], ast.Block(list(stmts)))
    cfg = build_cfg(wrapper)
    annotate(cfg)
    return cfg


def written_scalars(stmts: Sequence[ast.Stmt], array_names: Set[str]) -> Set[str]:
    """Scalars assigned anywhere in the body (arrays and declared locals
    excluded — locals are private by construction)."""
    declared = {
        node.name for stmt in stmts for node in stmt.walk() if isinstance(node, ast.VarDecl)
    }
    written: Set[str] = set()
    for stmt in stmts:
        for node in stmt.walk():
            if isinstance(node, ast.Assign):
                base = ast.base_name(node.target)
                if (
                    base is not None
                    and not isinstance(node.target, ast.Subscript)
                    and not (isinstance(node.target, ast.Unary) and node.target.op == "*")
                ):
                    written.add(base)
            elif isinstance(node, ast.Unary) and node.op in ("++", "--", "p++", "p--"):
                base = ast.base_name(node.operand)
                if base is not None:
                    written.add(base)
    return written - declared - array_names


def privatizable_scalars(
    stmts: Sequence[ast.Stmt],
    array_names: Set[str],
    loop_indices: Set[str],
) -> Set[str]:
    """Scalars safe to privatize: written in the body and never read before
    written within one iteration (i.e. not live at body entry)."""
    candidates = written_scalars(stmts, array_names) - loop_indices
    if not candidates:
        return set()
    cfg = _body_cfg(stmts)
    live = analyze_liveness(cfg, side="cpu")
    live_at_entry = set(live.in_of(cfg.entry))
    return {v for v in candidates if v not in live_at_entry}


def unprivatizable_scalars(
    stmts: Sequence[ast.Stmt],
    array_names: Set[str],
    loop_indices: Set[str],
) -> Set[str]:
    """Written scalars that carry a value *into* an iteration — candidates
    for reduction recognition; racy if left shared."""
    candidates = written_scalars(stmts, array_names) - loop_indices
    return candidates - privatizable_scalars(stmts, array_names, loop_indices)
