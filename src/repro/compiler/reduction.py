"""Reduction pattern recognition.

Recognizes, inside a compute region body, scalars updated exclusively by one
of the classic reduction shapes:

* ``s = s + e`` / ``s += e``   (also ``*``)
* ``s = e + s``
* ``if (e > m) { m = e; }``    (max; ``<`` gives min)
* ``m = fmax(m, e)`` / ``fmin``

where ``e`` never mentions ``s``.  Any other read or write of the scalar in
the body disqualifies it.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

from repro.ir.defuse import expr_uses
from repro.lang import ast


def _match_accumulate(stmt: ast.Assign, var: str) -> Optional[str]:
    """Return the reduction op if stmt is `var = var ⊕ e` (or compound)."""
    if not isinstance(stmt.target, ast.Name) or stmt.target.id != var:
        return None
    if stmt.op in ("+", "*"):
        return stmt.op if var not in expr_uses(stmt.value) else None
    if stmt.op:
        return None
    value = stmt.value
    if isinstance(value, ast.Binary) and value.op in ("+", "*"):
        left, right = value.left, value.right
        if isinstance(left, ast.Name) and left.id == var and var not in expr_uses(right):
            return value.op
        if (
            value.op == "+"
            and isinstance(right, ast.Name)
            and right.id == var
            and var not in expr_uses(left)
        ):
            return "+"
    if isinstance(value, ast.Call) and value.func in ("fmax", "fmin", "max", "min"):
        names = [a.id for a in value.args if isinstance(a, ast.Name)]
        if var in names and len(value.args) == 2:
            other = value.args[1] if names and names[0] == var else value.args[0]
            if var not in expr_uses(other):
                return "max" if value.func in ("fmax", "max") else "min"
    return None


def _match_minmax_if(stmt: ast.If, var: str) -> Optional[str]:
    """`if (e > m) { m = e; }` / `if (e < m) ...` (either comparison order)."""
    if stmt.orelse is not None or not isinstance(stmt.cond, ast.Binary):
        return None
    body = stmt.then.body if isinstance(stmt.then, ast.Block) else [stmt.then]
    if len(body) != 1 or not isinstance(body[0], ast.Assign):
        return None
    inner = body[0]
    if not isinstance(inner.target, ast.Name) or inner.target.id != var or inner.op:
        return None
    if var in expr_uses(inner.value):
        return None
    cond = stmt.cond
    sides = (cond.left, cond.right)
    var_on_left = isinstance(sides[0], ast.Name) and sides[0].id == var
    var_on_right = isinstance(sides[1], ast.Name) and sides[1].id == var
    if not (var_on_left or var_on_right):
        return None
    op = cond.op
    if op not in ("<", ">", "<=", ">="):
        return None
    # `if (e > m) m = e` keeps the max; `if (m < e) m = e` too.
    bigger_wins = (op in (">", ">=")) != var_on_left
    return "max" if bigger_wins else "min"


def recognize_reductions(
    stmts: Sequence[ast.Stmt], candidates: Set[str]
) -> Dict[str, str]:
    """Map candidate scalars to their reduction op where every access in the
    body is one reduction-shaped update."""
    verdict: Dict[str, Optional[str]] = {v: None for v in candidates}

    def visit(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.body:
                visit(inner)
            return
        if isinstance(stmt, ast.For):
            for part in (stmt.init, stmt.step):
                if part is not None:
                    _disqualify_uses(part, verdict)
            if stmt.cond is not None:
                _disqualify_expr(stmt.cond, verdict)
            visit(stmt.body)
            return
        if isinstance(stmt, ast.While):
            _disqualify_expr(stmt.cond, verdict)
            visit(stmt.body)
            return
        if isinstance(stmt, ast.If):
            matched = set()
            for var in list(verdict):
                if verdict[var] is False:
                    continue
                op = _match_minmax_if(stmt, var)
                if op is not None:
                    _note(verdict, var, op)
                    matched.add(var)
            if matched:
                # condition may mention the matched var; others must not.
                for var in verdict:
                    if var not in matched and verdict[var] is not False:
                        if var in expr_uses(stmt.cond):
                            verdict[var] = False
                for inner_var in verdict:
                    if inner_var in matched:
                        continue
                _check_subtree_excluding(stmt.then, verdict, matched)
                return
            _disqualify_expr(stmt.cond, verdict)
            visit(stmt.then)
            if stmt.orelse is not None:
                visit(stmt.orelse)
            return
        if isinstance(stmt, ast.Assign):
            for var in list(verdict):
                if verdict[var] is False:
                    continue
                op = _match_accumulate(stmt, var)
                if op is not None:
                    _note(verdict, var, op)
                else:
                    touched = expr_uses(stmt.value) | expr_uses(stmt.target)
                    base = ast.base_name(stmt.target)
                    if var in touched or base == var:
                        verdict[var] = False
            return
        _disqualify_uses(stmt, verdict)

    for stmt in stmts:
        visit(stmt)
    return {v: op for v, op in verdict.items() if isinstance(op, str)}


def _note(verdict, var, op) -> None:
    current = verdict[var]
    if current is None:
        verdict[var] = op
    elif current != op:
        verdict[var] = False  # mixed ops: not a reduction


def _disqualify_expr(expr: ast.Expr, verdict) -> None:
    used = expr_uses(expr)
    for var in verdict:
        if var in used and verdict[var] is not False:
            verdict[var] = False


def _disqualify_uses(stmt: ast.Stmt, verdict) -> None:
    for node in stmt.walk():
        if isinstance(node, ast.Name) and node.id in verdict:
            if verdict[node.id] is not False:
                verdict[node.id] = False


def _check_subtree_excluding(stmt: ast.Stmt, verdict, exclude: Set[str]) -> None:
    for node in stmt.walk():
        if isinstance(node, ast.Name) and node.id in verdict and node.id not in exclude:
            if verdict[node.id] is not False:
                verdict[node.id] = False
