"""Fault injection for the evaluation studies.

Table II removes ``private``/``reduction`` clauses and disables the automatic
recognitions, then asks the kernel-verification scheme to find the resulting
races.  Figure 1 strips all manual memory management so the default scheme
kicks in.  All injectors clone the program; the input AST is never mutated.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.lang import ast
from repro.lang.visitor import clone_tree


def _edit_pragmas(program: ast.Program, editor) -> ast.Program:
    """Clone the program and run ``editor(stmt, pragmas) -> new_pragmas``
    over every statement."""
    cloned = clone_tree(program)
    for func in cloned.funcs:
        for node in func.body.walk():
            if isinstance(node, ast.Stmt) and node.pragmas:
                node.pragmas = editor(node, list(node.pragmas))
    return cloned


def drop_private_clauses(program: ast.Program, kernels: Optional[Set[str]] = None) -> ast.Program:
    """Remove every ``private``/``firstprivate`` clause (Table II study)."""

    def editor(stmt, pragmas):
        for d in pragmas:
            if d.namespace == "acc":
                d.remove_clauses("private", "firstprivate")
        return pragmas

    return _edit_pragmas(program, editor)


def drop_reduction_clauses(program: ast.Program, kernels: Optional[Set[str]] = None) -> ast.Program:
    """Remove every ``reduction`` clause (Table II study)."""

    def editor(stmt, pragmas):
        for d in pragmas:
            if d.namespace == "acc":
                d.remove_clauses("reduction")
        return pragmas

    return _edit_pragmas(program, editor)


def strip_data_management(program: ast.Program) -> ast.Program:
    """Remove every manual memory-management construct: ``data`` regions,
    ``update`` directives, and data clauses on compute directives.  What
    remains relies entirely on the naive default scheme (Figure 1's
    baseline)."""
    from repro.acc.directives import DATA_CLAUSES

    def editor(stmt, pragmas):
        kept = []
        for d in pragmas:
            if d.namespace != "acc":
                kept.append(d)
                continue
            if d.name in ("data", "update"):
                continue
            d.clauses = [c for c in d.clauses if c.name not in DATA_CLAUSES]
            kept.append(d)
        return kept

    return _edit_pragmas(program, editor)


def strip_all_acc(program: ast.Program) -> ast.Program:
    """Remove every acc directive: the sequential reference program."""

    def editor(stmt, pragmas):
        return [d for d in pragmas if d.namespace != "acc"]

    return _edit_pragmas(program, editor)


def list_clause_sites(program: ast.Program, clause_names: Set[str]) -> List[str]:
    """Directive lines carrying any of the named clauses (study bookkeeping)."""
    sites = []
    for func in program.funcs:
        for node in func.body.walk():
            if isinstance(node, ast.Stmt):
                for d in node.pragmas:
                    if any(d.clause(name) for name in clause_names):
                        sites.append(f"{func.name}:{d.line}:{d.name}")
    return sites
