"""Result-comparison transformation (§III-A).

Runs after :mod:`repro.compiler.demotion` and turns every target region

    #pragma acc kernels loop copy(q) copyin(w) async(1)
    for (...) { ... }

into the Listing-2 shape:

    __verify_begin("main_kernel0");
    #pragma acc kernels loop copy(q) copyin(w) async(1)
    for (...) { ... }                  // GPU, outputs land in temp space
    for (...) { ... }                  // sequential CPU reference
    #pragma acc wait(1)
    __verify_compare("main_kernel0", "q");
    __verify_end("main_kernel0");

The interpreter routes ``__verify_*`` calls to the verification session,
which owns the temporary buffers and the user-configurable comparison.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.acc.directives import Clause, Directive
from repro.acc.regions import collect_regions
from repro.compiler.demotion import VERIFY_QUEUE
from repro.ir.defuse import region_access
from repro.lang import ast
from repro.lang.visitor import clone_tree


def insert_result_comparison(
    program: ast.Program,
    target_kernels: Set[str],
    main_function: str = "main",
) -> ast.Program:
    """Wrap each target region with reference execution + comparison.

    ``program`` must already be demoted; the pass mutates and returns it
    (demotion already cloned the user's AST)."""
    func = program.func(main_function)
    regions = collect_regions(func)
    replacements: Dict[int, List[ast.Stmt]] = {}
    for region in regions.compute:
        if region.name not in target_kernels:
            continue
        replacements[id(region.stmt)] = _wrap_region(region)
    _apply_replacements(func.body, replacements)
    return program


def _wrap_region(region) -> List[ast.Stmt]:
    name = region.name
    stmt = region.stmt

    seq = clone_tree(stmt)
    for node in seq.walk():
        if isinstance(node, ast.Stmt):
            node.pragmas = [p for p in node.pragmas if p.namespace != "acc"]

    wait_carrier = ast.Block([], stmt.line)
    wait_carrier.pragmas = [
        Directive("wait", [Clause("wait", [ast.IntLit(VERIFY_QUEUE)])], line=stmt.line)
    ]

    compares = [
        _call_stmt("__verify_compare", [name, var], stmt.line)
        for var in _output_vars(region)
    ]
    return [
        _call_stmt("__verify_begin", [name], stmt.line),
        stmt,
        seq,
        wait_carrier,
        *compares,
        _call_stmt("__verify_end", [name], stmt.line),
    ]


def _output_vars(region) -> List[str]:
    """Everything the region writes, minus region-local names."""
    acc = region_access(region.stmt)
    local: Set[str] = set()
    for node in region.stmt.walk():
        if isinstance(node, ast.VarDecl):
            local.add(node.name)
        elif isinstance(node, ast.For):
            if isinstance(node.init, ast.Assign) and isinstance(node.init.target, ast.Name):
                local.add(node.init.target.id)
    for directive in _all_directives(region):
        for clause in directive.clauses_named("private", "firstprivate"):
            local |= set(clause.var_names())
    return sorted(acc.defs - local)


def _all_directives(region):
    out = [region.directive]
    for node in region.stmt.walk():
        if isinstance(node, ast.Stmt):
            out.extend(p for p in node.pragmas if p.namespace == "acc")
    return out


def _call_stmt(func: str, args: List[str], line: int) -> ast.ExprStmt:
    return ast.ExprStmt(
        ast.Call(func, [ast.StrLit(a, line) for a in args], line), line
    )


def _apply_replacements(block: ast.Stmt, replacements: Dict[int, List[ast.Stmt]]) -> None:
    """Replace statements (by identity) inside every statement list."""
    for name in block._fields:
        value = getattr(block, name)
        if isinstance(value, list):
            new_list: List[ast.Stmt] = []
            for item in value:
                if isinstance(item, ast.Node) and id(item) in replacements:
                    new_list.extend(replacements.pop(id(item)))
                else:
                    if isinstance(item, ast.Node):
                        _apply_replacements(item, replacements)
                    new_list.append(item)
            setattr(block, name, new_list)
        elif isinstance(value, ast.Node):
            if id(value) in replacements:
                setattr(block, name, ast.Block(replacements.pop(id(value)), value.line))
            else:
                _apply_replacements(value, replacements)
