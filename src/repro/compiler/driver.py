"""Compiler driver: source text -> :class:`CompiledProgram`.

A compiled program bundles the (possibly transformed) AST with the per-region
kernel plans and memory plans plus the analysis artifacts later passes and
the interpreter need.  ``compile_source`` is the one-stop entry point; passes
that rewrite the AST (demotion, check insertion, fault injection) recompile
via :func:`compile_ast`.

``compile_source`` memoizes on (source hash, options): experiment harnesses
and the benchmark suite compile the same twelve programs over and over, and
re-parsing/re-analyzing them dominated their setup cost.  Memoization is
sound because compiler passes never mutate a compiled program's AST in
place — every transform (demotion, check insertion, fault injection)
clones before editing.  ``compile_ast`` is deliberately *not* memoized:
its callers hand it freshly transformed trees.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.acc.regions import RegionTable, collect_regions
from repro.acc.validate import declared_names, validate_program
from repro.compiler.kernelgen import KernelPlan, generate_kernel
from repro.compiler.memgen import RegionMemPlan, plan_compute_region, plan_data_region
from repro.errors import CompileError
from repro.ir.alias import AliasInfo, analyze_aliases
from repro.lang import ast
from repro.lang.parser import parse_program


@dataclass
class CompilerOptions:
    """Knobs the evaluation studies turn."""

    auto_privatize: bool = True
    auto_reduction: bool = True
    default_data_management: bool = True
    main_function: str = "main"
    strict_validation: bool = True

    def copy(self, **overrides) -> "CompilerOptions":
        data = {**self.__dict__, **overrides}
        return CompilerOptions(**data)


class CompiledProgram:
    """Result of running the pipeline over one translation unit."""

    def __init__(self, program: ast.Program, options: CompilerOptions):
        self.program = program
        self.options = options
        self.main = program.func(options.main_function)
        self.regions: RegionTable = collect_regions(self.main)
        self.symbols = declared_names(self.main, program)
        self.aliases: AliasInfo = analyze_aliases(program, self.main)
        self.kernels: Dict[str, KernelPlan] = {}
        self.kernel_mem: Dict[str, RegionMemPlan] = {}
        self.data_mem: Dict[int, RegionMemPlan] = {}  # id(directive) -> plan
        self.warnings: List[str] = []

    def kernel_for_stmt(self, stmt: ast.Stmt) -> Optional[KernelPlan]:
        region = self.regions.region_for_stmt(stmt)
        if region is None:
            return None
        return self.kernels[region.name]

    def kernel_names(self) -> List[str]:
        return [r.name for r in self.regions.compute]

    def to_source(self) -> str:
        from repro.lang.printer import to_source

        return to_source(self.program)


def compile_ast(program: ast.Program, options: Optional[CompilerOptions] = None) -> CompiledProgram:
    """Run the pipeline over an already-parsed (possibly transformed) AST."""
    options = options or CompilerOptions()
    try:
        program.func(options.main_function)
    except KeyError:
        raise CompileError(f"program has no '{options.main_function}' function")
    if options.strict_validation:
        validate_program(program).raise_if_errors()
    compiled = CompiledProgram(program, options)
    # Variables with an unstructured device lifetime (`enter data`): they
    # opt out of the naive default scheme like data-region coverage does.
    unstructured = set()
    for node in compiled.main.body.walk():
        for directive in getattr(node, "pragmas", []):
            if directive.namespace == "acc" and directive.name == "enter data":
                for _, var in directive.data_clause_vars():
                    unstructured.add(var)
    for region in compiled.regions.compute:
        plan = generate_kernel(
            region,
            compiled.symbols,
            auto_privatize=options.auto_privatize,
            auto_reduction=options.auto_reduction,
        )
        compiled.kernels[region.name] = plan
        compiled.warnings.extend(plan.warnings)
        compiled.kernel_mem[region.name] = plan_compute_region(
            region, plan,
            default_data_management=options.default_data_management,
            unstructured_covered=unstructured,
        )
    for data_region in compiled.regions.data:
        compiled.data_mem[id(data_region.directive)] = plan_data_region(
            data_region.directive, region_label=f"data@{data_region.directive.line}"
        )
    return compiled


_COMPILE_CACHE: Dict[Tuple[str, Tuple], CompiledProgram] = {}
_COMPILE_CACHE_MAX = 256
_COMPILE_CACHE_STATS = {"hits": 0, "misses": 0}


def _options_key(options: CompilerOptions) -> Tuple:
    return tuple(sorted(options.__dict__.items()))


def compile_source(source: str, options: Optional[CompilerOptions] = None) -> CompiledProgram:
    """Parse and compile mini-C source text (memoized; see module docs)."""
    options = options or CompilerOptions()
    key = (hashlib.sha256(source.encode()).hexdigest(), _options_key(options))
    cached = _COMPILE_CACHE.get(key)
    if cached is not None:
        _COMPILE_CACHE_STATS["hits"] += 1
        return cached
    _COMPILE_CACHE_STATS["misses"] += 1
    compiled = compile_ast(parse_program(source), options)
    if len(_COMPILE_CACHE) >= _COMPILE_CACHE_MAX:
        _COMPILE_CACHE.clear()
    _COMPILE_CACHE[key] = compiled
    return compiled


def compile_cache_stats() -> Dict[str, int]:
    stats = dict(_COMPILE_CACHE_STATS)
    stats["entries"] = len(_COMPILE_CACHE)
    return stats


def clear_compile_cache() -> None:
    _COMPILE_CACHE.clear()
    _COMPILE_CACHE_STATS["hits"] = 0
    _COMPILE_CACHE_STATS["misses"] = 0
