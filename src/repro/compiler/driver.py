"""Compiler driver: source text -> :class:`CompiledProgram`.

A compiled program bundles the (possibly transformed) AST with the per-region
kernel plans and memory plans plus the analysis artifacts later passes and
the interpreter need.  The pipeline itself — parse, validate, regions,
symbols, alias, kernelgen, memgen — runs as named, timed, cached passes
under :class:`repro.compiler.passes.PassManager`; this module keeps the
stable entry points:

``compile_source`` is the one-stop entry point; passes that rewrite the AST
(demotion, check insertion, fault injection) recompile via
:func:`compile_ast`.  Both take an optional
:class:`~repro.toolchain.ToolchainContext` and fall back to the process
default, so the historical no-context API keeps working.

Caching (owned by the context, see :mod:`repro.compiler.passes`):
``compile_source`` results are memoized on (source hash, options) — the
experiment harnesses and the benchmark suite compile the same twelve
programs over and over, and re-parsing/re-analyzing them dominated their
setup cost.  Memoization is sound because compiler passes never mutate a
compiled program's AST in place — every transform (demotion, check
insertion, fault injection) clones before editing.  ``compile_ast`` results
are *not* memoized: its callers hand it freshly transformed trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.acc.regions import RegionTable, collect_regions
from repro.acc.validate import declared_names
from repro.compiler.kernelgen import KernelPlan
from repro.compiler.memgen import RegionMemPlan
from repro.ir.alias import AliasInfo, analyze_aliases
from repro.lang import ast
from repro.toolchain import (
    DEFAULT_CACHE_MAX as _COMPILE_CACHE_MAX,
    ToolchainContext,
    default_context,
)


@dataclass
class CompilerOptions:
    """Knobs the evaluation studies turn."""

    auto_privatize: bool = True
    auto_reduction: bool = True
    default_data_management: bool = True
    main_function: str = "main"
    strict_validation: bool = True

    def copy(self, **overrides) -> "CompilerOptions":
        data = {**self.__dict__, **overrides}
        return CompilerOptions(**data)


class CompiledProgram:
    """Result of running the pipeline over one translation unit.

    The pass manager normally supplies the analysis artifacts; constructing
    one directly (no keyword arguments) computes them inline, preserving
    the historical constructor behaviour.
    """

    def __init__(
        self,
        program: ast.Program,
        options: CompilerOptions,
        *,
        regions: Optional[RegionTable] = None,
        symbols: Optional[Dict] = None,
        aliases: Optional[AliasInfo] = None,
    ):
        self.program = program
        self.options = options
        self.main = program.func(options.main_function)
        self.regions: RegionTable = (
            regions if regions is not None else collect_regions(self.main)
        )
        self.symbols = (
            symbols if symbols is not None else declared_names(self.main, program)
        )
        self.aliases: AliasInfo = (
            aliases if aliases is not None else analyze_aliases(program, self.main)
        )
        self.kernels: Dict[str, KernelPlan] = {}
        self.kernel_mem: Dict[str, RegionMemPlan] = {}
        self.data_mem: Dict[int, RegionMemPlan] = {}  # id(directive) -> plan
        self.warnings: List[str] = []

    def kernel_for_stmt(self, stmt: ast.Stmt) -> Optional[KernelPlan]:
        region = self.regions.region_for_stmt(stmt)
        if region is None:
            return None
        return self.kernels[region.name]

    def kernel_names(self) -> List[str]:
        return [r.name for r in self.regions.compute]

    def to_source(self) -> str:
        from repro.lang.printer import to_source

        return to_source(self.program)


def compile_ast(
    program: ast.Program,
    options: Optional[CompilerOptions] = None,
    ctx: Optional[ToolchainContext] = None,
) -> CompiledProgram:
    """Run the pipeline over an already-parsed (possibly transformed) AST."""
    return (ctx or default_context()).passes.compile_ast(program, options)


def compile_source(
    source: str,
    options: Optional[CompilerOptions] = None,
    ctx: Optional[ToolchainContext] = None,
) -> CompiledProgram:
    """Parse and compile mini-C source text (memoized; see module docs)."""
    return (ctx or default_context()).passes.compile_source(source, options)


def compile_cache_stats(ctx: Optional[ToolchainContext] = None) -> Dict[str, int]:
    """Hit/miss/size counters for the compile caches.

    ``hits``/``misses``/``entries`` describe the whole-pipeline memo (the
    historical keys); ``parse_*`` and ``pass_*`` cover the parse cache and
    the per-pass analysis cache layered underneath it.
    """
    caches = (ctx or default_context()).caches
    stats = dict(caches.get("compile").stats())
    for prefix, name in (("parse", "parse"), ("pass", "passes")):
        for key, value in caches.get(name).stats().items():
            stats[f"{prefix}_{key}"] = value
    return stats


def clear_compile_cache(ctx: Optional[ToolchainContext] = None) -> None:
    caches = (ctx or default_context()).caches
    for name in ("compile", "parse", "passes"):
        caches.get(name).clear()
