"""The OpenARC-like research compiler.

Pipeline (driven by :mod:`repro.compiler.driver`):

1. frontend — parse, validate directives, collect regions, alias analysis;
2. privatize / reduction — automatic recognition of private scalars and
   reduction patterns inside compute regions (can be disabled, which is how
   Table II's fault-injection study runs);
3. kernelgen — each compute region becomes a :class:`KernelPlan` (bytecode,
   partitioned iteration space, private/reduction treatment);
4. memgen — each region gets entry/exit memory actions: explicit data
   clauses where given, the naive default scheme (§II-C) otherwise;
5. checkinsert (optional) — §III-B coherence instrumentation;
6. demotion + resultcomp (optional) — §III-A kernel verification transform.
"""

from repro.compiler.driver import (
    CompiledProgram,
    CompilerOptions,
    clear_compile_cache,
    compile_cache_stats,
    compile_source,
)

__all__ = [
    "CompiledProgram",
    "CompilerOptions",
    "clear_compile_cache",
    "compile_cache_stats",
    "compile_source",
]
