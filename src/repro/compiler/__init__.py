"""The OpenARC-like research compiler.

Pipeline (named passes run by :class:`repro.compiler.passes.PassManager`;
:mod:`repro.compiler.driver` keeps the stable entry points):

1. frontend — parse, validate directives, collect regions, alias analysis;
2. privatize / reduction — automatic recognition of private scalars and
   reduction patterns inside compute regions (can be disabled, which is how
   Table II's fault-injection study runs);
3. kernelgen — each compute region becomes a :class:`KernelPlan` (bytecode,
   partitioned iteration space, private/reduction treatment);
4. memgen — each region gets entry/exit memory actions: explicit data
   clauses where given, the naive default scheme (§II-C) otherwise;
5. checkinsert (optional) — §III-B coherence instrumentation;
6. demotion + resultcomp (optional) — §III-A kernel verification transform.
"""

from repro.compiler.driver import (
    CompiledProgram,
    CompilerOptions,
    clear_compile_cache,
    compile_ast,
    compile_cache_stats,
    compile_source,
)
from repro.compiler.passes import PassInfo, PassManager, all_passes, pass_names

__all__ = [
    "CompiledProgram",
    "CompilerOptions",
    "PassInfo",
    "PassManager",
    "all_passes",
    "clear_compile_cache",
    "compile_ast",
    "compile_cache_stats",
    "compile_source",
    "pass_names",
]
