"""Toolchain-as-a-service: a long-lived daemon over the offline toolchain.

The offline CLI pays the full parse → analyze → lower pipeline on every
invocation.  This package keeps one process alive and makes the pipeline's
pass-result caches *shared across requests* and *persistent across
restarts*:

* :mod:`repro.service.protocol` — the newline-delimited JSON wire protocol;
* :mod:`repro.service.cache` — the two-tier pass cache (shared in-memory
  LRU + checksummed on-disk store);
* :mod:`repro.service.daemon` — the asyncio server and request handlers;
* :mod:`repro.service.client` — a small blocking client.
"""

from repro.service.cache import DiskTier, ServiceCache, compile_key
from repro.service.client import ServiceClient, connect
from repro.service.daemon import ServiceConfig, ToolchainDaemon

__all__ = [
    "DiskTier",
    "ServiceCache",
    "ServiceClient",
    "ServiceConfig",
    "ToolchainDaemon",
    "compile_key",
    "connect",
]
