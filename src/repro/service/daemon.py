"""The toolchain daemon: a long-lived async server over the offline CLI.

Architecture (Devito-style separation of lowering from backend: the
*service* layer owns scheduling and caching, the *toolchain* stays the
stateless library PR 3 made it):

* one **asyncio event loop** accepts connections (unix socket or TCP) and
  reads newline-delimited JSON requests (:mod:`repro.service.protocol`);
* CPU-bound request handling runs on a bounded **worker pool**
  (``ThreadPoolExecutor``) so the loop never blocks; requests on one
  connection answer in order, requests across connections interleave;
* every request gets a fresh request-scoped
  :class:`~repro.toolchain.ToolchainContext` whose *cache registry is the
  daemon's shared one* (the cross-request memory tier) and whose metrics
  registry chains into the server-wide aggregate, under a per-request
  tracer rooted at a ``service.request`` span;
* compiles resolve through the two-tier
  :class:`~repro.service.cache.ServiceCache` (memory → disk → cold);
* when a report directory is configured, **every request — including every
  crash path — writes a RunReport artifact** before the socket is
  answered, mirroring the PR 7 every-exit-path guarantee.

Toolchain ops execute the *offline CLI's own command functions* against the
CLI's own argument parser, so a served response's ``stdout``/``exit_code``
are byte-identical to the offline ``python -m repro ...`` invocation.  The
CLI prints to ``sys.stdout``; worker threads capture it through a
thread-local router installed for the daemon's lifetime (``start`` /
``close``), so concurrent handlers never interleave output.
"""

from __future__ import annotations

import asyncio
import hashlib
import io
import itertools
import json
import os
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError, ServiceError, ServiceProtocolError
from repro.obs.metrics import MetricsRegistry
from repro.service import protocol
from repro.service.cache import DiskTier, ServiceCache
from repro.toolchain import CacheRegistry, ToolchainContext

__all__ = ["ServiceConfig", "ToolchainDaemon"]

# Serving defaults: entries/bytes per named memory-tier cache.
DEFAULT_MEM_ENTRIES = 512
DEFAULT_MEM_BYTES = 256 * 1024 * 1024

_PARSER_CACHE = threading.local()


def _cli_parser():
    """The offline CLI's parser, built once per worker thread: building the
    full subparser tree costs more than a whole warm-cache compile, so the
    daemon must not pay it per request."""
    parser = getattr(_PARSER_CACHE, "parser", None)
    if parser is None:
        from repro.cli import build_parser

        parser = _PARSER_CACHE.parser = build_parser()
    return parser


@dataclass
class ServiceConfig:
    """One daemon's serving policy."""

    socket: Optional[str] = None        # unix-socket path…
    host: str = "127.0.0.1"             # …or TCP host/port
    port: Optional[int] = None
    workers: int = 4
    cache_dir: Optional[str] = None     # persistent disk tier (None = off)
    cache_mem_entries: int = DEFAULT_MEM_ENTRIES
    cache_mem_bytes: int = DEFAULT_MEM_BYTES
    cache_disk_bytes: Optional[int] = None
    report_dir: Optional[str] = None    # per-request RunReport artifacts
    spool_dir: Optional[str] = None     # inline-source spool (None = tmpdir)

    def address(self) -> str:
        if self.socket:
            return self.socket
        return f"{self.host}:{self.port}"


class _StdoutRouter(io.TextIOBase):
    """A ``sys.stdout`` stand-in that routes writes to a thread-local
    capture buffer when one is pushed, and to the real stream otherwise."""

    def __init__(self, fallback):
        self.fallback = fallback
        self._local = threading.local()

    def _stack(self) -> List:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def push(self, buffer) -> None:
        self._stack().append(buffer)

    def pop(self):
        return self._stack().pop()

    @property
    def _target(self):
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else self.fallback

    def write(self, text):
        return self._target.write(text)

    def flush(self):
        target = self._target
        if hasattr(target, "flush"):
            target.flush()

    def writable(self):
        return True


class ToolchainDaemon:
    """Serve concurrent toolchain requests over one shared cache.

    Usable three ways: ``serve_forever()`` (the ``repro serve`` CLI),
    ``start_in_thread()`` (tests and the load harness), or direct
    ``handle_request(dict)`` calls inside ``with daemon:`` (the baseline
    guard, which wants deterministic in-process behavior).
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.metrics = MetricsRegistry()
        self.registry = CacheRegistry(max_entries=config.cache_mem_entries,
                                      max_bytes=config.cache_mem_bytes)
        disk = (DiskTier(config.cache_dir, max_bytes=config.cache_disk_bytes)
                if config.cache_dir else None)
        self.cache = ServiceCache(self.registry, disk, metrics=self.metrics)
        self.started = threading.Event()
        self._stop = threading.Event()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._seq = itertools.count(1)
        self._spool = config.spool_dir
        self._router: Optional[_StdoutRouter] = None
        self._stdout_prior = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_async: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._client_tasks: set = set()
        self._client_writers: set = set()
        if config.report_dir:
            os.makedirs(config.report_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ToolchainDaemon":
        """Install the stdout router and worker pool (idempotent)."""
        if self._router is None:
            self._stdout_prior = sys.stdout
            self._router = _StdoutRouter(sys.stdout)
            sys.stdout = self._router
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=max(1, self.config.workers),
                thread_name_prefix="repro-serve")
        if self._spool is None:
            self._spool = tempfile.mkdtemp(prefix="repro-spool-")
        else:
            os.makedirs(self._spool, exist_ok=True)
        return self

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._router is not None:
            sys.stdout = self._stdout_prior
            self._router = None
            self._stdout_prior = None

    def __enter__(self) -> "ToolchainDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Async serving
    # ------------------------------------------------------------------
    async def serve_async(self) -> None:
        self.start()
        self._loop = asyncio.get_running_loop()
        self._stop_async = asyncio.Event()
        if self.config.socket:
            path = self.config.socket
            if os.path.exists(path):
                os.unlink(path)     # stale socket from a killed daemon
            server = await asyncio.start_unix_server(self._serve_client,
                                                     path=path)
        elif self.config.port is not None:
            server = await asyncio.start_server(
                self._serve_client, host=self.config.host,
                port=self.config.port)
        else:
            raise ServiceError("daemon needs a unix-socket path or TCP port")
        try:
            async with server:
                self.started.set()
                await self._stop_async.wait()
                # Graceful drain: handlers mid-request finish and answer
                # (the shutdown response included); connections idle in
                # readline are then unblocked by closing their transports,
                # so every handler task *returns* instead of being
                # cancelled at loop teardown.
                if self._client_tasks:
                    await asyncio.wait(set(self._client_tasks), timeout=1.0)
                for writer in list(self._client_writers):
                    try:
                        writer.close()
                    except Exception:
                        pass
                if self._client_tasks:
                    await asyncio.wait(set(self._client_tasks), timeout=5.0)
        finally:
            self.started.clear()
            if self.config.socket and os.path.exists(self.config.socket):
                try:
                    os.unlink(self.config.socket)
                except OSError:
                    pass

    def serve_forever(self) -> None:
        try:
            asyncio.run(self.serve_async())
        finally:
            self.close()

    def start_in_thread(self, timeout: float = 10.0) -> "ToolchainDaemon":
        """Run the server on a daemon thread; returns once it accepts."""
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        if not self.started.wait(timeout):
            raise ServiceError("daemon failed to start listening "
                               f"on {self.config.address()}")
        return self

    def join(self, timeout: float = 10.0) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    def request_shutdown(self) -> None:
        self._stop.set()
        if self._loop is not None and self._stop_async is not None:
            self._loop.call_soon_threadsafe(self._stop_async.set)

    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        loop = asyncio.get_running_loop()
        task = asyncio.current_task()
        self._client_tasks.add(task)
        self._client_writers.add(writer)
        try:
            while not self._stop.is_set():
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await loop.run_in_executor(
                    self._pool, self.handle_line, line)
                writer.write(protocol.encode_response(response))
                try:
                    await writer.drain()
                except ConnectionResetError:
                    break
        finally:
            self._client_tasks.discard(task)
            self._client_writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Request handling (worker threads; also callable in-process)
    # ------------------------------------------------------------------
    def handle_line(self, line: bytes) -> Dict:
        try:
            request = protocol.decode_request(line)
        except ServiceProtocolError as err:
            self.metrics.count("service.requests")
            self.metrics.count("service.errors")
            request_id = None
            try:
                parsed = json.loads(line.decode("utf-8", "replace"))
                if isinstance(parsed, dict):
                    request_id = parsed.get("id")
            except Exception:
                pass
            return {"id": request_id, "ok": False, "exit_code": 2,
                    "stdout": "", "error": protocol.error_payload(err),
                    "report": None}
        return self.handle_request(request)

    def handle_request(self, request: Dict) -> Dict:
        """One request → one response dict.  Never raises: every failure —
        protocol violation, typed toolchain error, or handler crash — is
        answered with a typed error payload, and (when a report directory
        is configured) leaves a RunReport artifact behind."""
        self.metrics.count("service.requests")
        op = request.get("op")
        started = time.perf_counter()
        try:
            if op in protocol.ADMIN_OPS:
                response = self._admin_op(op, request)
            else:
                response = self._toolchain_op(op, request)
        except ReproError as err:
            response = self._error_response(request, op, err)
        except Exception as err:   # crash path: answer, don't die
            response = self._error_response(request, op, err)
        response.setdefault("id", request.get("id"))
        response.setdefault("op", op)
        response["elapsed_ms"] = (time.perf_counter() - started) * 1e3
        if not response.get("ok"):
            self.metrics.count("service.errors")
        return response

    def _error_response(self, request: Dict, op, err: BaseException,
                        stdout: str = "", ctx=None,
                        params=None, program=None) -> Dict:
        report = self._write_report(op, program, params, ctx=ctx, error=err)
        return {"id": request.get("id"), "ok": False, "exit_code": 2,
                "stdout": stdout, "error": protocol.error_payload(err),
                "report": report}

    # -- toolchain ops -------------------------------------------------------
    def _request_context(self, args) -> ToolchainContext:
        from repro.cli import _context
        from repro.obs.tracer import Tracer

        ctx = _context(args)
        ctx.caches = self.registry          # shared cross-request mem tier
        ctx.metrics = MetricsRegistry(parent=self.metrics)
        ctx.tracer = Tracer()
        return ctx

    def _toolchain_op(self, op: str, request: Dict) -> Dict:
        from repro.cli import _parse_params
        from repro.compiler.driver import CompilerOptions

        file, source = protocol.request_program(request)
        if source is not None:
            path = self._spool_source(source)
        else:
            path = file
            try:
                with open(path) as handle:
                    source = handle.read()
            except OSError as err:
                raise ServiceError(f"cannot read program {path!r}: {err}")

        argv = protocol.build_argv(request, path)
        try:
            args = _cli_parser().parse_args(argv)
        except SystemExit as err:       # argparse rejected the argv
            raise ServiceProtocolError(
                f"request maps to invalid CLI arguments {argv!r} "
                f"(exit {err.code})")
        ctx = self._request_context(args)
        params = _parse_params(getattr(args, "param", None))

        buffer = io.StringIO()
        tier: Optional[str] = None
        assert self._router is not None, "daemon not started"
        if sys.stdout is not self._router:
            # Another actor (pytest's capture machinery, a nested tool) may
            # re-patch the global between requests; reclaim it so the
            # thread-local capture keeps routing.
            sys.stdout = self._router
        self._router.push(buffer)
        try:
            with ctx.tracer.span("service.request", category="service",
                                 op=op, program=os.path.basename(path)) as sp:
                if op != "optimize":
                    # optimize re-parses and rewrites its own program; the
                    # other ops all start from the memoized compile.
                    options = CompilerOptions(
                        auto_privatize=not getattr(args, "no_auto_privatize",
                                                   False),
                        auto_reduction=not getattr(args, "no_auto_reduction",
                                                   False),
                    )
                    _, tier = self.cache.ensure_compiled(source, options, ctx)
                    sp.set_attr("cache", tier)
                exit_code = args.func(args, ctx)
        except ReproError as err:
            return self._error_response(request, op, err,
                                        stdout=buffer.getvalue(), ctx=ctx,
                                        params=params, program=path)
        except Exception as err:
            return self._error_response(request, op, err,
                                        stdout=buffer.getvalue(), ctx=ctx,
                                        params=params, program=path)
        finally:
            self._router.pop()
        report = self._write_report(op, path, params, ctx=ctx)
        return {"id": request.get("id"), "ok": True, "op": op,
                "exit_code": int(exit_code or 0), "stdout": buffer.getvalue(),
                "cache": tier, "report": report}

    def _spool_source(self, source: str) -> str:
        """Inline source → a deterministic fingerprint-named spool file (so
        identical sources map to identical paths, keeping responses
        byte-identical across requests and daemon restarts)."""
        assert self._spool is not None, "daemon not started"
        name = hashlib.sha256(source.encode()).hexdigest()[:16] + ".c"
        path = os.path.join(self._spool, name)
        if not os.path.exists(path):
            tmp = f"{path}.{threading.get_ident()}.tmp"
            with open(tmp, "w") as handle:
                handle.write(source)
            os.replace(tmp, path)
        return path

    # -- admin ops -----------------------------------------------------------
    def _admin_op(self, op: str, request: Dict) -> Dict:
        if op == "ping":
            from repro import __version__

            return {"ok": True, "pong": True, "version": __version__,
                    "workers": self.config.workers}
        if op == "cache.stats":
            return {"ok": True, "stats": self.stats()}
        if op == "cache.clear":
            tier = request.get("tier", "all")
            if tier not in ("mem", "disk", "all"):
                raise ServiceProtocolError(
                    f"bad tier {tier!r} (mem, disk, or all)")
            return {"ok": True, "cleared": self.cache.clear(tier)}
        if op == "cache.warm":
            return {"ok": True, "warmed": self._warm(request)}
        if op == "shutdown":
            self.request_shutdown()
            return {"ok": True, "shutdown": True}
        raise ServiceProtocolError(f"unhandled admin op {op!r}")

    def _warm(self, request: Dict) -> List[Dict]:
        from repro.compiler.driver import CompilerOptions

        files = request.get("files") or []
        sources = request.get("sources") or []
        if not isinstance(files, list) or not isinstance(sources, list):
            raise ServiceProtocolError("'files'/'sources' must be lists")
        if not files and not sources:
            raise ServiceProtocolError("cache.warm needs 'files' or 'sources'")
        args = _cli_parser().parse_args(["compile", "ignored.c"])
        results: List[Dict] = []
        for label, source in self._warm_inputs(files, sources):
            ctx = self._request_context(args)
            try:
                tier = self.cache.warm(source, CompilerOptions(), ctx)
            except ReproError as err:
                results.append({"program": label, "ok": False,
                                "error": protocol.error_payload(err)})
            else:
                results.append({"program": label, "ok": True, "tier": tier})
        return results

    def _warm_inputs(self, files: List, sources: List):
        for path in files:
            if not isinstance(path, str):
                raise ServiceProtocolError("'files' entries must be paths")
            try:
                with open(path) as handle:
                    yield path, handle.read()
            except OSError as err:
                raise ServiceError(f"cannot read program {path!r}: {err}")
        for i, source in enumerate(sources):
            if not isinstance(source, str):
                raise ServiceProtocolError("'sources' entries must be strings")
            yield f"<source[{i}]>", source

    # -- reports -------------------------------------------------------------
    def _write_report(self, op, program, params, ctx=None,
                      error: Optional[BaseException] = None) -> Optional[str]:
        """The per-request RunReport artifact (crash paths included).  A
        failure to *write* the report must never mask the response."""
        if not self.config.report_dir:
            return None
        from repro.obs.report import build_report

        if ctx is None:
            # The request died before a context existed (protocol errors,
            # unreadable programs): report against an empty context so the
            # artifact still records the typed error.
            ctx = ToolchainContext()
        seq = next(self._seq)
        name = f"req-{seq:06d}-{(op or 'invalid').replace('.', '_')}.json"
        path = os.path.join(self.config.report_dir, name)
        try:
            report = build_report(ctx, command=op, program=program,
                                  params=params, error=error)
            tmp = f"{path}.tmp"
            with open(tmp, "w") as handle:
                json.dump(report, handle, indent=2, sort_keys=True,
                          default=repr)
                handle.write("\n")
            os.replace(tmp, path)
        except Exception:
            return None
        return path

    # -- stats ---------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        tiers = self.cache.stats()
        counters = self.metrics.snapshot()["counters"]
        return {
            "requests": counters.get("service.requests", 0),
            "errors": counters.get("service.errors", 0),
            "tiers": tiers,
            "counters": counters,
        }
