"""The toolchain daemon: a long-lived async server over the offline CLI.

Architecture (Devito-style separation of lowering from backend: the
*service* layer owns scheduling and caching, the *toolchain* stays the
stateless library PR 3 made it):

* one **asyncio event loop** accepts connections (unix socket or TCP) and
  reads newline-delimited JSON requests (:mod:`repro.service.protocol`);
* CPU-bound request handling runs on a bounded **worker pool**
  (``ThreadPoolExecutor``) so the loop never blocks; requests on one
  connection answer in order, requests across connections interleave;
* every request gets a fresh request-scoped
  :class:`~repro.toolchain.ToolchainContext` whose *cache registry is the
  daemon's shared one* (the cross-request memory tier) and whose metrics
  registry chains into the server-wide aggregate, under a per-request
  tracer rooted at a ``service.request`` span;
* compiles resolve through the two-tier
  :class:`~repro.service.cache.ServiceCache` (memory → disk → cold);
* when a report directory is configured, **every request — including every
  crash path — writes a RunReport artifact** before the socket is
  answered, mirroring the PR 7 every-exit-path guarantee.

Toolchain ops execute the *offline CLI's own command functions* against the
CLI's own argument parser, so a served response's ``stdout``/``exit_code``
are byte-identical to the offline ``python -m repro ...`` invocation.  The
CLI prints to ``sys.stdout``; worker threads capture it through a
thread-local router installed for the daemon's lifetime (``start`` /
``close``), so concurrent handlers never interleave output.
"""

from __future__ import annotations

import asyncio
import hashlib
import io
import itertools
import json
import os
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError, ServiceError, ServiceProtocolError
from repro.obs.metrics import MetricsRegistry, register_counter
from repro.obs.telemetry import (
    FlightRecorder,
    Telemetry,
    TraceContext,
    render_prometheus,
)
from repro.service import protocol
from repro.service.cache import DiskTier, ServiceCache
from repro.toolchain import CacheRegistry, ToolchainContext

__all__ = ["ServiceConfig", "ToolchainDaemon"]

# Serving defaults: entries/bytes per named memory-tier cache.
DEFAULT_MEM_ENTRIES = 512
DEFAULT_MEM_BYTES = 256 * 1024 * 1024

# Daemon request/error counters (obs counter-name registry).
CTR_REQUESTS = register_counter("service.requests")
CTR_ERRORS = register_counter("service.errors")

_PARSER_CACHE = threading.local()


def _cli_parser():
    """The offline CLI's parser, built once per worker thread: building the
    full subparser tree costs more than a whole warm-cache compile, so the
    daemon must not pay it per request."""
    parser = getattr(_PARSER_CACHE, "parser", None)
    if parser is None:
        from repro.cli import build_parser

        parser = _PARSER_CACHE.parser = build_parser()
    return parser


@dataclass
class ServiceConfig:
    """One daemon's serving policy."""

    socket: Optional[str] = None        # unix-socket path…
    host: str = "127.0.0.1"             # …or TCP host/port
    port: Optional[int] = None
    workers: int = 4
    cache_dir: Optional[str] = None     # persistent disk tier (None = off)
    cache_mem_entries: int = DEFAULT_MEM_ENTRIES
    cache_mem_bytes: int = DEFAULT_MEM_BYTES
    cache_disk_bytes: Optional[int] = None
    report_dir: Optional[str] = None    # per-request RunReport artifacts
    spool_dir: Optional[str] = None     # inline-source spool (None = tmpdir)
    metrics_addr: Optional[str] = None  # Prometheus HTTP endpoint (host:port)
    flight_capacity: int = 512          # daemon flight-recorder ring size
    telemetry_window_s: float = 60.0    # sliding statistics window
    # Operator-side fault injection: every served run executes under this
    # chaos plan.  Deliberately *not* settable over the wire (the protocol
    # whitelist rejects chaos flags) — it comes from `repro serve` only.
    chaos_seed: Optional[int] = None
    chaos_spec: Optional[str] = None

    def address(self) -> str:
        if self.socket:
            return self.socket
        return f"{self.host}:{self.port}"


def _parse_metrics_addr(addr: str) -> Tuple[str, int]:
    """``host:port``, ``:port``, or bare ``port`` → (host, port); port 0
    binds an ephemeral port (the bound address lands in
    ``ToolchainDaemon.metrics_address``)."""
    host, sep, port = addr.rpartition(":")
    if not sep:
        host, port = "", addr
    try:
        port_n = int(port)
    except ValueError:
        raise ServiceError(f"bad metrics address {addr!r} (want host:port)")
    return (host or "127.0.0.1", port_n)


class _StdoutRouter(io.TextIOBase):
    """A ``sys.stdout`` stand-in that routes writes to a thread-local
    capture buffer when one is pushed, and to the real stream otherwise."""

    def __init__(self, fallback):
        self.fallback = fallback
        self._local = threading.local()

    def _stack(self) -> List:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def push(self, buffer) -> None:
        self._stack().append(buffer)

    def pop(self):
        return self._stack().pop()

    @property
    def _target(self):
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else self.fallback

    def write(self, text):
        target = self._target
        try:
            return target.write(text)
        except ValueError:
            # The fallback was snapshotted at daemon start; a host that
            # closed it since (test harnesses re-wiring stdio) must not
            # crash daemon-side prints.  Route to the interpreter's
            # original stdout instead of losing the write.
            if target is self.fallback and sys.__stdout__ is not None:
                return sys.__stdout__.write(text)
            raise

    def flush(self):
        target = self._target
        if hasattr(target, "flush"):
            try:
                target.flush()
            except ValueError:
                pass

    def writable(self):
        return True


class ToolchainDaemon:
    """Serve concurrent toolchain requests over one shared cache.

    Usable three ways: ``serve_forever()`` (the ``repro serve`` CLI),
    ``start_in_thread()`` (tests and the load harness), or direct
    ``handle_request(dict)`` calls inside ``with daemon:`` (the baseline
    guard, which wants deterministic in-process behavior).
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.metrics = MetricsRegistry()
        self.registry = CacheRegistry(max_entries=config.cache_mem_entries,
                                      max_bytes=config.cache_mem_bytes)
        disk = (DiskTier(config.cache_dir, max_bytes=config.cache_disk_bytes)
                if config.cache_dir else None)
        self.cache = ServiceCache(self.registry, disk, metrics=self.metrics)
        # Live plane: rolling statistics and the daemon-lifetime flight
        # recorder.  Both only *read* request state — responses stay
        # byte-identical with telemetry on.
        self.telemetry = Telemetry(workers=max(1, config.workers),
                                   window_s=config.telemetry_window_s)
        self.flight = FlightRecorder(capacity=config.flight_capacity)
        self.metrics_address: Optional[str] = None  # bound metrics endpoint
        self.started = threading.Event()
        self._stop = threading.Event()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._seq = itertools.count(1)
        self._rid = itertools.count(1)
        self._spool = config.spool_dir
        self._router: Optional[_StdoutRouter] = None
        self._stdout_prior = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_async: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._client_tasks: set = set()
        self._client_writers: set = set()
        if config.report_dir:
            os.makedirs(config.report_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ToolchainDaemon":
        """Install the stdout router and worker pool (idempotent)."""
        if self._router is None:
            self._stdout_prior = sys.stdout
            self._router = _StdoutRouter(sys.stdout)
            sys.stdout = self._router
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=max(1, self.config.workers),
                thread_name_prefix="repro-serve")
        if self._spool is None:
            self._spool = tempfile.mkdtemp(prefix="repro-spool-")
        else:
            os.makedirs(self._spool, exist_ok=True)
        return self

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._router is not None:
            sys.stdout = self._stdout_prior
            self._router = None
            self._stdout_prior = None

    def __enter__(self) -> "ToolchainDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Async serving
    # ------------------------------------------------------------------
    async def serve_async(self) -> None:
        self.start()
        self._loop = asyncio.get_running_loop()
        self._stop_async = asyncio.Event()
        if self.config.socket:
            path = self.config.socket
            if os.path.exists(path):
                os.unlink(path)     # stale socket from a killed daemon
            server = await asyncio.start_unix_server(self._serve_client,
                                                     path=path)
        elif self.config.port is not None:
            server = await asyncio.start_server(
                self._serve_client, host=self.config.host,
                port=self.config.port)
        else:
            raise ServiceError("daemon needs a unix-socket path or TCP port")
        metrics_server = None
        if self.config.metrics_addr:
            host, port = _parse_metrics_addr(self.config.metrics_addr)
            metrics_server = await asyncio.start_server(
                self._serve_metrics_client, host=host, port=port)
            bound = metrics_server.sockets[0].getsockname()
            self.metrics_address = f"{bound[0]}:{bound[1]}"
        try:
            async with server:
                self.started.set()
                await self._stop_async.wait()
                # Graceful drain: handlers mid-request finish and answer
                # (the shutdown response included); connections idle in
                # readline are then unblocked by closing their transports,
                # so every handler task *returns* instead of being
                # cancelled at loop teardown.
                if self._client_tasks:
                    await asyncio.wait(set(self._client_tasks), timeout=1.0)
                for writer in list(self._client_writers):
                    try:
                        writer.close()
                    except Exception:
                        pass
                if self._client_tasks:
                    await asyncio.wait(set(self._client_tasks), timeout=5.0)
        finally:
            self.started.clear()
            if metrics_server is not None:
                metrics_server.close()
                try:
                    await metrics_server.wait_closed()
                except Exception:
                    pass
                self.metrics_address = None
            if self.config.socket and os.path.exists(self.config.socket):
                try:
                    os.unlink(self.config.socket)
                except OSError:
                    pass

    def serve_forever(self) -> None:
        try:
            asyncio.run(self.serve_async())
        finally:
            self.close()

    def start_in_thread(self, timeout: float = 10.0) -> "ToolchainDaemon":
        """Run the server on a daemon thread; returns once it accepts."""
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        if not self.started.wait(timeout):
            raise ServiceError("daemon failed to start listening "
                               f"on {self.config.address()}")
        return self

    def join(self, timeout: float = 10.0) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    def request_shutdown(self) -> None:
        self._stop.set()
        if self._loop is not None and self._stop_async is not None:
            self._loop.call_soon_threadsafe(self._stop_async.set)

    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        loop = asyncio.get_running_loop()
        task = asyncio.current_task()
        self._client_tasks.add(task)
        self._client_writers.add(writer)
        try:
            while not self._stop.is_set():
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                # Queue-depth gauge: accepted here, started when a worker
                # picks the request up in handle_request.
                self.telemetry.request_submitted()
                response = await loop.run_in_executor(
                    self._pool, self.handle_line, line)
                writer.write(protocol.encode_response(response))
                try:
                    await writer.drain()
                except ConnectionResetError:
                    break
        finally:
            self._client_tasks.discard(task)
            self._client_writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    async def _serve_metrics_client(self, reader: asyncio.StreamReader,
                                    writer: asyncio.StreamWriter) -> None:
        """Minimal HTTP/1.0 responder for the Prometheus endpoint: any GET
        gets the full exposition.  Rendering only reads telemetry snapshots,
        so serving scrapes never perturbs request handling."""
        try:
            while True:     # drain the request head; the path is ignored
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            body = self.prometheus().encode("utf-8")
            head = ("HTTP/1.0 200 OK\r\n"
                    "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n")
            writer.write(head.encode("ascii") + body)
            await writer.drain()
        except Exception:
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Request handling (worker threads; also callable in-process)
    # ------------------------------------------------------------------
    def handle_line(self, line: bytes) -> Dict:
        try:
            request = protocol.decode_request(line)
        except ServiceProtocolError as err:
            self.metrics.count(CTR_REQUESTS)
            self.metrics.count(CTR_ERRORS)
            # Pair the lifecycle hooks so the queue-depth gauge stays exact
            # even for lines that never become requests.
            self.telemetry.request_started("invalid")
            self.telemetry.request_finished("invalid", 0.0, False)
            request_id = None
            try:
                parsed = json.loads(line.decode("utf-8", "replace"))
                if isinstance(parsed, dict):
                    request_id = parsed.get("id")
            except Exception:
                pass
            return {"id": request_id, "ok": False, "exit_code": 2,
                    "stdout": "", "error": protocol.error_payload(err),
                    "report": None}
        return self.handle_request(request)

    def handle_request(self, request: Dict) -> Dict:
        """One request → one response dict.  Never raises: every failure —
        protocol violation, typed toolchain error, or handler crash — is
        answered with a typed error payload, and (when a report directory
        is configured) leaves a RunReport artifact behind."""
        self.metrics.count(CTR_REQUESTS)
        op = request.get("op")
        verb = op if isinstance(op, str) else "invalid"
        trace = self._mint_trace(request)
        self.telemetry.request_started(verb)
        started = time.perf_counter()
        try:
            if op in protocol.ADMIN_OPS:
                response = self._admin_op(op, request)
            else:
                response = self._toolchain_op(op, request, trace)
        except ReproError as err:
            response = self._error_response(request, op, err, trace=trace)
        except Exception as err:   # crash path: answer, don't die
            response = self._error_response(request, op, err, trace=trace)
        response.setdefault("id", request.get("id"))
        response.setdefault("op", op)
        response["trace_id"] = trace.trace_id
        response["request_id"] = trace.request_id
        elapsed = time.perf_counter() - started
        response["elapsed_ms"] = elapsed * 1e3
        ok = bool(response.get("ok"))
        if not ok:
            self.metrics.count(CTR_ERRORS)
        self.telemetry.request_finished(verb, elapsed, ok)
        self.flight.record({
            "kind": "request", "op": verb, "ok": ok,
            "elapsed_ms": elapsed * 1e3,
            "trace_id": trace.trace_id, "request_id": trace.request_id,
        })
        return response

    def _mint_trace(self, request: Dict) -> TraceContext:
        """The request's identity: the client's trace id when it sent one
        (propagation), a fresh one otherwise; the request id is always
        daemon-minted (one per request served)."""
        request_id = f"r{next(self._rid):06d}"
        trace_id = request.get("trace_id")
        if isinstance(trace_id, str) and trace_id:
            return TraceContext(trace_id, request_id)
        return TraceContext.mint(request_id)

    def _error_response(self, request: Dict, op, err: BaseException,
                        stdout: str = "", ctx=None,
                        params=None, program=None, trace=None) -> Dict:
        # Every typed-error exit ships the flight-recorder tail: the
        # request's own ring (in-flight span context of the failing run)
        # plus the daemon ring's recent history.
        flight = self._flight_tail(ctx)
        if ctx is not None:
            runtime = getattr(ctx, "last_runtime", None)
            if runtime is not None:
                self.telemetry.record_run(runtime)
        report = self._write_report(op, program, params, ctx=ctx, error=err,
                                    flight=flight, trace=trace)
        return {"id": request.get("id"), "ok": False, "exit_code": 2,
                "stdout": stdout, "error": protocol.error_payload(err),
                "flight": flight, "report": report}

    def _flight_tail(self, ctx=None) -> Dict[str, List[Dict]]:
        """The black box dumped on failure paths: the failing request's own
        span ring (when a context got far enough to have one) and the tail
        of the daemon-lifetime ring."""
        recorder = getattr(ctx, "flight_recorder", None) \
            if ctx is not None else None
        return {
            "request": recorder.tail(64) if recorder is not None else [],
            "daemon": self.flight.tail(16),
        }

    # -- toolchain ops -------------------------------------------------------
    def _request_context(self, args,
                         trace: Optional[TraceContext] = None
                         ) -> ToolchainContext:
        from repro.cli import _context
        from repro.obs.tracer import Tracer

        ctx = _context(args)
        ctx.caches = self.registry          # shared cross-request mem tier
        ctx.metrics = MetricsRegistry(parent=self.metrics)
        ctx.tracer = Tracer()
        if trace is not None:
            ctx.trace_context = trace
            ctx.tracer.trace_context = trace
            # Flight recording: every finished span lands in the request's
            # own bounded ring and the daemon-lifetime ring, tagged with the
            # request identity.  Ring appends only — never perturbs the run.
            recorder = FlightRecorder(
                capacity=min(128, self.config.flight_capacity))
            ctx.flight_recorder = recorder
            tag = {"trace_id": trace.trace_id,
                   "request_id": trace.request_id}
            ctx.tracer.sinks = [recorder.sink(tag), self.flight.sink(tag)]
        return ctx

    def _toolchain_op(self, op: str, request: Dict,
                      trace: Optional[TraceContext] = None) -> Dict:
        from repro.cli import _parse_params
        from repro.compiler.driver import CompilerOptions

        file, source = protocol.request_program(request)
        if source is not None:
            path = self._spool_source(source)
        else:
            path = file
            try:
                with open(path) as handle:
                    source = handle.read()
            except OSError as err:
                raise ServiceError(f"cannot read program {path!r}: {err}")

        argv = protocol.build_argv(request, path)
        try:
            args = _cli_parser().parse_args(argv)
        except SystemExit as err:       # argparse rejected the argv
            raise ServiceProtocolError(
                f"request maps to invalid CLI arguments {argv!r} "
                f"(exit {err.code})")
        # Operator-configured chaos: the wire cannot carry chaos flags (the
        # protocol whitelist rejects them), so a chaos-serving daemon
        # injects its own plan into ops that accept one.
        if ((self.config.chaos_seed is not None or self.config.chaos_spec)
                and hasattr(args, "chaos_seed")):
            if self.config.chaos_seed is not None:
                args.chaos_seed = self.config.chaos_seed
            if self.config.chaos_spec:
                args.chaos_spec = self.config.chaos_spec
        ctx = self._request_context(args, trace)
        params = _parse_params(getattr(args, "param", None))

        buffer = io.StringIO()
        tier: Optional[str] = None
        assert self._router is not None, "daemon not started"
        if sys.stdout is not self._router:
            # Another actor (pytest's capture machinery, a nested tool) may
            # re-patch the global between requests; reclaim it so the
            # thread-local capture keeps routing.
            sys.stdout = self._router
        self._router.push(buffer)
        span_attrs = {"op": op, "program": os.path.basename(path)}
        if trace is not None:
            span_attrs["trace_id"] = trace.trace_id
            span_attrs["request_id"] = trace.request_id
        try:
            with ctx.tracer.span("service.request", category="service",
                                 **span_attrs) as sp:
                if op != "optimize":
                    # optimize re-parses and rewrites its own program; the
                    # other ops all start from the memoized compile.
                    options = CompilerOptions(
                        auto_privatize=not getattr(args, "no_auto_privatize",
                                                   False),
                        auto_reduction=not getattr(args, "no_auto_reduction",
                                                   False),
                    )
                    _, tier = self.cache.ensure_compiled(source, options, ctx)
                    sp.set_attr("cache", tier)
                exit_code = args.func(args, ctx)
        except ReproError as err:
            return self._error_response(request, op, err,
                                        stdout=buffer.getvalue(), ctx=ctx,
                                        params=params, program=path,
                                        trace=trace)
        except Exception as err:
            return self._error_response(request, op, err,
                                        stdout=buffer.getvalue(), ctx=ctx,
                                        params=params, program=path,
                                        trace=trace)
        finally:
            self._router.pop()
        runtime = getattr(ctx, "last_runtime", None)
        if runtime is not None:
            self.telemetry.record_run(runtime)
        report = self._write_report(op, path, params, ctx=ctx)
        return {"id": request.get("id"), "ok": True, "op": op,
                "exit_code": int(exit_code or 0), "stdout": buffer.getvalue(),
                "cache": tier, "report": report}

    def _spool_source(self, source: str) -> str:
        """Inline source → a deterministic fingerprint-named spool file (so
        identical sources map to identical paths, keeping responses
        byte-identical across requests and daemon restarts)."""
        assert self._spool is not None, "daemon not started"
        name = hashlib.sha256(source.encode()).hexdigest()[:16] + ".c"
        path = os.path.join(self._spool, name)
        if not os.path.exists(path):
            tmp = f"{path}.{threading.get_ident()}.tmp"
            with open(tmp, "w") as handle:
                handle.write(source)
            os.replace(tmp, path)
        return path

    # -- admin ops -----------------------------------------------------------
    def _admin_op(self, op: str, request: Dict) -> Dict:
        if op == "ping":
            from repro import __version__

            return {"ok": True, "pong": True, "version": __version__,
                    "workers": self.config.workers}
        if op == "cache.stats":
            return {"ok": True, "stats": self.stats()}
        if op == "stats":
            fmt = request.get("format", "json")
            if fmt in ("prom", "prometheus"):
                return {"ok": True, "format": "prometheus",
                        "text": self.prometheus()}
            if fmt != "json":
                raise ServiceProtocolError(
                    f"bad stats format {fmt!r} (json or prometheus)")
            response = {"ok": True, "stats": self.stats(),
                        "telemetry": self.telemetry_snapshot()}
            if request.get("flight"):
                response["flight"] = self.flight.tail()
            return response
        if op == "cache.clear":
            tier = request.get("tier", "all")
            if tier not in ("mem", "disk", "all"):
                raise ServiceProtocolError(
                    f"bad tier {tier!r} (mem, disk, or all)")
            return {"ok": True, "cleared": self.cache.clear(tier)}
        if op == "cache.warm":
            return {"ok": True, "warmed": self._warm(request)}
        if op == "shutdown":
            self.request_shutdown()
            return {"ok": True, "shutdown": True}
        raise ServiceProtocolError(f"unhandled admin op {op!r}")

    def _warm(self, request: Dict) -> List[Dict]:
        from repro.compiler.driver import CompilerOptions

        files = request.get("files") or []
        sources = request.get("sources") or []
        if not isinstance(files, list) or not isinstance(sources, list):
            raise ServiceProtocolError("'files'/'sources' must be lists")
        if not files and not sources:
            raise ServiceProtocolError("cache.warm needs 'files' or 'sources'")
        args = _cli_parser().parse_args(["compile", "ignored.c"])
        results: List[Dict] = []
        for label, source in self._warm_inputs(files, sources):
            ctx = self._request_context(args)
            try:
                tier = self.cache.warm(source, CompilerOptions(), ctx)
            except ReproError as err:
                results.append({"program": label, "ok": False,
                                "error": protocol.error_payload(err)})
            else:
                results.append({"program": label, "ok": True, "tier": tier})
        return results

    def _warm_inputs(self, files: List, sources: List):
        for path in files:
            if not isinstance(path, str):
                raise ServiceProtocolError("'files' entries must be paths")
            try:
                with open(path) as handle:
                    yield path, handle.read()
            except OSError as err:
                raise ServiceError(f"cannot read program {path!r}: {err}")
        for i, source in enumerate(sources):
            if not isinstance(source, str):
                raise ServiceProtocolError("'sources' entries must be strings")
            yield f"<source[{i}]>", source

    # -- reports -------------------------------------------------------------
    def _write_report(self, op, program, params, ctx=None,
                      error: Optional[BaseException] = None,
                      flight: Optional[Dict] = None,
                      trace: Optional[TraceContext] = None) -> Optional[str]:
        """The per-request RunReport artifact (crash paths included).  A
        failure to *write* the report must never mask the response."""
        if not self.config.report_dir:
            return None
        from repro.obs.report import build_report

        if ctx is None:
            # The request died before a context existed (protocol errors,
            # unreadable programs): report against an empty context so the
            # artifact still records the typed error.
            ctx = ToolchainContext()
        if trace is not None and getattr(ctx, "trace_context", None) is None:
            ctx.trace_context = trace
        seq = next(self._seq)
        name = f"req-{seq:06d}-{(op or 'invalid').replace('.', '_')}.json"
        path = os.path.join(self.config.report_dir, name)
        try:
            extra = {"flight_recorder": flight} if flight is not None else None
            report = build_report(ctx, command=op, program=program,
                                  params=params, error=error, extra=extra)
            tmp = f"{path}.tmp"
            with open(tmp, "w") as handle:
                json.dump(report, handle, indent=2, sort_keys=True,
                          default=repr)
                handle.write("\n")
            os.replace(tmp, path)
        except Exception:
            return None
        return path

    # -- stats ---------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        tiers = self.cache.stats()
        counters = self.metrics.snapshot()["counters"]
        return {
            "requests": counters.get(CTR_REQUESTS, 0),
            "errors": counters.get(CTR_ERRORS, 0),
            "tiers": tiers,
            "counters": counters,
        }

    def telemetry_snapshot(self) -> Dict[str, object]:
        """The ``stats`` verb's telemetry payload: the rolling snapshot plus
        two-tier cache hit ratios and flight-recorder occupancy."""
        snap = self.telemetry.snapshot()
        counters = self.metrics.counters
        cache: Dict[str, Dict[str, object]] = {}
        for tier in ("mem", "disk"):
            hits = counters.get(f"cache.tier.{tier}.hit", 0)
            misses = counters.get(f"cache.tier.{tier}.miss", 0)
            total = hits + misses
            cache[tier] = {
                "hits": hits,
                "misses": misses,
                "hit_ratio": (hits / total) if total else None,
            }
        snap["cache"] = cache
        snap["flight"] = {
            "entries": len(self.flight),
            "capacity": self.flight.capacity,
            "dropped": self.flight.dropped,
        }
        return snap

    def prometheus(self) -> str:
        """The full Prometheus text exposition (the ``stats`` verb's
        ``format: prometheus`` answer and the ``--metrics-addr`` body)."""
        snap = self.telemetry_snapshot()
        return render_prometheus(snap, counters=dict(self.metrics.counters),
                                 cache=snap["cache"])
