"""Two-tier cross-request pass-result cache for the toolchain service.

The daemon serves near-identical compile/run/verify requests over and over
(the paper's Figure 2 loop, CI re-runs, many users poking the same
benchmark), so compilation results are cached at two tiers:

* **memory tier** — the daemon's single shared
  :class:`~repro.toolchain.CacheRegistry`.  Every request-scoped
  :class:`~repro.toolchain.ToolchainContext` points at it, so the existing
  pass-manager caches (whole-pipeline ``compile`` memo, ``parse`` tree
  cache, per-pass ``passes`` analysis cache — each keyed by AST fingerprint
  + pass name + the option subset that pass reads) become cross-request
  automatically.  Each named cache is a thread-safe LRU with an entry cap
  and a byte budget; evictions are counted (``cache.tier.mem.evict``).

* **disk tier** — a persistent directory of checksummed, versioned
  pickle envelopes (format :data:`CACHE_FORMAT`), written atomically with
  the same ``tmp + fsync + os.replace`` discipline as the PR 7 checkpoint
  format.  Entries are keyed by (source fingerprint, compiler-option key,
  toolchain version) and hold a fully-analyzed
  :class:`~repro.compiler.driver.CompiledProgram`, so a *fresh daemon* (or
  a repeated CI session) skips parse + every analysis pass and goes
  straight from bytes-on-disk to execution.

Key-safety: the envelope stores the complete key string, and ``get``
compares it against the requested key before accepting the entry — a
filename (truncated-hash) collision therefore degrades to a miss, never to
cross-contamination.  Checksum or format mismatches likewise read as
misses (counted separately) and the stale file is left for ``clear``.

Pickle fidelity: ``CompiledProgram.data_mem`` is keyed by ``id(directive)``
— meaningless across a pickle boundary — so entries are packed together
with their ``(directive, plan)`` pairs.  Pickle preserves object identity
within one blob, so after loading, the pairs' directive objects *are* the
nodes of the unpickled tree and the table can be rebuilt exactly.  The
daemon's equivalence gate (and ``tests/service``) verifies runs from
disk-tier programs are byte-identical to cold compiles.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from typing import Dict, Optional, Tuple

from repro.errors import ServiceError
from repro.obs.metrics import register_counter
from repro.toolchain import ToolchainContext

__all__ = ["CACHE_FORMAT", "DiskTier", "ServiceCache", "compile_key"]

# Disk-entry envelope format tag; bump on any incompatible payload change.
CACHE_FORMAT = "repro.passcache/1"

# Counter names, declared against the obs counter-name registry like every
# other counter family (the registry-completeness test enforces this).
CTR_MEM_HIT = register_counter("cache.tier.mem.hit")
CTR_MEM_MISS = register_counter("cache.tier.mem.miss")
CTR_MEM_EVICT = register_counter("cache.tier.mem.evict")
CTR_DISK_HIT = register_counter("cache.tier.disk.hit")
CTR_DISK_MISS = register_counter("cache.tier.disk.miss")
CTR_DISK_EVICT = register_counter("cache.tier.disk.evict")
CTR_DISK_REJECTED = register_counter("cache.tier.disk.rejected")


def _options_key(options) -> Tuple:
    return tuple(sorted(options.__dict__.items()))


def compile_key(source: str, options) -> Tuple[str, Tuple]:
    """The (fingerprint, option-key) pair under which a compile of
    ``source`` is memoized — identical to the pass manager's key, so the
    memory tier is exactly the shared ``compile`` cache."""
    return (hashlib.sha256(source.encode()).hexdigest(), _options_key(options))


def _key_string(key: Tuple[str, Tuple]) -> str:
    """Stable, version-salted textual form of a compile key (the disk
    tier's logical key; also stored inside the envelope for verification)."""
    from repro import __version__

    return repr((CACHE_FORMAT, __version__, key))


def _pack_compiled(compiled) -> bytes:
    pairs = [(r.directive, compiled.data_mem.get(id(r.directive)))
             for r in compiled.regions.data]
    return pickle.dumps(("compiled", compiled, pairs),
                        protocol=pickle.HIGHEST_PROTOCOL)


def _unpack_compiled(payload: bytes):
    tag, compiled, pairs = pickle.loads(payload)
    if tag != "compiled":
        raise ServiceError(f"unexpected disk-cache payload tag {tag!r}")
    compiled.data_mem = {id(directive): plan for directive, plan in pairs
                         if plan is not None}
    return compiled


class DiskTier:
    """Persistent tier: one checksummed envelope file per entry."""

    SUFFIX = ".pc"

    def __init__(self, root: str, max_bytes: Optional[int] = None):
        self.root = root
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejected = 0       # checksum/format/key failures (read as miss)
        self._lock = threading.Lock()
        os.makedirs(root, exist_ok=True)

    def _path(self, key_string: str) -> str:
        name = hashlib.sha256(key_string.encode()).hexdigest()[:40]
        return os.path.join(self.root, name + self.SUFFIX)

    # -- reads --------------------------------------------------------------
    def get(self, key_string: str) -> Optional[bytes]:
        """The payload for ``key_string``, or None.  Every failure mode —
        missing file, unreadable pickle, wrong format version, checksum
        mismatch, key mismatch (filename collision) — is a miss."""
        path = self._path(key_string)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except OSError:
            self.misses += 1
            return None
        except Exception:
            # Unpickling arbitrary corruption raises a zoo of types
            # (UnpicklingError, EOFError, OverflowError, AttributeError...):
            # all of them mean "this entry is unusable", never "crash".
            self.rejected += 1
            self.misses += 1
            return None
        if (not isinstance(envelope, dict)
                or envelope.get("format") != CACHE_FORMAT
                or envelope.get("key") != key_string):
            self.rejected += 1
            self.misses += 1
            return None
        payload = envelope.get("payload")
        if (not isinstance(payload, bytes)
                or hashlib.sha256(payload).hexdigest() != envelope.get("sha256")):
            self.rejected += 1
            self.misses += 1
            return None
        self.hits += 1
        # LRU-ish recency for the byte-budget sweep.
        try:
            os.utime(path, None)
        except OSError:
            pass
        return payload

    # -- writes -------------------------------------------------------------
    def put(self, key_string: str, payload: bytes) -> str:
        """Atomically persist one entry (tmp + fsync + ``os.replace``): a
        concurrent reader sees the old complete file or the new complete
        file, never a torn write."""
        path = self._path(key_string)
        envelope = {
            "format": CACHE_FORMAT,
            "key": key_string,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload": payload,
        }
        tmp = f"{path}.{os.getpid()}.{threading.get_ident()}.tmp"
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as err:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise ServiceError(
                f"cannot write pass-cache entry {path!r}: {err}") from err
        if self.max_bytes is not None:
            self._enforce_budget()
        return path

    def _enforce_budget(self) -> None:
        """Evict oldest-by-mtime entries until the directory fits."""
        with self._lock:
            entries = []
            total = 0
            for name in os.listdir(self.root):
                if not name.endswith(self.SUFFIX):
                    continue
                path = os.path.join(self.root, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                entries.append((st.st_mtime, st.st_size, path))
                total += st.st_size
            entries.sort()
            for _, size, path in entries:
                if total <= self.max_bytes:
                    break
                try:
                    os.unlink(path)
                except OSError:
                    continue
                total -= size
                self.evictions += 1

    # -- maintenance ---------------------------------------------------------
    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        removed = 0
        for name in os.listdir(self.root):
            if name.endswith(self.SUFFIX):
                try:
                    os.unlink(os.path.join(self.root, name))
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> Dict[str, int]:
        entries = 0
        nbytes = 0
        try:
            for name in os.listdir(self.root):
                if name.endswith(self.SUFFIX):
                    entries += 1
                    try:
                        nbytes += os.stat(os.path.join(self.root, name)).st_size
                    except OSError:
                        pass
        except OSError:
            pass
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "rejected": self.rejected,
                "entries": entries, "bytes_held": nbytes}


class ServiceCache:
    """The daemon's two-tier compile cache.

    ``registry`` is the shared memory tier (every request context points at
    it); ``disk`` is the optional persistent tier.  ``metrics``, when set,
    receives the ``cache.tier.{mem,disk}.{hit,miss,evict}`` counters.
    """

    def __init__(self, registry, disk: Optional[DiskTier] = None,
                 metrics=None):
        self.registry = registry
        self.disk = disk
        self.metrics = metrics
        if metrics is not None:
            registry.on_evict = (
                lambda _name, n: metrics.count(CTR_MEM_EVICT, n))

    def _count(self, name: str, delta: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.count(name, delta)

    def ensure_compiled(self, source: str, options,
                        ctx: ToolchainContext) -> Tuple[object, str]:
        """The compiled program for ``source``; returns ``(compiled,
        tier)`` where tier is ``"mem"``, ``"disk"``, or ``"cold"``.

        Resolution order: shared memory tier → persistent disk tier
        (promoted into memory on hit) → cold compile through ``ctx``'s pass
        manager (persisted to disk).  ``ctx.caches`` must be the shared
        registry, so a cold compile lands in the memory tier as a side
        effect of normal pass-manager caching.
        """
        key = compile_key(source, options)
        mem = self.registry.get("compile")
        compiled = mem.peek(key)
        if compiled is not None:
            self._count(CTR_MEM_HIT)
            return compiled, "mem"
        self._count(CTR_MEM_MISS)

        key_string = _key_string(key)
        if self.disk is not None:
            payload = self.disk.get(key_string)
            if payload is not None:
                try:
                    compiled = _unpack_compiled(payload)
                except Exception:
                    # Unpicklable under this build (e.g. written by a newer
                    # tree): treat as a miss and recompile.
                    self.disk.rejected += 1
                    self._count(CTR_DISK_REJECTED)
                else:
                    self._count(CTR_DISK_HIT)
                    mem.put(key, compiled, cost=len(payload))
                    return compiled, "disk"
            if payload is None:
                self._count(CTR_DISK_MISS)

        compiled = ctx.passes.compile_source(source, options)
        if self.disk is not None:
            payload = _pack_compiled(compiled)
            self.disk.put(key_string, payload)
            # Refresh the memory entry's cost with the true pickled size.
            mem.put(key, compiled, cost=len(payload))
        return compiled, "cold"

    def warm(self, source: str, options, ctx: ToolchainContext) -> str:
        """Pre-populate both tiers for ``source``; returns the tier that
        already held it (``"mem"``/``"disk"``) or ``"cold"`` if compiled."""
        if self.disk is None:
            raise ServiceError("cache warm requires a persistent cache dir")
        _, tier = self.ensure_compiled(source, options, ctx)
        if tier == "mem":
            # Memory-resident but possibly missing on disk (e.g. disk tier
            # cleared since): make the persistent entry exist regardless.
            key = compile_key(source, options)
            key_string = _key_string(key)
            if self.disk.get(key_string) is None:
                compiled = self.registry.get("compile").peek(key)
                self.disk.put(key_string, _pack_compiled(compiled))
        return tier

    def clear(self, tier: str = "all") -> Dict[str, int]:
        """Clear one or both tiers; returns per-tier removal counts."""
        removed = {"mem": 0, "disk": 0}
        if tier in ("mem", "all"):
            for name in self.registry.names():
                cache = self.registry.get(name)
                removed["mem"] += len(cache)
                cache.clear()
        if tier in ("disk", "all") and self.disk is not None:
            removed["disk"] = self.disk.clear()
        return removed

    def stats(self) -> Dict[str, object]:
        return {
            "mem": self.registry.stats(),
            "disk": self.disk.stats() if self.disk is not None else None,
        }
