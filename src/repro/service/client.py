"""A minimal blocking client for the toolchain daemon.

One :class:`ServiceClient` owns one connection; requests on it answer in
order.  For concurrent load (the harness, the concurrency tests) open one
client per thread — the daemon interleaves across connections.

Every client mints one trace id at connect time and stamps it on each
request it sends (callers can override per request with ``trace_id=...``),
so a session's requests chain into one trace on the daemon side; the daemon
echoes ``trace_id``/``request_id`` in every response.
"""

from __future__ import annotations

import itertools
import json
import socket
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ServiceError, ServiceProtocolError
from repro.obs.telemetry import TraceContext

__all__ = ["ServiceClient", "connect"]


def connect(address: Union[str, Tuple[str, int]],
            timeout: Optional[float] = 60.0) -> "ServiceClient":
    """Connect to a daemon at a unix-socket path or ``(host, port)``."""
    if isinstance(address, str):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address)
    else:
        host, port = address
        sock = socket.create_connection((host, int(port)), timeout=timeout)
    return ServiceClient(sock)


class ServiceClient:
    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._recv = sock.makefile("rb")
        self._ids = itertools.count(1)
        # One trace id per connection: the session identity every request
        # carries unless the caller overrides it.
        self.trace_id = TraceContext.mint().trace_id

    def close(self) -> None:
        try:
            self._recv.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(self, op: str, **fields) -> Dict:
        """Send one request, block for its response, check the id echo."""
        request = {"id": next(self._ids), "op": op,
                   "trace_id": self.trace_id}
        request.update(fields)
        line = (json.dumps(request, sort_keys=True) + "\n").encode()
        self._sock.sendall(line)
        answer = self._recv.readline()
        if not answer:
            raise ServiceError("daemon closed the connection mid-request")
        try:
            response = json.loads(answer.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise ServiceProtocolError(f"unparseable response: {err}")
        if response.get("id") != request["id"]:
            raise ServiceProtocolError(
                f"response id {response.get('id')!r} does not echo "
                f"request id {request['id']!r}")
        return response

    # Conveniences mirroring the wire ops -------------------------------
    def ping(self) -> Dict:
        return self.request("ping")

    def stats(self) -> Dict:
        return self.request("cache.stats")["stats"]

    def clear(self, tier: str = "all") -> Dict:
        return self.request("cache.clear", tier=tier)

    def telemetry(self) -> Dict:
        """The ``stats`` verb's rolling-telemetry payload."""
        return self.request("stats")["telemetry"]

    def prometheus(self) -> str:
        """The daemon's Prometheus text exposition."""
        return self.request("stats", format="prometheus")["text"]

    def flight(self) -> List[Dict]:
        """The daemon-lifetime flight-recorder tail."""
        return self.request("stats", flight=True).get("flight", [])

    def shutdown(self) -> Dict:
        return self.request("shutdown")
