"""A minimal blocking client for the toolchain daemon.

One :class:`ServiceClient` owns one connection; requests on it answer in
order.  For concurrent load (the harness, the concurrency tests) open one
client per thread — the daemon interleaves across connections.
"""

from __future__ import annotations

import itertools
import json
import socket
from typing import Dict, Optional, Tuple, Union

from repro.errors import ServiceError, ServiceProtocolError

__all__ = ["ServiceClient", "connect"]


def connect(address: Union[str, Tuple[str, int]],
            timeout: Optional[float] = 60.0) -> "ServiceClient":
    """Connect to a daemon at a unix-socket path or ``(host, port)``."""
    if isinstance(address, str):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address)
    else:
        host, port = address
        sock = socket.create_connection((host, int(port)), timeout=timeout)
    return ServiceClient(sock)


class ServiceClient:
    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._recv = sock.makefile("rb")
        self._ids = itertools.count(1)

    def close(self) -> None:
        try:
            self._recv.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(self, op: str, **fields) -> Dict:
        """Send one request, block for its response, check the id echo."""
        request = {"id": next(self._ids), "op": op}
        request.update(fields)
        line = (json.dumps(request, sort_keys=True) + "\n").encode()
        self._sock.sendall(line)
        answer = self._recv.readline()
        if not answer:
            raise ServiceError("daemon closed the connection mid-request")
        try:
            response = json.loads(answer.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise ServiceProtocolError(f"unparseable response: {err}")
        if response.get("id") != request["id"]:
            raise ServiceProtocolError(
                f"response id {response.get('id')!r} does not echo "
                f"request id {request['id']!r}")
        return response

    # Conveniences mirroring the wire ops -------------------------------
    def ping(self) -> Dict:
        return self.request("ping")

    def stats(self) -> Dict:
        return self.request("cache.stats")["stats"]

    def clear(self, tier: str = "all") -> Dict:
        return self.request("cache.clear", tier=tier)

    def shutdown(self) -> Dict:
        return self.request("shutdown")
