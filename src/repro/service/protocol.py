"""Wire protocol for the toolchain service: newline-delimited JSON.

One request per line, one response per line, UTF-8.  Requests are JSON
objects; the daemon answers every parseable line — including protocol
violations — with a JSON object, so a client never has to guess whether a
silence is a crash.

Request shape::

    {"id": <any>,              # echoed verbatim in the response (optional)
     "op": "compile" | "run" | "profile" | "verify" | "memcheck"
           | "optimize" | "cache.stats" | "cache.clear" | "cache.warm"
           | "stats" | "ping" | "shutdown",
     "trace_id": "<hex>",               # optional client-minted trace id;
                                        #   the daemon mints one if absent
                                        #   and echoes trace_id/request_id
     "file": "<daemon-local path>",     # toolchain ops: one of file/source
     "source": "<program text>",        #   (source is spooled to a
                                        #    fingerprint-named file)
     "params": {"N": 64, ...},          # -p NAME=VALUE bindings
     "devices": 2,                      # run/profile/memcheck: shard across
                                        #   N simulated devices (--devices)
     "options": "<string>",             # verify: VerificationOptions string
     "outputs": "a,r",                  # optimize: observable outputs
     "args": ["--no-auto-privatize"],   # extra CLI flags (whitelisted)
     "tier": "mem" | "disk" | "all",    # cache.clear (default "all")
     "format": "json" | "prometheus",   # stats exposition (default json)
     "flight": true,                    # stats: include flight-recorder tail
     "files": [...], "sources": [...]}  # cache.warm inputs

Toolchain ops are mapped to the *offline CLI's own argument parser and
command functions*, which is what makes the service's byte-identity
guarantee cheap to state: for any toolchain op, ``response["stdout"]`` and
``response["exit_code"]`` are exactly what ``python -m repro <op> ...``
prints and returns for the same inputs (the concurrency equivalence test
enforces this).  Responses::

    {"id": ..., "ok": true,  "op": ..., "exit_code": 0, "stdout": "...",
     "cache": "mem"|"disk"|"cold"|null, "report": <path|null>,
     "elapsed_ms": <float>}                      # success
    {"id": ..., "ok": false, "error": {"type": ..., "stage": ...,
     "message": ...}, "exit_code": 2, "stdout": "...",
     "report": <path|null>}                      # typed failure

``stage`` matches the CLI's one-line diagnostics (``repro: error
[<stage>]: ...``); protocol violations carry stage ``"service"``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.errors import ServiceProtocolError

__all__ = [
    "TOOLCHAIN_OPS",
    "ADMIN_OPS",
    "build_argv",
    "decode_request",
    "encode_response",
    "error_payload",
]

# Toolchain ops are exactly the CLI subcommands the daemon re-serves.
TOOLCHAIN_OPS = ("compile", "run", "profile", "verify", "memcheck", "optimize")
ADMIN_OPS = ("cache.stats", "cache.clear", "cache.warm", "stats", "ping",
             "shutdown")

# Toolchain ops that accept multi-device sharding over the wire (compile has
# no runtime; verify/optimize drive their own runs).
_DEVICE_OPS = ("run", "profile", "memcheck")

# Per-program flags a client may pass through to the CLI parser.  Anything
# else (trace/report paths, checkpoint dirs, chaos seeds...) touches the
# daemon's filesystem or global behavior and must come from the operator's
# command line, not the wire.
_ALLOWED_FLAGS = (
    "--no-auto-privatize",
    "--no-auto-reduction",
    "--show-source",
    "--show-instrumented",
    "--compare-sequential",
)


def decode_request(line: bytes) -> Dict:
    """Parse one request line; every failure is a typed protocol error."""
    try:
        request = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ServiceProtocolError(f"request is not valid JSON: {err}")
    if not isinstance(request, dict):
        raise ServiceProtocolError(
            f"request must be a JSON object, got {type(request).__name__}")
    op = request.get("op")
    if not isinstance(op, str):
        raise ServiceProtocolError("request has no 'op' string")
    if op not in TOOLCHAIN_OPS and op not in ADMIN_OPS:
        raise ServiceProtocolError(
            f"unknown op {op!r} (toolchain: {', '.join(TOOLCHAIN_OPS)}; "
            f"admin: {', '.join(ADMIN_OPS)})")
    trace_id = request.get("trace_id")
    if trace_id is not None and not isinstance(trace_id, str):
        raise ServiceProtocolError("'trace_id' must be a string")
    return request


def encode_response(response: Dict) -> bytes:
    return (json.dumps(response, sort_keys=True, default=repr) + "\n").encode()


def error_payload(err: BaseException) -> Dict[str, object]:
    """The typed error entry (same shape as a RunReport's ``error``)."""
    from repro.errors import error_stage

    return {
        "type": type(err).__name__,
        "stage": error_stage(err),
        "message": str(err),
    }


def build_argv(request: Dict, program_path: str) -> List[str]:
    """Map one toolchain-op request onto offline-CLI argv."""
    op = request["op"]
    argv: List[str] = [op, program_path]
    params = request.get("params") or {}
    if not isinstance(params, dict):
        raise ServiceProtocolError("'params' must be an object")
    if params and op == "compile":
        raise ServiceProtocolError("'params' is meaningless for op compile")
    for name in sorted(params):
        value = params[name]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ServiceProtocolError(
                f"param {name!r} must be numeric, got {type(value).__name__}")
        argv += ["-p", f"{name}={value}"]
    devices = request.get("devices")
    if devices is not None:
        if op not in _DEVICE_OPS:
            raise ServiceProtocolError(
                f"'devices' applies to ops {', '.join(_DEVICE_OPS)} only")
        if not isinstance(devices, int) or isinstance(devices, bool) \
                or devices < 1:
            raise ServiceProtocolError("'devices' must be a positive integer")
        argv += ["--devices", str(devices)]
    options = request.get("options")
    if options is not None:
        if op != "verify":
            raise ServiceProtocolError("'options' applies to op verify only")
        if not isinstance(options, str):
            raise ServiceProtocolError("'options' must be a string")
        argv += ["--options", options]
    outputs = request.get("outputs")
    if outputs is not None:
        if op != "optimize":
            raise ServiceProtocolError("'outputs' applies to op optimize only")
        if not isinstance(outputs, str):
            raise ServiceProtocolError("'outputs' must be a string")
        argv += ["--outputs", outputs]
    extra = request.get("args") or []
    if not isinstance(extra, list):
        raise ServiceProtocolError("'args' must be a list of flags")
    for flag in extra:
        if flag not in _ALLOWED_FLAGS:
            raise ServiceProtocolError(
                f"flag {flag!r} is not allowed over the wire "
                f"(allowed: {', '.join(_ALLOWED_FLAGS)})")
        argv.append(flag)
    return argv


def request_program(request: Dict) -> Tuple[Optional[str], Optional[str]]:
    """The (file, source) pair of a toolchain-op request; exactly one must
    be present."""
    file = request.get("file")
    source = request.get("source")
    if (file is None) == (source is None):
        raise ServiceProtocolError(
            "toolchain ops need exactly one of 'file' or 'source'")
    if file is not None and not isinstance(file, str):
        raise ServiceProtocolError("'file' must be a string path")
    if source is not None and not isinstance(source, str):
        raise ServiceProtocolError("'source' must be a string")
    return file, source
