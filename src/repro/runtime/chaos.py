"""Seeded runtime fault injection (chaos framework).

The compile-time injectors in :mod:`repro.compiler.faults` plant *program*
bugs (dropped clauses, stripped data management) for the Table II / Figure 1
studies.  This module is their runtime counterpart: it plants *platform*
faults — allocation OOM, transfer corruption/truncation/transient errors,
async-queue stalls, kernel-launch failures — so the hardening layers
(retry-with-backoff in :mod:`repro.runtime.accrt`, the watchdog in the
execution backends, the degradation ladder in :mod:`repro.interp.interp`,
per-benchmark isolation in :mod:`repro.experiments.harness`) can be tested
deterministically.

Determinism contract: a :class:`FaultPlan` draws from ``random.Random(seed)``
in program order, one uniform per candidate fault kind per injection point,
so the same seed + the same execution reproduces the same fault sequence.
Every fault either

* aborts the faulted operation *before it mutates device state* (raised as a
  typed :class:`~repro.errors.ChaosFault` / :class:`~repro.errors.TransientFault`),
* corrupts/truncates a transfer *after* the copy (detected by the runtime's
  post-transfer verification and re-copied), or
* stalls an async queue (absorbed by ``wait`` as modeled time).

Recovered runs therefore stay bit-identical to fault-free runs; unrecovered
faults surface as typed :class:`~repro.errors.ReproError`\\ s, never hangs or
silent corruption.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ChaosFault, TransientFault
from repro.obs.tracer import NULL_TRACER
from repro.runtime.profiler import CTR_FAULT_INJECTED

# Fault kinds, grouped by injection point.
KIND_ALLOC_OOM = "alloc.oom"                  # transient device OOM at alloc
KIND_TRANSFER_TRANSIENT = "transfer.transient"  # copy aborts before moving data
KIND_TRANSFER_CORRUPT = "transfer.corrupt"    # one byte of the payload flips
KIND_TRANSFER_TRUNCATE = "transfer.truncate"  # only a prefix arrives
KIND_QUEUE_STALL = "queue.stall"              # async op takes extra modeled time
KIND_LAUNCH_TRANSIENT = "launch.transient"    # launch aborts; retriable
KIND_LAUNCH_FAIL = "launch.fail"              # launch aborts; backend degraded

ALL_KINDS = (
    KIND_ALLOC_OOM,
    KIND_TRANSFER_TRANSIENT,
    KIND_TRANSFER_CORRUPT,
    KIND_TRANSFER_TRUNCATE,
    KIND_QUEUE_STALL,
    KIND_LAUNCH_TRANSIENT,
    KIND_LAUNCH_FAIL,
)

# Draw order per injection point (fixed: part of the determinism contract).
KINDS_AT: Dict[str, Tuple[str, ...]] = {
    "alloc": (KIND_ALLOC_OOM,),
    "transfer": (KIND_TRANSFER_TRANSIENT, KIND_TRANSFER_CORRUPT,
                 KIND_TRANSFER_TRUNCATE),
    "queue": (KIND_QUEUE_STALL,),
    "launch": (KIND_LAUNCH_TRANSIENT, KIND_LAUNCH_FAIL),
}

TRANSIENT_KINDS = frozenset({
    KIND_ALLOC_OOM, KIND_TRANSFER_TRANSIENT, KIND_LAUNCH_TRANSIENT,
})

# Point-name shorthand accepted by FaultSpec.parse: "alloc=0.1" means the
# point's first (most benign) kind.
_ALIASES = {
    "alloc": KIND_ALLOC_OOM,
    "transfer": KIND_TRANSFER_TRANSIENT,
    "stall": KIND_QUEUE_STALL,
    "queue": KIND_QUEUE_STALL,
    "launch": KIND_LAUNCH_TRANSIENT,
}

# Rates used when the CLI gets only --chaos-seed.
DEFAULT_RATES = ("alloc=0.02,transfer.transient=0.03,transfer.corrupt=0.03,"
                 "transfer.truncate=0.02,stall=0.05,launch=0.03,launch.fail=0.02")

# CTR_FAULT_INJECTED is declared (and registered) in repro.runtime.profiler
# and re-exported here for the historical import path.


@dataclass(frozen=True)
class Fault:
    """One injected fault, drawn by :meth:`FaultPlan.draw`."""

    kind: str
    site: str
    seq: int                    # ordinal within the plan (0-based)
    stall_seconds: float = 0.0  # queue.stall payload
    lane: int = 0               # corruption/truncation position seed

    @property
    def transient(self) -> bool:
        return self.kind in TRANSIENT_KINDS

    @property
    def aborts(self) -> bool:
        """Does this fault abort the operation (vs. silently damaging it)?"""
        return self.kind in (KIND_ALLOC_OOM, KIND_TRANSFER_TRANSIENT,
                             KIND_LAUNCH_TRANSIENT, KIND_LAUNCH_FAIL)

    @property
    def corrupts(self) -> bool:
        return self.kind == KIND_TRANSFER_CORRUPT

    @property
    def truncates(self) -> bool:
        return self.kind == KIND_TRANSFER_TRUNCATE

    def to_error(self, message: str) -> ChaosFault:
        """The typed error an aborting fault raises at its injection site."""
        text = f"chaos[{self.seq}] {self.kind} at {self.site or '?'}: {message}"
        if self.transient:
            return TransientFault(text, kind=self.kind, site=self.site)
        return ChaosFault(text, kind=self.kind, site=self.site)


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of a chaos campaign: per-kind firing rates,
    the RNG seed, and an optional total-fault budget."""

    seed: int = 0
    rates: Mapping[str, float] = field(default_factory=dict)
    max_faults: Optional[int] = None
    stall_seconds: float = 250e-6

    @classmethod
    def parse(cls, text: str, seed: int = 0,
              max_faults: Optional[int] = None) -> "FaultSpec":
        """Parse ``"alloc=0.1,transfer.corrupt=0.2,..."`` (point-name
        shorthand allowed; see ``_ALIASES``)."""
        rates: Dict[str, float] = {}
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "=" not in chunk:
                raise ValueError(f"bad chaos spec entry {chunk!r}: expected KIND=RATE")
            name, value = (part.strip() for part in chunk.split("=", 1))
            kind = _ALIASES.get(name, name)
            if kind not in ALL_KINDS:
                raise ValueError(
                    f"unknown chaos fault kind {name!r}: valid kinds are "
                    f"{', '.join(ALL_KINDS)} (aliases: {', '.join(_ALIASES)})"
                )
            try:
                rate = float(value)
            except ValueError:
                raise ValueError(f"bad chaos rate {value!r} for {name!r}")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"chaos rate for {name!r} must be in [0, 1], got {rate}")
            rates[kind] = rate
        return cls(seed=seed, rates=rates, max_faults=max_faults)

    @classmethod
    def default(cls, seed: int = 0,
                max_faults: Optional[int] = None) -> "FaultSpec":
        return cls.parse(DEFAULT_RATES, seed=seed, max_faults=max_faults)


class FaultPlan:
    """Stateful, seed-driven fault source shared by every injection point of
    one execution (or, when budgeted, one whole experiment sweep).

    The plan is attached by :class:`~repro.runtime.accrt.AccRuntime` to the
    device allocator, the transfer paths, the kernel launcher, and the async
    queues; each consults :meth:`draw` at its injection point.  Fired faults
    are counted on the profiler (``fault.injected`` and a per-kind
    ``fault.injected.<kind>``) and recorded in :attr:`injected`.
    """

    def __init__(self, spec: FaultSpec, profiler=None):
        self.spec = spec
        self.profiler = profiler
        self.tracer = NULL_TRACER  # AccRuntime swaps in the live tracer
        self.injected: List[Fault] = []
        self._rng = random.Random(spec.seed)
        # Crash-resume support (repro.runtime.checkpoint): while True, draw()
        # returns None *without consuming rng state*.  A resumed run executes
        # its pre-checkpoint prefix with chaos suspended — the snapshot's rng
        # state already reflects the original prefix's draws, so replaying
        # them would both double-draw and risk faulting the prefix.
        self.suspended = False

    @classmethod
    def from_string(cls, text: str, seed: int = 0,
                    max_faults: Optional[int] = None) -> "FaultPlan":
        return cls(FaultSpec.parse(text, seed=seed, max_faults=max_faults))

    @property
    def exhausted(self) -> bool:
        return (self.spec.max_faults is not None
                and len(self.injected) >= self.spec.max_faults)

    def draw(self, point: str, site: str = "") -> Optional[Fault]:
        """Deterministically decide whether a fault fires at ``point``
        (``alloc`` / ``transfer`` / ``queue`` / ``launch``)."""
        if self.suspended or self.exhausted:
            return None
        for kind in KINDS_AT[point]:
            rate = self.spec.rates.get(kind, 0.0)
            if rate <= 0.0:
                continue
            if self._rng.random() < rate:
                fault = Fault(
                    kind, site, len(self.injected),
                    stall_seconds=self.spec.stall_seconds,
                    lane=self._rng.randrange(1 << 30),
                )
                self.injected.append(fault)
                if self.profiler is not None:
                    self.profiler.count(CTR_FAULT_INJECTED)
                    self.profiler.count(f"{CTR_FAULT_INJECTED}.{kind}")
                self.tracer.event("chaos.fault", kind=kind, site=site,
                                  seq=fault.seq)
                return fault
        return None

    # -- checkpoint support --------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """The rng position + injected-fault history.  Restored only on a
        disk *resume* (bit-identical continuation of the original draw
        sequence); a same-process rollback deliberately does NOT rewind the
        rng — replaying the identical fault would livelock, and the run stays
        deterministic per seed either way because the draw sequence is still
        a pure function of (seed, execution path)."""
        return {"rng": self._rng.getstate(), "injected": list(self.injected)}

    def restore_state(self, state: Dict[str, object]) -> None:
        self._rng.setstate(state["rng"])
        self.injected[:] = state["injected"]

    def summary(self) -> str:
        if not self.injected:
            return "chaos: no faults injected"
        by_kind: Dict[str, int] = {}
        for fault in self.injected:
            by_kind[fault.kind] = by_kind.get(fault.kind, 0) + 1
        parts = ", ".join(f"{k}={n}" for k, n in sorted(by_kind.items()))
        return f"chaos: {len(self.injected)} fault(s) injected ({parts})"


# ---------------------------------------------------------------------------
# Payload damage helpers (used by repro.device.device after a copy)
# ---------------------------------------------------------------------------

def corrupt_payload(arr: np.ndarray, fault: Fault) -> None:
    """Flip one byte of ``arr`` in place (``transfer.corrupt``)."""
    view = arr.reshape(-1).view(np.uint8)
    if view.size:
        view[fault.lane % view.size] ^= 0xFF


def truncate_payload(arr: np.ndarray, snapshot: np.ndarray, fault: Fault) -> None:
    """Undo the copy for a suffix of ``arr``: only the first ``keep``
    elements "arrived" (``transfer.truncate``)."""
    flat = arr.reshape(-1)
    if flat.size:
        keep = fault.lane % flat.size
        flat[keep:] = snapshot[keep:]
