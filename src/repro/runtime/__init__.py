"""OpenACC runtime: present table, async queues, coherence, profiler."""

from repro.runtime.coherence import CoherenceTracker, Finding
from repro.runtime.present import PresentTable
from repro.runtime.profiler import Profiler
from repro.runtime.queues import AsyncQueues

__all__ = ["CoherenceTracker", "Finding", "PresentTable", "Profiler", "AsyncQueues"]
