"""Gang-loop partitioner for multi-device execution.

Splits a statically race-free launch (one the vectorizer accepted — its
:class:`~repro.device.vectorize.VectorPlan` proved every array write
one-element-per-thread) into per-device contiguous lane ranges, and predicts
each shard's per-array read/write footprints by re-evaluating the plan's
retained subscript ASTs over just that shard's lanes — the same vector
expression closures the SIMT executor uses, so the prediction matches what
the shard will actually touch.

The probe is conservative by construction:

* only partition index variables are seeded (they are immutable inside the
  body — the analysis rejects stores to them); any other name, any array
  gather, or any runtime bailout makes that access *unevaluable* and the
  footprint falls back to the whole array;
* branch guards are ignored, so the footprint covers every lane whether or
  not it takes the access (a superset of the true footprint);
* index components are clipped into the array's bounds, mirroring how the
  guarded accesses that survive at runtime stay in bounds.

``needed`` (reads + planned writes) drives the pre-launch halo exchange;
``planned`` (the write tuple alone) drives post-launch replica invalidation
when a shard's byte-exact write set is unavailable.  Planned writes ride in
``needed`` deliberately: revalidating a shard's replica over everything it
may write makes the post-launch scratch diff byte-identical to the
single-device diff (a write of an identical value stays invisible on every
device count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.device import vectorize
from repro.runtime.intervals import IntervalSet

__all__ = ["ShardFootprint", "shard_ranges", "shard_footprints", "plan_pulls"]


@dataclass
class ShardFootprint:
    """Predicted element intervals one shard touches in one array.

    ``needed`` — elements the shard may read or write (None = whole array);
    ``planned`` — elements the shard may write (only for written arrays);
    ``exact`` — False when any access was unevaluable and a whole-array
    fallback was taken."""

    needed: Optional[IntervalSet]
    planned: Optional[IntervalSet]
    written: bool
    exact: bool


def shard_ranges(nthreads: int, ndevices: int) -> List[Tuple[int, int]]:
    """Contiguous balanced split of lane indices ``[0, nthreads)`` into
    ``ndevices`` half-open ranges (earlier shards absorb the remainder).
    Ranges may be empty when there are fewer lanes than devices."""
    if ndevices < 1:
        raise ValueError("ndevices must be >= 1")
    base, rem = divmod(max(0, nthreads), ndevices)
    out: List[Tuple[int, int]] = []
    lo = 0
    for d in range(ndevices):
        hi = lo + base + (1 if d < rem else 0)
        out.append((lo, hi))
        lo = hi
    return out


def _runs_to_intervals(flat: np.ndarray) -> IntervalSet:
    """Sorted unique flat indices -> coalesced [start, stop) intervals."""
    out = IntervalSet()
    if flat.size == 0:
        return out
    uniq = np.unique(flat)
    breaks = np.flatnonzero(np.diff(uniq) != 1)
    starts = np.concatenate(([0], breaks + 1))
    stops = np.concatenate((breaks, [uniq.size - 1]))
    ivs = [(int(uniq[a]), int(uniq[b]) + 1) for a, b in zip(starts, stops)]
    out_ivs = ivs  # already sorted and disjoint
    out._ivs = out_ivs
    return out


def _eval_tuple(comps, ctx, sel, shape) -> Optional[IntervalSet]:
    """Evaluate one subscript-component tuple over the probe lanes; None
    when any component is unevaluable."""
    n = len(sel)
    if n == 0:
        return IntervalSet()
    flat = None
    try:
        for comp, dim in zip(comps, shape):
            val = vectorize._vec_expr(comp)(ctx, sel)
            if isinstance(val, np.ndarray):
                if val.dtype.kind not in "iu":
                    return None
                idx = val.astype(np.int64)
            else:
                if isinstance(val, float):
                    return None
                idx = np.full(n, int(val), np.int64)
            # Branch-guard overapproximation: lanes that would not take the
            # access at runtime can hold out-of-bounds components; clipping
            # keeps them inside the array, preserving the superset property
            # for the lanes that do take it.
            np.clip(idx, 0, max(0, dim - 1), out=idx)
            flat = idx if flat is None else flat * dim + idx
    except (KeyError, IndexError, vectorize.VectorBailout, ZeroDivisionError,
            TypeError, ValueError):
        return None
    if flat is None:  # zero-dimensional access cannot occur (ndims checked)
        return None
    return _runs_to_intervals(flat)


def shard_footprints(spec, plan, shards: List[Tuple[int, int]]
                     ) -> List[Dict[str, ShardFootprint]]:
    """Per-shard, per-array footprints for one launch.  ``plan`` is the
    launch's :class:`~repro.device.vectorize.VectorPlan`; ``shards`` the
    lane ranges from :func:`shard_ranges`.  Keys are kernel-local array
    names (``spec.array_names`` maps them to canonical ones)."""
    out: List[Dict[str, ShardFootprint]] = []
    for lo, hi in shards:
        lanes = spec.threads[lo:hi]
        n = len(lanes)
        ctx = vectorize._Ctx(n, {}, dict(spec.scalars))
        for k, var in enumerate(spec.index_vars):
            ctx.regs[var] = np.fromiter(
                (values[k] for values in lanes), np.int64, count=n)
        sel = np.arange(n)
        per_array: Dict[str, ShardFootprint] = {}
        for root, tuples in plan.accesses.items():
            shape = spec.arrays[root].shape
            size = int(spec.arrays[root].size)
            written = root in plan.written_arrays
            needed: Optional[IntervalSet] = IntervalSet()
            exact = True
            for comps in tuples:
                ivs = _eval_tuple(comps, ctx, sel, shape)
                if ivs is None:
                    needed = None
                    exact = False
                    break
                needed = needed.union(ivs)
            planned: Optional[IntervalSet] = None
            if written:
                wivs = _eval_tuple(plan.write_tuples[root], ctx, sel, shape)
                if wivs is None:
                    planned = IntervalSet([(0, size)])
                    exact = False
                else:
                    planned = wivs
            if needed is None:
                needed = IntervalSet([(0, size)])
            per_array[root] = ShardFootprint(needed, planned, written, exact)
        out.append(per_array)
    return out


def plan_pulls(needed: IntervalSet, stale: List[IntervalSet], dst: int
               ) -> Tuple[List[Tuple[int, IntervalSet]], IntervalSet]:
    """Minimal halo-exchange plan: which intervals device ``dst`` must pull
    from which sources to become fresh over ``needed``.  ``stale[d]`` is
    device ``d``'s stale set.  Returns ``(copies, unsatisfied)`` where the
    union of copied intervals equals ``needed & stale[dst]`` minus
    ``unsatisfied`` (nonempty only on a replica-invariant breach)."""
    missing = needed.intersection(stale[dst])
    copies: List[Tuple[int, IntervalSet]] = []
    for src in range(len(stale)):
        if src == dst or not missing:
            continue
        avail = missing.difference(stale[src])
        if not avail:
            continue
        copies.append((src, avail))
        missing = missing.difference(avail)
    return copies, missing
