"""Dirty-interval bookkeeping for sub-array coherence (delta transfers).

The whole-array coherence machine of :mod:`repro.runtime.coherence` answers
*whether* a copy is stale; the structures here answer *which bytes*.  An
:class:`IntervalSet` is a sorted, coalescing list of half-open ``[start,
stop)`` element intervals over the flattened array — whole-array dirtiness
is just the degenerate single interval ``[0, size)``.  A :class:`DirtyMap`
keeps two interval sets per variable, one per transfer direction:

* ``h2d`` — elements the *device* copy lacks (host wrote them since the
  last transfer);
* ``d2h`` — elements the *host* copy lacks (a kernel wrote them).

Writers feed it through :meth:`DirtyMap.note_write` (host write checks and
kernel launch footprints), transfers drain it through
:meth:`DirtyMap.note_transfer`.  Tracking is deliberately allowed to
*under*-approximate: the delta-transfer planner in the runtime unions the
tracked intervals with a bitwise host/device diff before any bytes are
skipped, so a missed write can cost accuracy of the *savings estimate* but
never correctness of the transferred data.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["IntervalSet", "DirtyMap", "ReplicaMap", "H2D", "D2H"]

H2D = "h2d"
D2H = "d2h"


class IntervalSet:
    """Sorted, disjoint, coalescing set of half-open element intervals."""

    __slots__ = ("_ivs",)

    def __init__(self, intervals: Optional[Iterable[Tuple[int, int]]] = None):
        self._ivs: List[Tuple[int, int]] = []
        for start, stop in intervals or ():
            self.add(start, stop)

    # -- mutation -----------------------------------------------------------
    def add(self, start: int, stop: int) -> None:
        """Insert ``[start, stop)``, merging overlapping/adjacent intervals."""
        if stop <= start:
            return
        ivs = self._ivs
        merged: List[Tuple[int, int]] = []
        placed = False
        for a, b in ivs:
            if b < start or (placed and a > stop):
                merged.append((a, b))
            elif a > stop:
                if not placed:
                    merged.append((start, stop))
                    placed = True
                merged.append((a, b))
            else:
                # Overlaps or touches the pending interval: absorb it.
                start = min(start, a)
                stop = max(stop, b)
        if not placed:
            merged.append((start, stop))
        merged.sort()
        self._ivs = merged

    def subtract(self, start: int, stop: int) -> None:
        """Remove ``[start, stop)`` from the set."""
        if stop <= start or not self._ivs:
            return
        out: List[Tuple[int, int]] = []
        for a, b in self._ivs:
            if b <= start or a >= stop:
                out.append((a, b))
                continue
            if a < start:
                out.append((a, start))
            if b > stop:
                out.append((stop, b))
        self._ivs = out

    def union(self, other: "IntervalSet") -> "IntervalSet":
        result = self.copy()
        for a, b in other._ivs:
            result.add(a, b)
        return result

    __or__ = union

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """Elements of this set not in ``other``."""
        result = self.copy()
        for a, b in other._ivs:
            result.subtract(a, b)
        return result

    __sub__ = difference

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Elements present in both sets."""
        out = IntervalSet()
        ivs: List[Tuple[int, int]] = []
        for a, b in self._ivs:
            for c, d in other._ivs:
                if d <= a:
                    continue
                if c >= b:
                    break
                ivs.append((max(a, c), min(b, d)))
        out._ivs = ivs
        return out

    __and__ = intersection

    def clear(self) -> None:
        self._ivs = []

    # -- queries ------------------------------------------------------------
    def intersect(self, start: int, stop: int) -> "IntervalSet":
        """The subset of this set falling inside ``[start, stop)``."""
        out = IntervalSet()
        out._ivs = [
            (max(a, start), min(b, stop))
            for a, b in self._ivs
            if b > start and a < stop
        ]
        return out

    @property
    def covered(self) -> int:
        """Total number of covered elements."""
        return sum(b - a for a, b in self._ivs)

    def covers(self, start: int, stop: int) -> bool:
        """True when ``[start, stop)`` lies entirely inside one interval
        (the set is normalized, so coverage is never split)."""
        if stop <= start:
            return True
        return any(a <= start and b >= stop for a, b in self._ivs)

    def intervals(self) -> List[Tuple[int, int]]:
        return list(self._ivs)

    def copy(self) -> "IntervalSet":
        out = IntervalSet()
        out._ivs = list(self._ivs)
        return out

    def __bool__(self) -> bool:
        return bool(self._ivs)

    def __len__(self) -> int:
        return len(self._ivs)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self._ivs)

    def __eq__(self, other) -> bool:
        if isinstance(other, IntervalSet):
            return self._ivs == other._ivs
        return NotImplemented

    def __repr__(self) -> str:
        body = ", ".join(f"[{a},{b})" for a, b in self._ivs)
        return f"IntervalSet({body})"


class _VarDirty:
    """Per-variable geometry + one pending-interval set per direction."""

    __slots__ = ("size", "itemsize", "need")

    def __init__(self, size: int, itemsize: int):
        self.size = size
        self.itemsize = itemsize
        self.need: Dict[str, IntervalSet] = {H2D: IntervalSet(), D2H: IntervalSet()}


def _direction_from(side: str) -> str:
    """A write on ``side`` makes the *other* copy pend a transfer toward it."""
    return H2D if side == "cpu" else D2H


class DirtyMap:
    """Per-variable, per-direction dirty-interval bookkeeping.

    Variables are lazily bound to a geometry (flattened element count and
    itemsize) by :meth:`bind`; operations on unbound variables degrade to
    whole-array conservatism (``pending`` returns ``None`` = everything)."""

    def __init__(self):
        self._vars: Dict[str, _VarDirty] = {}

    # -- geometry -----------------------------------------------------------
    def bind(self, var: str, size: int, itemsize: int) -> None:
        entry = self._vars.get(var)
        if entry is None or entry.size != size or entry.itemsize != itemsize:
            self._vars[var] = _VarDirty(size, itemsize)

    def bound(self, var: str) -> bool:
        return var in self._vars

    def geometry(self, var: str) -> Optional[Tuple[int, int]]:
        entry = self._vars.get(var)
        return (entry.size, entry.itemsize) if entry is not None else None

    # -- event hooks --------------------------------------------------------
    def note_alloc(self, var: str) -> None:
        """Fresh device buffer: it lacks everything; the host copy stays
        authoritative, so nothing pends d2h."""
        entry = self._vars.get(var)
        if entry is None:
            return
        entry.need[H2D] = IntervalSet([(0, entry.size)])
        entry.need[D2H].clear()

    def note_free(self, var: str) -> None:
        """Device buffer gone: un-copied-out device writes are lost (the
        coherence machine reports that); a future realloc starts from
        scratch."""
        entry = self._vars.get(var)
        if entry is None:
            return
        entry.need[H2D] = IntervalSet([(0, entry.size)])
        entry.need[D2H].clear()

    def note_write(self, var: str, side: str,
                   footprint: Optional[Iterable[Tuple[int, int]]] = None,
                   full: bool = False) -> None:
        """A write on ``side`` (``"cpu"``/``"gpu"``).

        With a ``footprint`` (element intervals) or ``full=True``, the
        written range pends a transfer toward the other side and stops
        pending a transfer toward this one.  A partial write with unknown
        footprint conservatively pends the whole array outward and leaves
        the inbound set untouched."""
        entry = self._vars.get(var)
        if entry is None:
            return
        outward = _direction_from(side)
        inward = D2H if outward == H2D else H2D
        if full:
            entry.need[outward] = IntervalSet([(0, entry.size)])
            entry.need[inward].clear()
        elif footprint is not None:
            for a, b in footprint:
                entry.need[outward].add(a, b)
                entry.need[inward].subtract(a, b)
        else:
            entry.need[outward] = IntervalSet([(0, entry.size)])

    def note_transfer(self, var: str, direction: str,
                      span: Optional[Tuple[int, int]] = None) -> None:
        """A successful transfer over ``span`` (``None`` = whole array)
        equalizes both copies there: nothing pends in either direction."""
        entry = self._vars.get(var)
        if entry is None:
            return
        lo, hi = span if span is not None else (0, entry.size)
        entry.need[H2D].subtract(lo, hi)
        entry.need[D2H].subtract(lo, hi)

    # -- queries ------------------------------------------------------------
    def pending(self, var: str, direction: str) -> Optional[IntervalSet]:
        """Intervals pending transfer in ``direction``; ``None`` when the
        variable is unbound (conservatively: everything pends)."""
        entry = self._vars.get(var)
        if entry is None:
            return None
        return entry.need[direction]

    def pending_bytes(self, var: str, direction: str,
                      span: Optional[Tuple[int, int]] = None) -> Optional[int]:
        """Bytes pending in ``direction`` within ``span``; ``None`` when
        unbound."""
        entry = self._vars.get(var)
        if entry is None:
            return None
        lo, hi = span if span is not None else (0, entry.size)
        return entry.need[direction].intersect(lo, hi).covered * entry.itemsize

    # -- checkpoint support --------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Deep copy of every variable's geometry + pending intervals."""
        return {
            var: (entry.size, entry.itemsize,
                  {d: s.intervals() for d, s in entry.need.items()})
            for var, entry in self._vars.items()
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Rebuild in place (the map object is shared between the runtime and
        the coherence tracker, so identity must survive the restore)."""
        self._vars.clear()
        for var, (size, itemsize, need) in state.items():
            entry = _VarDirty(size, itemsize)
            for direction, intervals in need.items():
                entry.need[direction] = IntervalSet(intervals)
            self._vars[var] = entry


class ReplicaMap:
    """Per-device replica validity for multi-device (DeviceSet) runs.

    The :class:`DirtyMap` above tracks the host against *the* device; under
    sharding there are N device replicas of every present array, and this map
    tracks which elements of each replica are **stale** — differ from the
    logical single-device value.  Invariant: element ``e`` of ``var`` is in
    ``stale(var, d)`` iff device ``d``'s copy of ``e`` may differ from what
    the one-device runtime's buffer would hold.  Freshly allocated replicas
    are all zero-filled identically, so every stale set starts empty.
    """

    __slots__ = ("ndevices", "_vars")

    def __init__(self, ndevices: int):
        self.ndevices = ndevices
        # var -> (size, [stale IntervalSet per device])
        self._vars: Dict[str, Tuple[int, List[IntervalSet]]] = {}

    # -- geometry -----------------------------------------------------------
    def bind(self, var: str, size: int) -> None:
        entry = self._vars.get(var)
        if entry is None or entry[0] != size:
            self._vars[var] = (size, [IntervalSet() for _ in range(self.ndevices)])

    def drop(self, var: str) -> None:
        self._vars.pop(var, None)

    def bound(self, var: str) -> bool:
        return var in self._vars

    def size(self, var: str) -> int:
        return self._vars[var][0]

    def stale(self, var: str, dev: int) -> IntervalSet:
        """The stale set of device ``dev``'s replica (empty when unbound)."""
        entry = self._vars.get(var)
        if entry is None:
            return IntervalSet()
        return entry[1][dev]

    # -- event hooks --------------------------------------------------------
    def mark_fresh(self, var: str, dev: int,
                   intervals: Iterable[Tuple[int, int]]) -> None:
        """Device ``dev`` now holds logical values over ``intervals``
        (a D2D copy from a fresh source, or an h2d landing on dev)."""
        entry = self._vars.get(var)
        if entry is None:
            return
        stale = entry[1][dev]
        for a, b in intervals:
            stale.subtract(a, b)

    def mark_stale_others(self, var: str, dev: int,
                          intervals: Iterable[Tuple[int, int]]) -> None:
        """Device ``dev`` wrote logical values over ``intervals`` — every
        *other* replica is stale there now."""
        entry = self._vars.get(var)
        if entry is None:
            return
        for d, stale in enumerate(entry[1]):
            if d == dev:
                continue
            for a, b in intervals:
                stale.add(a, b)

    def missing(self, var: str, dev: int, needed: IntervalSet) -> IntervalSet:
        """Elements of ``needed`` that device ``dev`` holds stale — exactly
        what a halo exchange must deliver before ``dev`` may read them."""
        return needed.intersection(self.stale(var, dev))

    # -- checkpoint support --------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            var: (size, [s.intervals() for s in stales])
            for var, (size, stales) in self._vars.items()
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._vars.clear()
        for var, (size, stales) in state.items():
            self._vars[var] = (size, [IntervalSet(ivs) for ivs in stales])
