"""Checkpoint/rollback/replay: crash-consistent recovery for iterative runs.

PR 2's hardening masks *transient* faults (retry-with-backoff, the launch
degradation ladder); anything beyond its budget aborted the whole run.  This
module makes long iterative solvers survivable instead: the interpreter
snapshots the complete execution state at counted-loop phase boundaries
(the same boundary PR 6's sampler uses), and when a fault exhausts the
retry budget the loop **rolls back** to the newest snapshot and replays —
deterministically, because every layer's state (host arrays, device memory,
present table, dirty intervals, coherence states, profiler clock/counters,
async queues, chaos rng) is part of the snapshot.

Two storage tiers:

* an in-memory **ring buffer** (rollback within the process, no I/O);
* optional **on-disk** snapshots, written atomically (tmp + ``os.replace``)
  in a versioned, sha256-checksummed envelope, so a killed process
  (crash, SIGALRM) can resume from its last phase boundary.

Determinism contract:

* **Rollback** does NOT rewind the chaos rng: replay continues the draw
  sequence forward (exactly like a retry does), so an injected fault cannot
  recur identically and livelock the loop; the whole execution remains a
  pure function of the seed.  A fault-*budget* circuit breaker
  (:class:`~repro.errors.RecoveryExhaustedError` after ``max_rollbacks``)
  bounds adversarial fault storms.
* **Resume** DOES restore the chaos rng, and suspends chaos for the
  re-executed pre-checkpoint prefix (whose draws the restored rng state
  already reflects), so a resumed run's draw sequence — and therefore its
  outputs, byte counters, and findings — is bit-identical to the
  uninterrupted run.
* The ``recovery.*`` counters are the one deliberate exception to "restore
  everything": they survive rollback (the trail must outlive the rewind
  that writes it) and are excluded from byte-identity comparisons.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import deque
from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.errors import CheckpointError, RecoveryExhaustedError
from repro.runtime.profiler import (
    CTR_CHECKPOINT_SAVED,
    CTR_REPLAYED_ITERATIONS,
    CTR_RESUMED,
    CTR_ROLLBACK,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointConfig",
    "CheckpointManager",
    "InjectedCrash",
    "Snapshot",
    "load_snapshot",
    "write_snapshot",
]

# Snapshot envelope format tag; bump on any incompatible payload change.
CHECKPOINT_FORMAT = "repro.checkpoint/1"


class InjectedCrash(RuntimeError):
    """Deterministic crash hook (``CheckpointConfig.crash_after_saves``):
    raised right after the N-th checkpoint lands, *outside* the ReproError
    hierarchy, so tests and the CI gate can exercise the harness's
    crash/resume path without killing a real process."""


@dataclass(frozen=True)
class CheckpointConfig:
    """Recovery policy for one run (threaded via ``ToolchainContext``)."""

    every: int = 0                      # checkpoint every N iterations; 0 = off
    dir: Optional[str] = None           # also write atomic on-disk snapshots
    tag: str = "run"                    # file stem for on-disk snapshots
    ring: int = 2                       # in-memory ring-buffer depth
    max_rollbacks: int = 5              # fault-budget circuit breaker
    resume_path: Optional[str] = None   # snapshot to resume from
    crash_after_saves: Optional[int] = None  # test hook: InjectedCrash after N saves

    @property
    def enabled(self) -> bool:
        return self.every > 0 or self.resume_path is not None

    def snapshot_path(self) -> Optional[str]:
        if self.dir is None:
            return None
        return os.path.join(self.dir, f"{self.tag}.ckpt")

    def for_resume(self, path: str) -> "CheckpointConfig":
        """The config a crash-recovery attempt runs under: same policy,
        resuming from ``path``, with the crash hook disarmed."""
        return replace(self, resume_path=path, crash_after_saves=None)


@dataclass
class Snapshot:
    """One captured phase boundary.

    ``loop_site`` identifies the checkpointing loop (``"<var>@<line>"``) so a
    restore can never land in a structurally different loop; ``payload``
    holds the per-layer state dicts (every entry is a deep copy — restoring
    the same snapshot twice is safe)."""

    loop_site: str
    iteration: int
    seq: int
    payload: Dict[str, object]
    program: str = ""
    # The interpreter's un-flushed CPU-step tally at capture time.  Carried
    # as a count (not flushed to the profiler first): flushing would split
    # one charge into two and perturb float accumulation, so checkpointing
    # would no longer be bit-transparent on fault-free runs.
    cpu_steps: int = 0


# ---------------------------------------------------------------------------
# On-disk format
# ---------------------------------------------------------------------------

def write_snapshot(snap: Snapshot, path: str) -> str:
    """Atomically persist a snapshot: pickle the payload, wrap it in a
    versioned envelope carrying its sha256, write to a temp file in the
    target directory, fsync, and ``os.replace`` into place — a reader sees
    either the old complete file or the new complete file, never a torn
    write."""
    payload_bytes = pickle.dumps(
        {
            "loop_site": snap.loop_site,
            "iteration": snap.iteration,
            "seq": snap.seq,
            "payload": snap.payload,
            "program": snap.program,
            "cpu_steps": snap.cpu_steps,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    envelope = {
        "format": CHECKPOINT_FORMAT,
        "sha256": hashlib.sha256(payload_bytes).hexdigest(),
        "meta": {
            "loop_site": snap.loop_site,
            "iteration": snap.iteration,
            "seq": snap.seq,
            "program": snap.program,
        },
        "payload": payload_bytes,
    }
    tmp = f"{path}.tmp"
    try:
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(tmp, "wb") as handle:
            pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as err:
        raise CheckpointError(f"cannot write checkpoint {path!r}: {err}") from err
    return path


def load_snapshot(path: str) -> Snapshot:
    """Load + validate an on-disk snapshot; every failure mode (missing
    file, unpicklable, wrong format version, checksum mismatch) is a typed
    :class:`~repro.errors.CheckpointError`."""
    try:
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
    except OSError as err:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {err}") from err
    except (pickle.UnpicklingError, EOFError, AttributeError, ValueError) as err:
        raise CheckpointError(
            f"checkpoint {path!r} is not a valid snapshot file: {err}") from err
    if not isinstance(envelope, dict) or "format" not in envelope:
        raise CheckpointError(f"checkpoint {path!r} has no format envelope")
    if envelope["format"] != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint {path!r} has format {envelope['format']!r}; this "
            f"build reads {CHECKPOINT_FORMAT!r}")
    payload_bytes = envelope.get("payload")
    digest = hashlib.sha256(payload_bytes or b"").hexdigest()
    if digest != envelope.get("sha256"):
        raise CheckpointError(
            f"checkpoint {path!r} failed its checksum (truncated or "
            f"corrupted on disk)")
    try:
        data = pickle.loads(payload_bytes)
    except (pickle.UnpicklingError, EOFError, AttributeError, ValueError) as err:
        raise CheckpointError(
            f"checkpoint {path!r} payload is unreadable: {err}") from err
    return Snapshot(
        loop_site=data["loop_site"],
        iteration=data["iteration"],
        seq=data["seq"],
        payload=data["payload"],
        program=data.get("program", ""),
        cpu_steps=data.get("cpu_steps", 0),
    )


# ---------------------------------------------------------------------------
# Manager
# ---------------------------------------------------------------------------

class CheckpointManager:
    """Owns the snapshot ring + disk tier for one execution.

    Created by the interpreter when its context carries an enabled
    :class:`CheckpointConfig`; the outermost counted loop claims it
    (:meth:`acquire`) so nested loops never interleave snapshots."""

    def __init__(self, config: CheckpointConfig, runtime, env,
                 program: str = ""):
        self.config = config
        self.runtime = runtime
        self.env = env
        self.program = program
        self.tracer = runtime.tracer
        self.ring = deque(maxlen=max(1, config.ring))
        self.saves = 0
        self.rollbacks = 0
        self.replayed_iterations = 0
        self.resumed = False
        self.last_disk_path: Optional[str] = None
        self._active_loop = None
        self._pending: Optional[Snapshot] = None
        # The cpu_steps tally of the last restored snapshot; the interpreter
        # reads it back after a rollback/resume to continue counting exactly
        # where the capture left off.
        self.restored_cpu_steps = 0
        runtime.checkpointer = self
        if config.resume_path:
            self._pending = load_snapshot(config.resume_path)
            if runtime.chaos is not None:
                # The pre-checkpoint prefix re-executes without draws; the
                # snapshot's rng state already accounts for them.
                runtime.chaos.suspended = True

    # -- loop ownership -----------------------------------------------------
    def acquire(self, stmt) -> bool:
        """Claim checkpointing for ``stmt`` (a For node).  Only the first
        (outermost) counted loop wins; everything nested runs plain."""
        if self._active_loop is not None:
            return False
        self._active_loop = stmt
        return True

    def release(self, stmt) -> None:
        if self._active_loop is stmt:
            self._active_loop = None

    # -- save ---------------------------------------------------------------
    def should_save(self, iteration: int) -> bool:
        return self.config.every > 0 and iteration % self.config.every == 0

    def save(self, loop_site: str, iteration: int,
             cpu_steps: int = 0) -> Snapshot:
        disk_path = self.config.snapshot_path()
        with self.tracer.span("checkpoint.save", category="runtime.checkpoint",
                              loop=loop_site, iteration=iteration,
                              disk=disk_path is not None):
            snap = Snapshot(
                loop_site=loop_site,
                iteration=iteration,
                seq=self.saves,
                payload={
                    "env": self.env.snapshot_state(),
                    "runtime": self.runtime.snapshot_state(),
                },
                program=self.program,
                cpu_steps=cpu_steps,
            )
            self.ring.append(snap)
            self.saves += 1
            if disk_path is not None:
                self.last_disk_path = write_snapshot(snap, disk_path)
            self.runtime.profiler.count(CTR_CHECKPOINT_SAVED)
        if (self.config.crash_after_saves is not None
                and self.saves >= self.config.crash_after_saves):
            raise InjectedCrash(
                f"injected crash after checkpoint #{self.saves} "
                f"(crash_after_saves={self.config.crash_after_saves})")
        return snap

    # -- rollback -----------------------------------------------------------
    def can_recover(self, loop_site: str) -> bool:
        """A rollback target exists: the newest ring snapshot belongs to the
        *current* loop (a stale snapshot from an earlier loop cannot be
        re-entered)."""
        return bool(self.ring) and self.ring[-1].loop_site == loop_site

    def rollback(self, loop_site: str, at_iteration: int,
                 error: BaseException) -> int:
        """Restore the newest snapshot and return its iteration.  Raises
        :class:`RecoveryExhaustedError` once the fault budget is spent."""
        if self.rollbacks >= self.config.max_rollbacks:
            raise RecoveryExhaustedError(
                f"recovery fault budget exhausted after {self.rollbacks} "
                f"rollback(s) (max_rollbacks={self.config.max_rollbacks}); "
                f"last error: {type(error).__name__}: {error}",
                rollbacks=self.rollbacks, last_error=error,
            ) from error
        snap = self.ring[-1]
        replayed = max(1, at_iteration - snap.iteration + 1)
        with self.tracer.span("checkpoint.rollback",
                              category="runtime.checkpoint",
                              loop=loop_site, to_iteration=snap.iteration,
                              from_iteration=at_iteration,
                              error=type(error).__name__):
            self._restore(snap, restore_chaos=False)
            self.rollbacks += 1
            self.replayed_iterations += replayed
            profiler = self.runtime.profiler
            profiler.count(CTR_ROLLBACK)
            profiler.count(CTR_REPLAYED_ITERATIONS, replayed)
        return snap.iteration

    # -- resume -------------------------------------------------------------
    def resume_into(self, loop_site: str) -> Optional[int]:
        """If the pending on-disk snapshot targets ``loop_site``, restore it
        (including chaos rng), lift the chaos suspension, and return the
        snapshot's iteration; otherwise None (keep executing until the right
        loop is reached)."""
        if self._pending is None or self._pending.loop_site != loop_site:
            return None
        snap, self._pending = self._pending, None
        with self.tracer.span("checkpoint.restore",
                              category="runtime.checkpoint",
                              loop=loop_site, iteration=snap.iteration,
                              path=self.config.resume_path):
            self._restore(snap, restore_chaos=True)
            if self.runtime.chaos is not None:
                self.runtime.chaos.suspended = False
            self.resumed = True
            # Seed the ring: post-resume faults can roll back to here.
            self.ring.append(snap)
            self.runtime.profiler.count(CTR_RESUMED)
        return snap.iteration

    def finish(self) -> None:
        """End-of-run check: a resume snapshot that never matched any loop
        means the program (or its parameters) changed under the checkpoint —
        surface that instead of silently having run from scratch."""
        if self._pending is not None:
            raise CheckpointError(
                f"resume checkpoint targets loop "
                f"{self._pending.loop_site!r} (iteration "
                f"{self._pending.iteration}), which this program never "
                f"reached — wrong program or parameters for this snapshot?")

    # -- internals ----------------------------------------------------------
    def _restore(self, snap: Snapshot, restore_chaos: bool) -> None:
        self.env.restore_state(snap.payload["env"])
        self.runtime.restore_state(snap.payload["runtime"],
                                   restore_chaos=restore_chaos)
        self.restored_cpu_steps = snap.cpu_steps
