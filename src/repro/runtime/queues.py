"""Async queues (OpenACC ``async``/``wait``).

Each queue is a timeline: an async operation issued at host time *t* with
modeled duration *d* completes at ``max(ready, t) + d`` and does not advance
the host clock.  ``wait`` advances the host to the queue's ready time,
charging the difference to the Async-Wait category — which is how the
kernel-verification transformation's async overlap shows up in Figure 3.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import RuntimeFault
from repro.runtime.profiler import CAT_ASYNC_WAIT, Profiler

# OpenACC's "async with no argument" sentinel queue.
DEFAULT_ASYNC_QUEUE = -1


class AsyncQueues:
    def __init__(self, profiler: Profiler, chaos=None):
        self.profiler = profiler
        self._ready: Dict[int, float] = {}
        # Ops issued since the last wait, per queue: (category, seconds).
        self._pending: Dict[int, list] = {}
        # Optional chaos FaultPlan (repro.runtime.chaos): queue.stall faults
        # lengthen an async op's modeled duration; the host absorbs the
        # extra time at the next wait.  Always recoverable.
        self.chaos = chaos

    def issue(self, queue: Optional[int], seconds: float,
              category: str = CAT_ASYNC_WAIT) -> float:
        """Issue an operation.  ``queue=None`` means synchronous: the host
        blocks for the duration.  Returns the operation's completion time."""
        if queue is None:
            start = self.profiler.now
            return start + seconds  # caller charges the category itself
        if not isinstance(queue, int):
            raise RuntimeFault(f"bad async queue id {queue!r}")
        if self.chaos is not None:
            fault = self.chaos.draw("queue", site=f"queue{queue}")
            if fault is not None:
                seconds += fault.stall_seconds
        start = max(self._ready.get(queue, 0.0), self.profiler.now)
        done = start + seconds
        self._ready[queue] = done
        self._pending.setdefault(queue, []).append((category, seconds))
        return done

    def ready_time(self, queue: int) -> float:
        return self._ready.get(queue, 0.0)

    def wait(self, queue: int) -> float:
        """Block the host until the queue drains; returns the waited time.

        Waited time is attributed to the categories of the queued operations
        proportionally (a d2h copy the host blocks on is Mem Transfer time;
        a kernel it blocks on is Async-Wait time) — which is how the paper's
        Figure-3 breakdown separates the components."""
        waited = max(0.0, self._ready.get(queue, 0.0) - self.profiler.now)
        pending = self._pending.pop(queue, [])
        if waited <= 0.0:
            return 0.0
        total = sum(seconds for _, seconds in pending)
        if total <= 0.0:
            self.profiler.spend(CAT_ASYNC_WAIT, waited)
            return waited
        for category, seconds in pending:
            self.profiler.spend(category, waited * seconds / total)
        return waited

    def wait_all(self) -> float:
        waited = 0.0
        for queue in list(self._ready):
            waited += self.wait(queue)
        return waited

    @property
    def pending(self) -> bool:
        return any(t > self.profiler.now for t in self._ready.values())

    # -- checkpoint support --------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "ready": dict(self._ready),
            "pending": {q: list(ops) for q, ops in self._pending.items()},
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._ready = dict(state["ready"])
        self._pending = {q: list(ops) for q, ops in state["pending"].items()}
