"""Modeled-time profiler.

Maintains a host clock in *modeled seconds* and per-category totals.  The
categories are exactly the Figure-3 breakdown of the paper, plus a kernel
category (synchronous launches block the host) and a coherence-check
category (Figure-4 overhead).

Counters live in a :class:`~repro.obs.metrics.MetricsRegistry` behind the
historical ``Profiler.count``/``Profiler.counters`` surface.  Counter names
are *registered*: every name must be declared up front via
:func:`register_counter` (or fall under a registered dynamic prefix such as
``fault.injected.``) and follow the dotted-lowercase ``noun.verb``
convention, so a typo'd counter name fails loudly instead of silently
splitting a metric in two.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

# The counter-name registry lives in the obs layer (one source of truth for
# every layer that mints counter names); re-exported here because the
# ``CTR_*`` declarations below and the historical import surface
# (``repro.runtime.profiler.register_counter``) both live in this module.
from repro.obs.metrics import (
    MetricsRegistry,
    is_registered_counter,
    register_counter,
    register_counter_prefix,
    registered_counter_prefixes,
    registered_counters,
)


# Figure-3 categories.
CAT_MEM_FREE = "GPU Mem Free"
CAT_MEM_ALLOC = "GPU Mem Alloc"
CAT_TRANSFER = "Mem Transfer"
CAT_ASYNC_WAIT = "Async-Wait"
CAT_RESULT_COMP = "Result-Comp"
CAT_CPU = "CPU Time"
# Extra categories.
CAT_KERNEL = "GPU Kernel"
CAT_CHECK = "Coherence-Check"
# Device-to-device traffic over modeled P2P links (multi-device runs only;
# always 0.0 at --devices 1, so single-device breakdowns are unchanged).
CAT_P2P = "P2P Transfer"

# Counter names (Profiler.count) for the execution-backend split: how many
# kernel launches ran on the vectorized fast path vs. the interleaved
# stepper.  Modeled time is identical either way; the split is a wall-clock
# diagnostic and lets tests assert that race-revealing launches (Table II
# fault injection) really took the interleaved path.
CTR_LAUNCH_VECTORIZED = register_counter("launch.vectorized")
CTR_LAUNCH_INTERLEAVED = register_counter("launch.interleaved")

# Recovery counters: how often the hardened runtime re-issued a faulted
# operation (retry-with-backoff in accrt) or downgraded a kernel launch one
# rung on the degradation ladder (interp).  Zero in fault-free runs, so the
# chaos tests can assert that every recovery is observable.
CTR_TRANSFER_RETRIED = register_counter("transfer.retried")
CTR_ALLOC_RETRIED = register_counter("alloc.retried")
CTR_LAUNCH_RETRIED = register_counter("launch.retried")
CTR_LAUNCH_DEGRADED = register_counter("launch.degraded")

# Transfer-byte accounting (the byte-accurate transfer engine): bytes that
# actually crossed the modeled PCIe link in each direction, and bytes a
# whole-array transfer would have moved that delta transfers skipped.
# bytes.saved stays zero when delta transfers are off.
CTR_BYTES_H2D = register_counter("bytes.h2d")
CTR_BYTES_D2H = register_counter("bytes.d2h")
CTR_BYTES_SAVED = register_counter("bytes.saved")

# Multi-device (DeviceSet) traffic: bytes that crossed a modeled peer-to-peer
# link and how many D2D copies carried them.  Both stay zero at --devices 1.
CTR_BYTES_D2D = register_counter("bytes.d2d")
CTR_TRANSFER_D2D = register_counter("transfer.d2d_copies")

# Chaos-injection counters (bumped by FaultPlan.draw); the per-kind family
# is dynamic — one counter per fault kind actually injected.
CTR_FAULT_INJECTED = register_counter("fault.injected")
FAULT_COUNTER_PREFIX = register_counter_prefix("fault.injected.")

# Phase-sampling counters (repro.sampling): kernel launches and host loop
# iterations the sampler elided and charged by extrapolation instead of
# executing.  Zero whenever sampling is off.
CTR_SAMPLE_SKIPPED_LAUNCHES = register_counter("sample.skipped_launches")
CTR_SAMPLE_SKIPPED_ITERATIONS = register_counter("sample.skipped_iterations")

# Checkpoint/rollback counters (repro.runtime.checkpoint).  These live under
# one prefix because they are the only counters a rollback must *not* rewind:
# Profiler.restore_state keeps everything under RECOVERY_COUNTER_PREFIX so
# replayed work counts exactly once while the recovery trail survives.
CTR_CHECKPOINT_SAVED = register_counter("recovery.checkpoint_saved")
CTR_ROLLBACK = register_counter("recovery.rollback")
CTR_REPLAYED_ITERATIONS = register_counter("recovery.replayed_iterations")
CTR_RESUMED = register_counter("recovery.resumed")
# Plain string (not register_counter_prefix: the family above is static,
# each member registered individually); used as a keep-prefix on restore.
RECOVERY_COUNTER_PREFIX = "recovery."

# Histogram names (Profiler.observe): value distributions the flat counters
# lose — how big each coalesced transfer batch was, and how long each
# retry backed off for.
HIST_TRANSFER_BATCH_BYTES = "transfer.batch_bytes"
HIST_RETRY_BACKOFF_S = "retry.backoff_seconds"

ALL_CATEGORIES = (
    CAT_MEM_FREE,
    CAT_MEM_ALLOC,
    CAT_TRANSFER,
    CAT_ASYNC_WAIT,
    CAT_RESULT_COMP,
    CAT_CPU,
    CAT_KERNEL,
    CAT_CHECK,
    CAT_P2P,
)


class Profiler:
    """Host clock + category accounting."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.now = 0.0
        self.totals: Dict[str, float] = {cat: 0.0 for cat in ALL_CATEGORIES}
        # Counters/histograms live in the registry; ``counters`` below is the
        # historical dict view.  Pass ``metrics`` with a parent to mirror
        # this profiler's metrics into a run-wide aggregate.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.timeline: List[Tuple[float, str, float]] = []
        self.record_timeline = False
        # Optional observer (repro.sampling.PhaseSampler) that sees every
        # spend/count/observe as it happens.  None (the default) keeps the
        # hot paths branch-cheap and the profiler bit-identical to a
        # tap-free one.
        self.tap = None

    @property
    def counters(self) -> Dict[str, int]:
        return self.metrics.counters

    def spend(self, category: str, seconds: float) -> None:
        """Advance the host clock doing ``category`` work."""
        if seconds < 0:
            raise ValueError("negative duration")
        if self.record_timeline:
            self.timeline.append((self.now, category, seconds))
        if self.tap is not None:
            self.tap.on_spend(category, seconds)
        self.now += seconds
        self.totals[category] = self.totals.get(category, 0.0) + seconds

    def advance_to(self, timestamp: float, category: str = CAT_ASYNC_WAIT) -> float:
        """Block the host until ``timestamp`` (no-op if already past).
        Returns the waited duration."""
        wait = max(0.0, timestamp - self.now)
        if wait:
            self.spend(category, wait)
        return wait

    def count(self, name: str, delta: int = 1) -> None:
        if not is_registered_counter(name):
            raise ValueError(
                f"unregistered counter {name!r}; declare it with "
                f"repro.runtime.profiler.register_counter() first")
        if self.tap is not None:
            self.tap.on_count(name, delta)
        self.metrics.count(name, delta)

    def observe(self, name: str, value) -> None:
        """Record one histogram observation (power-of-two buckets)."""
        if self.tap is not None:
            self.tap.on_observe(name, value)
        self.metrics.observe(name, value)

    def total(self) -> float:
        return self.now

    def breakdown(self, categories: Optional[Tuple[str, ...]] = None) -> Dict[str, float]:
        cats = categories or ALL_CATEGORIES
        return {cat: self.totals.get(cat, 0.0) for cat in cats}

    def normalized_breakdown(self, baseline: float) -> Dict[str, float]:
        """Each category divided by a baseline time (Fig. 3 uses the
        sequential CPU execution time)."""
        if baseline <= 0:
            raise ValueError("baseline must be positive")
        return {cat: val / baseline for cat, val in self.breakdown().items()}

    def reset(self) -> None:
        self.now = 0.0
        self.totals = {cat: 0.0 for cat in ALL_CATEGORIES}
        self.metrics.reset()
        self.timeline.clear()

    # -- checkpoint support -------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Copy of the clock, totals, timeline, and metrics (for
        :mod:`repro.runtime.checkpoint`).  The tap and timeline flags are
        configuration, not state, and are not captured."""
        return {
            "now": self.now,
            "totals": dict(self.totals),
            "timeline": list(self.timeline),
            "metrics": self.metrics.snapshot_state(),
        }

    def restore_state(self, state: Dict[str, object],
                      keep_counter_prefixes: Tuple[str, ...] = ()) -> None:
        """Rewind to a :meth:`snapshot_state` capture.  Counters under
        ``keep_counter_prefixes`` keep their *current* values (the recovery
        trail must survive the rollback that writes it)."""
        self.now = state["now"]
        self.totals = dict(state["totals"])
        self.timeline[:] = state["timeline"]
        self.metrics.restore_state(state["metrics"],
                                   keep_prefixes=keep_counter_prefixes)

    def __repr__(self):
        busy = {k: round(v, 6) for k, v in self.totals.items() if v}
        return f"Profiler(now={self.now:.6f}, {busy})"
