"""Modeled-time profiler.

Maintains a host clock in *modeled seconds* and per-category totals.  The
categories are exactly the Figure-3 breakdown of the paper, plus a kernel
category (synchronous launches block the host) and a coherence-check
category (Figure-4 overhead).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

# Figure-3 categories.
CAT_MEM_FREE = "GPU Mem Free"
CAT_MEM_ALLOC = "GPU Mem Alloc"
CAT_TRANSFER = "Mem Transfer"
CAT_ASYNC_WAIT = "Async-Wait"
CAT_RESULT_COMP = "Result-Comp"
CAT_CPU = "CPU Time"
# Extra categories.
CAT_KERNEL = "GPU Kernel"
CAT_CHECK = "Coherence-Check"

# Counter names (Profiler.count) for the execution-backend split: how many
# kernel launches ran on the vectorized fast path vs. the interleaved
# stepper.  Modeled time is identical either way; the split is a wall-clock
# diagnostic and lets tests assert that race-revealing launches (Table II
# fault injection) really took the interleaved path.
CTR_LAUNCH_VECTORIZED = "launch.vectorized"
CTR_LAUNCH_INTERLEAVED = "launch.interleaved"

# Recovery counters: how often the hardened runtime re-issued a faulted
# operation (retry-with-backoff in accrt) or downgraded a kernel launch one
# rung on the degradation ladder (interp).  Zero in fault-free runs, so the
# chaos tests can assert that every recovery is observable.
CTR_TRANSFER_RETRIED = "transfer.retried"
CTR_ALLOC_RETRIED = "alloc.retried"
CTR_LAUNCH_RETRIED = "launch.retried"
CTR_LAUNCH_DEGRADED = "launch.degraded"

# Transfer-byte accounting (the byte-accurate transfer engine): bytes that
# actually crossed the modeled PCIe link in each direction, and bytes a
# whole-array transfer would have moved that delta transfers skipped.
# bytes.saved stays zero when delta transfers are off.
CTR_BYTES_H2D = "bytes.h2d"
CTR_BYTES_D2H = "bytes.d2h"
CTR_BYTES_SAVED = "bytes.saved"

ALL_CATEGORIES = (
    CAT_MEM_FREE,
    CAT_MEM_ALLOC,
    CAT_TRANSFER,
    CAT_ASYNC_WAIT,
    CAT_RESULT_COMP,
    CAT_CPU,
    CAT_KERNEL,
    CAT_CHECK,
)


class Profiler:
    """Host clock + category accounting."""

    def __init__(self):
        self.now = 0.0
        self.totals: Dict[str, float] = {cat: 0.0 for cat in ALL_CATEGORIES}
        self.counters: Dict[str, int] = {}
        self.timeline: List[Tuple[float, str, float]] = []
        self.record_timeline = False

    def spend(self, category: str, seconds: float) -> None:
        """Advance the host clock doing ``category`` work."""
        if seconds < 0:
            raise ValueError("negative duration")
        if self.record_timeline:
            self.timeline.append((self.now, category, seconds))
        self.now += seconds
        self.totals[category] = self.totals.get(category, 0.0) + seconds

    def advance_to(self, timestamp: float, category: str = CAT_ASYNC_WAIT) -> float:
        """Block the host until ``timestamp`` (no-op if already past).
        Returns the waited duration."""
        wait = max(0.0, timestamp - self.now)
        if wait:
            self.spend(category, wait)
        return wait

    def count(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def total(self) -> float:
        return self.now

    def breakdown(self, categories: Optional[Tuple[str, ...]] = None) -> Dict[str, float]:
        cats = categories or ALL_CATEGORIES
        return {cat: self.totals.get(cat, 0.0) for cat in cats}

    def normalized_breakdown(self, baseline: float) -> Dict[str, float]:
        """Each category divided by a baseline time (Fig. 3 uses the
        sequential CPU execution time)."""
        if baseline <= 0:
            raise ValueError("baseline must be positive")
        return {cat: val / baseline for cat, val in self.breakdown().items()}

    def reset(self) -> None:
        self.now = 0.0
        self.totals = {cat: 0.0 for cat in ALL_CATEGORIES}
        self.counters.clear()
        self.timeline.clear()

    def __repr__(self):
        busy = {k: round(v, 6) for k, v in self.totals.items() if v}
        return f"Profiler(now={self.now:.6f}, {busy})"
