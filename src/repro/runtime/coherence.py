"""Runtime coherence tracking (§III-B).

Each variable of interest carries one of three states per device —
``notstale`` / ``maystale`` / ``stale`` — tracked at whole-array granularity.
The tracker implements the paper's check calls:

* ``check_read(v, dev)``  — stale ⇒ **missing transfer** error; maystale ⇒
  **may-missing** warning.
* ``check_write(v, dev, full)`` — applies the write transition: the local
  copy becomes notstale on a full overwrite (a stale copy partially written
  becomes maystale, with a **may-missing** warning, since unwritten elements
  may later be read); the remote copy becomes stale.
* ``reset_status(v, dev, status)`` — compiler-directed override used for
  may-dead (→ maystale) and must-dead (→ notstale) remote copies, for
  deallocation (→ stale) and for reduction kernels whose final value only
  the CPU holds (GPU copy → stale).
* ``on_transfer(v, src, dst)`` — stale source ⇒ **incorrect transfer**;
  maystale source ⇒ **may-incorrect**; notstale destination ⇒ **redundant**;
  maystale destination ⇒ **may-redundant**; then the destination inherits
  the source's state (``set_status``).

Findings carry a site label and the enclosing-loop iteration context so the
report reads like the paper's Listing 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import RuntimeFault

NOTSTALE = "notstale"
MAYSTALE = "maystale"
STALE = "stale"
_STATES = (NOTSTALE, MAYSTALE, STALE)

CPU = "cpu"
GPU = "gpu"

# Finding kinds.
MISSING = "missing"
MAY_MISSING = "may-missing"
INCORRECT = "incorrect"
MAY_INCORRECT = "may-incorrect"
REDUNDANT = "redundant"
MAY_REDUNDANT = "may-redundant"

ERROR_KINDS = frozenset({MISSING, INCORRECT})
WARNING_KINDS = frozenset({MAY_MISSING, MAY_INCORRECT, REDUNDANT, MAY_REDUNDANT})


@dataclass(frozen=True)
class Finding:
    """One detected coherence issue."""

    kind: str
    var: str
    site: str
    context: Tuple[Tuple[str, int], ...] = ()  # ((loop_var, iteration), ...)

    @property
    def is_error(self) -> bool:
        return self.kind in (MISSING, INCORRECT)

    def message(self) -> str:
        ctx = ", ".join(f"enclosing loop {v} index = {i}" for v, i in self.context)
        ctx = f" ({ctx})" if ctx else ""
        templates = {
            MISSING: "access of stale '{v}' at {s}{c}: missing memory transfer",
            MAY_MISSING: "access of may-stale '{v}' at {s}{c}: transfer may be missing",
            INCORRECT: "copying stale '{v}' at {s}{c} is incorrect",
            MAY_INCORRECT: "copying may-stale '{v}' at {s}{c} may be incorrect",
            REDUNDANT: "copying '{v}' at {s}{c} is redundant",
            MAY_REDUNDANT: "copying '{v}' at {s}{c} may be redundant",
        }
        return templates[self.kind].format(v=self.var, s=self.site, c=ctx)


@dataclass
class _VarState:
    cpu: str = NOTSTALE
    gpu: str = NOTSTALE

    def get(self, side: str) -> str:
        return self.cpu if side == CPU else self.gpu

    def set(self, side: str, status: str) -> None:
        if side == CPU:
            self.cpu = status
        else:
            self.gpu = status


def _other(side: str) -> str:
    return GPU if side == CPU else CPU


class CoherenceTracker:
    """State machine + findings log; enabled only during verification runs."""

    def __init__(self):
        self._states: Dict[str, _VarState] = {}
        self.findings: List[Finding] = []
        self.check_calls = 0
        # Context stack: the interpreter pushes (loop_var, iteration).
        self._context: List[Tuple[str, int]] = []

    # -- registration / context --------------------------------------------
    def register(self, var: str) -> None:
        self._states.setdefault(var, _VarState())

    def tracked(self, var: str) -> bool:
        return var in self._states

    def state(self, var: str, side: str) -> str:
        return self._require(var).get(side)

    def push_context(self, loop_var: str, iteration: int) -> None:
        self._context.append((loop_var, iteration))

    def set_context_iteration(self, iteration: int) -> None:
        loop_var, _ = self._context[-1]
        self._context[-1] = (loop_var, iteration)

    def pop_context(self) -> None:
        self._context.pop()

    # -- check calls ----------------------------------------------------------
    def check_read(self, var: str, side: str, site: str = "") -> None:
        self.check_calls += 1
        status = self._require(var).get(side)
        if status == STALE:
            self._report(MISSING, var, site)
        elif status == MAYSTALE:
            self._report(MAY_MISSING, var, site)

    def check_write(self, var: str, side: str, site: str = "", full: bool = False) -> None:
        self.check_calls += 1
        state = self._require(var)
        status = state.get(side)
        if full:
            state.set(side, NOTSTALE)
        elif status == STALE:
            # Partial write to stale data: unwritten elements may be read
            # later from the stale copy.
            self._report(MAY_MISSING, var, site)
            state.set(side, MAYSTALE)
        state.set(_other(side), STALE)

    def reset_status(self, var: str, side: str, status: str, site: str = "") -> None:
        if status not in _STATES:
            raise RuntimeFault(f"bad coherence status {status!r}")
        self._require(var).set(side, status)

    def on_transfer(self, var: str, src: str, dst: str, site: str = "") -> None:
        self.check_calls += 1
        state = self._require(var)
        src_status = state.get(src)
        dst_status = state.get(dst)
        if src_status == STALE:
            self._report(INCORRECT, var, site)
        elif src_status == MAYSTALE:
            self._report(MAY_INCORRECT, var, site)
        if dst_status == NOTSTALE:
            self._report(REDUNDANT, var, site)
        elif dst_status == MAYSTALE:
            self._report(MAY_REDUNDANT, var, site)
        # set_status: the destination now holds whatever the source held.
        state.set(dst, src_status)

    def on_free(self, var: str, site: str = "") -> None:
        state = self._require(var)
        state.set(GPU, STALE)

    def on_reduction_kernel(self, var: str, site: str = "") -> None:
        """Kernel reduction whose final value only the CPU receives."""
        self._require(var).set(GPU, STALE)

    # -- reporting -----------------------------------------------------------
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.is_error]

    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if not f.is_error]

    def findings_of(self, *kinds: str) -> List[Finding]:
        return [f for f in self.findings if f.kind in kinds]

    def _report(self, kind: str, var: str, site: str) -> None:
        self.findings.append(Finding(kind, var, site, tuple(self._context)))

    def _require(self, var: str) -> _VarState:
        state = self._states.get(var)
        if state is None:
            raise RuntimeFault(f"coherence check on untracked variable '{var}'")
        return state
