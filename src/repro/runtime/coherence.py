"""Runtime coherence tracking (§III-B).

Each variable of interest carries one of three states per device —
``notstale`` / ``maystale`` / ``stale`` — tracked at whole-array granularity.
The tracker implements the paper's check calls:

* ``check_read(v, dev)``  — stale ⇒ **missing transfer** error; maystale ⇒
  **may-missing** warning.
* ``check_write(v, dev, full)`` — applies the write transition: the local
  copy becomes notstale on a full overwrite (a stale copy partially written
  becomes maystale, with a **may-missing** warning, since unwritten elements
  may later be read); the remote copy becomes stale.
* ``reset_status(v, dev, status)`` — compiler-directed override used for
  may-dead (→ maystale) and must-dead (→ notstale) remote copies, for
  deallocation (→ stale) and for reduction kernels whose final value only
  the CPU holds (GPU copy → stale).
* ``on_transfer(v, src, dst)`` — stale source ⇒ **incorrect transfer**;
  maystale source ⇒ **may-incorrect**; notstale destination ⇒ **redundant**;
  maystale destination ⇒ **may-redundant**; then the destination inherits
  the source's state (``set_status``).

Findings carry a site label and the enclosing-loop iteration context so the
report reads like the paper's Listing 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import RuntimeFault
from repro.obs.tracer import NULL_TRACER
from repro.runtime.intervals import D2H, H2D, DirtyMap, IntervalSet

NOTSTALE = "notstale"
MAYSTALE = "maystale"
STALE = "stale"
_STATES = (NOTSTALE, MAYSTALE, STALE)

CPU = "cpu"
GPU = "gpu"

# Finding kinds.
MISSING = "missing"
MAY_MISSING = "may-missing"
INCORRECT = "incorrect"
MAY_INCORRECT = "may-incorrect"
REDUNDANT = "redundant"
MAY_REDUNDANT = "may-redundant"

# Cross-device finding kinds (multi-device runs; beyond the paper's
# host<->device kinds).  Reported by the DeviceSet's halo-exchange machinery:
#   p2p-missing    — a shard needed elements no replica held fresh (exchange
#                    invariant breach; error);
#   p2p-redundant  — D2D-delivered bytes were immediately clobbered by the
#                    following host->device transfer (wasted link traffic);
#   stale-replica  — a shard footprint could not be evaluated exactly, so
#                    the whole replica had to be revalidated.
P2P_MISSING = "p2p-missing"
P2P_REDUNDANT = "p2p-redundant"
STALE_REPLICA = "stale-replica"

ERROR_KINDS = frozenset({MISSING, INCORRECT, P2P_MISSING})
WARNING_KINDS = frozenset({MAY_MISSING, MAY_INCORRECT, REDUNDANT,
                           MAY_REDUNDANT, P2P_REDUNDANT, STALE_REPLICA})
# The paper's host<->device kinds, for consumers (the multi-device CI gate)
# that must compare finding sets across device counts.
HOST_DEVICE_KINDS = frozenset({MISSING, MAY_MISSING, INCORRECT,
                               MAY_INCORRECT, REDUNDANT, MAY_REDUNDANT})
CROSS_DEVICE_KINDS = frozenset({P2P_MISSING, P2P_REDUNDANT, STALE_REPLICA})


@dataclass(frozen=True)
class Finding:
    """One detected coherence issue."""

    kind: str
    var: str
    site: str
    context: Tuple[Tuple[str, int], ...] = ()  # ((loop_var, iteration), ...)
    # For redundant/may-redundant transfers: bytes the transfer moved beyond
    # what the dirty-interval tracking says was needed (0 when the variable's
    # geometry is unknown; purely informational — never changes the kind).
    nbytes_wasted: int = 0

    @property
    def is_error(self) -> bool:
        return self.kind in ERROR_KINDS

    def message(self) -> str:
        ctx = ", ".join(f"enclosing loop {v} index = {i}" for v, i in self.context)
        ctx = f" ({ctx})" if ctx else ""
        templates = {
            MISSING: "access of stale '{v}' at {s}{c}: missing memory transfer",
            MAY_MISSING: "access of may-stale '{v}' at {s}{c}: transfer may be missing",
            INCORRECT: "copying stale '{v}' at {s}{c} is incorrect",
            MAY_INCORRECT: "copying may-stale '{v}' at {s}{c} may be incorrect",
            REDUNDANT: "copying '{v}' at {s}{c} is redundant",
            MAY_REDUNDANT: "copying '{v}' at {s}{c} may be redundant",
            P2P_MISSING: "no fresh replica of '{v}' at {s}{c}: missing P2P transfer",
            P2P_REDUNDANT: "P2P copy of '{v}' at {s}{c} is redundant",
            STALE_REPLICA: "unevaluable footprint of '{v}' at {s}{c}: full replica revalidation",
        }
        text = templates[self.kind].format(v=self.var, s=self.site, c=ctx)
        if self.nbytes_wasted:
            text += f" (~{self.nbytes_wasted} bytes wasted)"
        return text


@dataclass
class _VarState:
    cpu: str = NOTSTALE
    gpu: str = NOTSTALE

    def get(self, side: str) -> str:
        return self.cpu if side == CPU else self.gpu

    def set(self, side: str, status: str) -> None:
        if side == CPU:
            self.cpu = status
        else:
            self.gpu = status


def _other(side: str) -> str:
    return GPU if side == CPU else CPU


class CoherenceTracker:
    """State machine + findings log; enabled only during verification runs.

    Alongside the whole-array state machine the tracker keeps a
    :class:`~repro.runtime.intervals.DirtyMap` of sub-array dirty intervals,
    fed by write footprints (``check_write``/kernel launch write sets, via
    the runtime) and drained by ``on_transfer``.  The interval bookkeeping
    never changes what the state machine reports — it sizes delta transfers
    and prices the bytes wasted by redundant ones."""

    def __init__(self):
        self._states: Dict[str, _VarState] = {}
        self.findings: List[Finding] = []
        self.check_calls = 0
        # Span tracer (repro.obs): state transitions and findings become
        # trace events.  AccRuntime swaps in the live tracer.
        self.tracer = NULL_TRACER
        # Context stack: the interpreter pushes (loop_var, iteration).
        self._context: List[Tuple[str, int]] = []
        # Shared with the runtime when this tracker is attached: the runtime
        # binds geometry and reports alloc/free/launch events, the tracker
        # folds in write checks and transfers.
        self.dirty = DirtyMap()

    # -- registration / context --------------------------------------------
    def register(self, var: str) -> None:
        self._states.setdefault(var, _VarState())

    def tracked(self, var: str) -> bool:
        return var in self._states

    def state(self, var: str, side: str) -> str:
        return self._require(var).get(side)

    def push_context(self, loop_var: str, iteration: int) -> None:
        self._context.append((loop_var, iteration))

    def set_context_iteration(self, iteration: int) -> None:
        loop_var, _ = self._context[-1]
        self._context[-1] = (loop_var, iteration)

    def pop_context(self) -> None:
        self._context.pop()

    # -- check calls ----------------------------------------------------------
    def check_read(self, var: str, side: str, site: str = "") -> None:
        self.check_calls += 1
        status = self._require(var).get(side)
        if status == STALE:
            self._report(MISSING, var, site)
        elif status == MAYSTALE:
            self._report(MAY_MISSING, var, site)

    def check_write(self, var: str, side: str, site: str = "", full: bool = False,
                    footprint: Optional[Iterable[Tuple[int, int]]] = None) -> None:
        """Write transition.  ``footprint`` (element intervals over the
        flattened array) feeds the dirty-interval map; a footprint covering
        the whole array is promoted to a full write — the own-side copy
        becomes notstale exactly as if ``full=True`` had been passed."""
        self.check_calls += 1
        state = self._require(var)
        status = state.get(side)
        footprint = list(footprint) if footprint is not None else None
        if footprint is not None and not full:
            geometry = self.dirty.geometry(var)
            if geometry is not None:
                covered = IntervalSet(footprint)
                full = covered.covers(0, geometry[0])
        if full:
            self._set_state(var, state, side, NOTSTALE, site)
        elif status == STALE:
            # Partial write to stale data: unwritten elements may be read
            # later from the stale copy.
            self._report(MAY_MISSING, var, site)
            self._set_state(var, state, side, MAYSTALE, site)
        self._set_state(var, state, _other(side), STALE, site)
        self.dirty.note_write(var, side, footprint=footprint, full=full)

    def reset_status(self, var: str, side: str, status: str, site: str = "") -> None:
        if status not in _STATES:
            raise RuntimeFault(f"bad coherence status {status!r}")
        self._set_state(var, self._require(var), side, status, site)

    def on_transfer(self, var: str, src: str, dst: str, site: str = "",
                    span: Optional[Tuple[int, int]] = None) -> None:
        """Transfer hook.  ``span=(lo, hi)`` is the transferred element range
        over the flattened array (None = whole array); it prices redundant
        findings in wasted bytes against the dirty-interval map and then
        drains the map — the state machine itself is untouched by intervals.
        """
        self.check_calls += 1
        state = self._require(var)
        src_status = state.get(src)
        dst_status = state.get(dst)
        direction = H2D if src == CPU else D2H
        wasted = self._wasted_bytes(var, direction, span)
        if src_status == STALE:
            self._report(INCORRECT, var, site)
        elif src_status == MAYSTALE:
            self._report(MAY_INCORRECT, var, site)
        if dst_status == NOTSTALE:
            self._report(REDUNDANT, var, site, nbytes_wasted=wasted)
        elif dst_status == MAYSTALE:
            self._report(MAY_REDUNDANT, var, site, nbytes_wasted=wasted)
        # set_status: the destination now holds whatever the source held.
        self._set_state(var, state, dst, src_status, site)
        self.dirty.note_transfer(var, direction, span=span)

    def _wasted_bytes(self, var: str, direction: str,
                      span: Optional[Tuple[int, int]]) -> int:
        """Bytes a transfer moves beyond what the interval tracking says the
        destination lacks (0 when geometry is unknown)."""
        geometry = self.dirty.geometry(var)
        if geometry is None:
            return 0
        size, itemsize = geometry
        lo, hi = span if span is not None else (0, size)
        needed = self.dirty.pending_bytes(var, direction, (lo, hi)) or 0
        return max(0, (hi - lo) * itemsize - needed)

    def on_free(self, var: str, site: str = "") -> None:
        state = self._require(var)
        self._set_state(var, state, GPU, STALE, site)
        self.dirty.note_free(var)

    def on_reduction_kernel(self, var: str, site: str = "") -> None:
        """Kernel reduction whose final value only the CPU receives."""
        self._set_state(var, self._require(var), GPU, STALE, site)

    # -- reporting -----------------------------------------------------------
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.is_error]

    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if not f.is_error]

    def findings_of(self, *kinds: str) -> List[Finding]:
        return [f for f in self.findings if f.kind in kinds]

    def _set_state(self, var: str, state: _VarState, side: str, status: str,
                   site: str = "") -> None:
        """Single mutation point for the state machine, so real transitions
        (old != new) surface as trace events exactly once."""
        old = state.get(side)
        if old != status:
            self.tracer.event("coherence.transition", var=var, side=side,
                              old=old, new=status, site=site)
        state.set(side, status)

    def _report(self, kind: str, var: str, site: str,
                nbytes_wasted: int = 0) -> None:
        self.findings.append(
            Finding(kind, var, site, tuple(self._context),
                    nbytes_wasted=nbytes_wasted)
        )
        self.tracer.event("coherence.finding", kind=kind, var=var, site=site,
                          nbytes_wasted=nbytes_wasted)

    def _require(self, var: str) -> _VarState:
        state = self._states.get(var)
        if state is None:
            raise RuntimeFault(f"coherence check on untracked variable '{var}'")
        return state

    # -- checkpoint support --------------------------------------------------
    # The shared DirtyMap is snapshotted by the runtime (it owns the other
    # reference); everything tracker-private is captured here.  Findings are
    # append-only, so replay regenerates the truncated tail identically.
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "states": {var: (st.cpu, st.gpu) for var, st in self._states.items()},
            "findings": list(self.findings),
            "check_calls": self.check_calls,
            "context": list(self._context),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._states = {var: _VarState(cpu=cpu, gpu=gpu)
                        for var, (cpu, gpu) in state["states"].items()}
        self.findings[:] = state["findings"]
        self.check_calls = state["check_calls"]
        self._context[:] = state["context"]
