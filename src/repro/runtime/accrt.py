"""OpenACC runtime API.

This is the layer generated programs execute against: structured data-region
entry/exit, ``update`` transfers, kernel launches (sync or async), and
``wait``.  Every operation is charged to the profiler in modeled time, and —
when a :class:`CoherenceTracker` is attached — every transfer and free runs
the §III-B coherence hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.device import Device
from repro.device import vectorize
from repro.device.deviceset import DeviceSet
from repro.device.engine import LaunchResult, LaunchSpec, Schedule
from repro.device.reduction import tree_reduce
from repro.device.transfer import coalesce_intervals, diff_intervals
from repro.errors import (
    RuntimeFault,
    ShardingConflictError,
    TransferCorruptionError,
    TransientFault,
)
from repro.obs.tracer import NULL_TRACER
from repro.runtime.chaos import FaultPlan
from repro.runtime.coherence import (
    CPU,
    GPU,
    P2P_REDUNDANT,
    STALE_REPLICA,
    CoherenceTracker,
    Finding,
)
from repro.runtime.intervals import D2H, H2D, DirtyMap, IntervalSet
from repro.runtime.partition import shard_footprints, shard_ranges
from repro.runtime.present import PresentTable
from repro.runtime.profiler import (
    CAT_ASYNC_WAIT,
    CAT_CHECK,
    CAT_CPU,
    CAT_KERNEL,
    CAT_MEM_ALLOC,
    CAT_MEM_FREE,
    CAT_P2P,
    CAT_RESULT_COMP,
    CAT_TRANSFER,
    CTR_ALLOC_RETRIED,
    CTR_BYTES_D2D,
    CTR_BYTES_D2H,
    CTR_BYTES_H2D,
    CTR_BYTES_SAVED,
    CTR_LAUNCH_INTERLEAVED,
    CTR_LAUNCH_RETRIED,
    CTR_LAUNCH_VECTORIZED,
    CTR_TRANSFER_D2D,
    CTR_TRANSFER_RETRIED,
    HIST_RETRY_BACKOFF_S,
    HIST_TRANSFER_BATCH_BYTES,
    Profiler,
)
from repro.runtime.queues import AsyncQueues


@dataclass(frozen=True)
class TransferRecord:
    """One successful dynamic transfer (the typed replacement for the old
    ``(var, site, direction)`` tuples in ``transfer_log``)."""

    var: str
    site: str
    direction: str      # "h2d" | "d2h" | "d2d"
    nbytes: int = 0     # bytes that actually crossed the link
    full_nbytes: int = 0  # bytes a whole-array/section transfer would move
    batches: int = 1    # coalesced interval batches (1 = classic copy)
    # Transfer route endpoints ("host", "dev0", "dev1", ...).  Default to
    # the single-device route implied by the direction, so records written
    # before multi-device existed (and every n=1 record) stay well-formed.
    src_device: str = ""
    dst_device: str = ""

    def __post_init__(self):
        if not self.src_device:
            object.__setattr__(
                self, "src_device", "host" if self.direction == H2D else "dev0")
        if not self.dst_device:
            object.__setattr__(
                self, "dst_device", "host" if self.direction == D2H else "dev0")

    @property
    def nbytes_saved(self) -> int:
        return max(0, self.full_nbytes - self.nbytes)

    @property
    def route(self) -> str:
        return f"{self.src_device}->{self.dst_device}"


@dataclass(frozen=True)
class _TransferPlan:
    """Delta-transfer decision for one copy: which element intervals to move
    (None = classic whole-array/section copy) and the byte accounting."""

    intervals: Optional[List[Tuple[int, int]]]
    nbytes: int
    full_nbytes: int
    batches: int
    span: Tuple[int, int]
    itemsize: int = 0   # element width; sizes per-batch histogram samples


class AccRuntime:
    """One runtime instance per program execution."""

    # Retry budget used when neither the constructor nor the context sets one.
    DEFAULT_MAX_RETRIES = 3

    def __init__(
        self,
        device: Optional[Device] = None,
        profiler: Optional[Profiler] = None,
        coherence: Optional[CoherenceTracker] = None,
        chaos: Optional[FaultPlan] = None,
        max_retries: Optional[int] = None,
        ctx=None,
    ):
        if device is None:
            self.devset = DeviceSet(config=getattr(ctx, "device_config", None))
        elif isinstance(device, DeviceSet):
            self.devset = device
        else:
            # An explicitly constructed Device keeps its exact single-device
            # behavior: the set degenerates to a one-member wrapper.
            self.devset = DeviceSet.wrap(device)
        self.device = self.devset.primary
        self.ndevices = self.devset.ndevices
        if self.ndevices > 1:
            cfg = self.device.config
            if chaos is not None:
                raise ShardingConflictError(
                    f"fault injection cannot combine with --devices "
                    f"{self.ndevices}: chaos draws are ordered against a "
                    "single device's operation stream (run with --devices 1)")
            if not cfg.vectorize:
                raise ShardingConflictError(
                    f"--no-vectorize cannot combine with --devices "
                    f"{self.ndevices}: sharding requires the static race-free "
                    "proof the vectorizer produces (run with --devices 1)")
            if cfg.schedule.kind == Schedule.RANDOM:
                raise ShardingConflictError(
                    f"the random schedule cannot combine with --devices "
                    f"{self.ndevices}: stochastic interleaving is defined "
                    "over one device's thread set (run with --devices 1)")
        self.profiler = profiler or Profiler()
        # The owning ToolchainContext, when the caller threads one through.
        # Chaos stays an explicit constructor argument — the context default
        # is applied by the layer that decides a run should see faults (the
        # experiment harness), never implicitly here.
        self.ctx = ctx
        # Observability: the context's tracer (NULL_TRACER when tracing is
        # off), mirrored into every collaborator that emits events.  The
        # profiler's metrics chain into the context aggregate, and the
        # modeled clock is wired so spans carry both time axes.  Only state
        # is *read* — a traced run stays bit-identical to an untraced one.
        self.tracer = getattr(ctx, "tracer", None) or NULL_TRACER
        if ctx is not None:
            self.profiler.metrics.parent = ctx.metrics
            ctx.last_runtime = self
        if self.tracer.enabled:
            profiler = self.profiler
            self.tracer.modeled_clock = lambda: profiler.now
        for dev in self.devset.devices:
            dev.tracer = self.tracer
        # Retry budget for operations that hit a fault marked transient
        # (TransientFault) or a detected transfer corruption.  Each retry
        # pays an exponential backoff on the simulated clock.  Both the
        # budget and the backoff base resolve explicit argument > context
        # knob > default, so recovery policy is tunable from the CLI
        # (--max-retries / --backoff-base) without code edits.
        if max_retries is None:
            max_retries = getattr(ctx, "max_retries", None)
        self.max_retries = (self.DEFAULT_MAX_RETRIES if max_retries is None
                            else max_retries)
        backoff_base = getattr(ctx, "backoff_base", None)
        self.backoff_base = (self.device.config.costs.retry_backoff_s
                             if backoff_base is None else backoff_base)
        self.chaos = chaos
        if chaos is not None:
            chaos.profiler = self.profiler
            chaos.tracer = self.tracer
            self.device.attach_chaos(chaos)
        self.queues = AsyncQueues(self.profiler, chaos=chaos)
        self.present = PresentTable()
        self.coherence = coherence
        # Phase sampler (repro.sampling.PhaseSampler) — attaches itself when
        # the run is sampled; None keeps launch/transfer paths hook-free.
        self.sampler = None
        # Checkpoint/rollback manager (repro.runtime.checkpoint) — attaches
        # itself when the run is checkpointed; None in normal operation.
        self.checkpointer = None
        if coherence is not None:
            coherence.tracer = self.tracer
        self.launch_log: List[LaunchResult] = []
        # One TransferRecord per successful dynamic transfer; the suggestion
        # engine aggregates these against the coherence findings.
        self.transfer_log: List[TransferRecord] = []
        # Dead-interval bookkeeping.  When a tracker is attached its map is
        # shared, so write checks (tracker) and alloc/launch/transfer events
        # (runtime) feed the same per-variable interval sets.
        self.dirty: DirtyMap = coherence.dirty if coherence is not None else DirtyMap()
        self.delta_transfers = bool(self.device.config.delta_transfers)
        # Footprints are worth collecting when delta transfers consume them
        # or a coherence tracker prices redundant transfers in bytes.
        self._track_writes = self.delta_transfers or coherence is not None
        if self._track_writes:
            self.device.engine.collect_write_sets = True
        if self.ndevices > 1:
            # Sharded launches always want byte-exact write footprints: they
            # drive replica invalidation, and with pre-validated shards the
            # per-shard diffs merge to exactly the single-device footprint.
            for dev in self.devset.devices:
                dev.engine.collect_write_sets = True
        # Dead-target pins to apply right after the next allocation of a
        # variable (compiler-directed; see checkinsert).
        self._pending_pins: Dict[str, tuple] = {}

    # ------------------------------------------------------------------
    # Data regions
    # ------------------------------------------------------------------
    def data_enter(self, var: str, host: np.ndarray, copyin: bool, site: str = "",
                   queue: Optional[int] = None) -> bool:
        """Enter a data clause for one variable.

        Present-or semantics: if already present, just retain.  Returns True
        when a new device buffer was created."""
        if self.present.is_present(var):
            entry = self.present.retain(var)
            entry.copyout_on_exit.append(False)
            return False
        with self.tracer.span("mem.alloc", category="runtime.mem", var=var,
                              nbytes=host.size * host.itemsize, site=site):
            self.profiler.spend(CAT_MEM_ALLOC, self.device.config.costs.alloc_latency_s)
            handle = self._retrying(
                lambda: self.device.alloc(var, host.shape, host.dtype),
                CAT_MEM_ALLOC, CTR_ALLOC_RETRIED,
            )
        handles = None
        if self.ndevices > 1:
            # Peer replicas allocate in parallel with the gateway buffer
            # (independent devices), so they add no modeled time.
            handles = [handle] + self.devset.alloc_peers(
                var, host.shape, host.dtype)
        entry = self.present.add(var, handle, handles=handles)
        entry.copyout_on_exit.append(False)
        self.dirty.bind(var, host.size, host.itemsize)
        self.dirty.note_alloc(var)
        if self.coherence is not None and self.coherence.tracked(var):
            # A fresh device buffer holds no valid data: the GPU copy is
            # stale until the first transfer or device write (otherwise the
            # region's own copyin would be flagged redundant).
            from repro.runtime.coherence import STALE

            self.coherence.reset_status(var, GPU, STALE, site=site)
            pin = self._pending_pins.pop(var, None)
            if pin is not None:
                side, status, pin_site = pin
                self.coherence.reset_status(var, side, status, site=pin_site)
        if copyin:
            self.copy_to_device(var, host, site=site or f"enter({var})", queue=queue)
        return True

    def data_exit(self, var: str, host: np.ndarray, copyout: bool, site: str = "",
                  queue: Optional[int] = None) -> bool:
        """Exit a data clause.  Copyout (if requested) happens before a
        potential free.  Returns True when the device buffer was freed."""
        entry = self.present.lookup(var)
        entry.copyout_on_exit.pop()
        if copyout:
            self.copy_to_host(var, host, site=site or f"exit({var})", queue=queue)
        released = self.present.release(var)
        if released is not None:
            with self.tracer.span("mem.free", category="runtime.mem",
                                  var=var, site=site):
                self.profiler.spend(CAT_MEM_FREE, self.device.config.costs.free_latency_s)
                self.device.free(released.handle)
                if self.ndevices > 1 and released.handles is not None:
                    self.devset.free_peers(var, released.handles[1:])
            if self.coherence is not None and self.coherence.tracked(var):
                self.coherence.on_free(var, site=site)  # also clears intervals
            else:
                self.dirty.note_free(var)
            return True
        return False

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def copy_to_device(self, var: str, host: np.ndarray, queue: Optional[int] = None,
                       site: str = "", section=None) -> float:
        handle = self.present.handle_of(var)
        gathered = self._gather_to_primary(var, section, H2D, site)
        plan = self._plan_transfer(var, handle, host, section, H2D)
        if gathered is not None:
            # Gathered elements the h2d immediately overwrites were moved
            # for nothing: the classic redundant-transfer finding, lifted to
            # the P2P fabric.
            overlap = gathered.intersection(
                IntervalSet(plan.intervals) if plan.intervals is not None
                else IntervalSet([plan.span]))
            if overlap:
                self._cross_finding(P2P_REDUNDANT, var, site,
                                    nbytes=overlap.covered * plan.itemsize)
        with self.tracer.span("transfer.h2d", category="runtime.transfer",
                              var=var, site=site, bytes=plan.nbytes,
                              full_bytes=plan.full_nbytes,
                              saved=max(0, plan.full_nbytes - plan.nbytes),
                              batches=plan.batches):
            seconds = self._hardened_transfer(
                lambda: self.device.memcpy_h2d(handle, host, async_queue=queue,
                                               section=section,
                                               intervals=plan.intervals),
                var, handle, host, section, site,
            )
            # Coherence hooks and the transfer log record only *successful*
            # transfers: a copy that faulted away must never mark its
            # destination fresh (notstale) or count as a dynamic transfer.
            self._transfer_done(var, CPU, GPU, site, section, plan, "h2d")
            self._charge_transfer(seconds, queue)
        return seconds

    def copy_to_host(self, var: str, host: np.ndarray, queue: Optional[int] = None,
                     site: str = "", section=None) -> float:
        handle = self.present.handle_of(var)
        self._gather_to_primary(var, section, D2H, site)
        plan = self._plan_transfer(var, handle, host, section, D2H)
        with self.tracer.span("transfer.d2h", category="runtime.transfer",
                              var=var, site=site, bytes=plan.nbytes,
                              full_bytes=plan.full_nbytes,
                              saved=max(0, plan.full_nbytes - plan.nbytes),
                              batches=plan.batches):
            seconds = self._hardened_transfer(
                lambda: self.device.memcpy_d2h(host, handle, async_queue=queue,
                                               section=section,
                                               intervals=plan.intervals),
                var, handle, host, section, site,
            )
            self._transfer_done(var, GPU, CPU, site, section, plan, "d2h")
            self._charge_transfer(seconds, queue)
        return seconds

    def _plan_transfer(self, var: str, handle: int, host: np.ndarray,
                       section, direction: str) -> _TransferPlan:
        """Decide what a transfer moves.

        Whole-array mode (the default) always returns the classic plan — a
        single batch covering the full array/section, priced exactly as
        before.  Delta mode moves the union of the tracked dirty intervals
        and a bitwise host/device diff: the diff is the soundness net (a
        write the tracking missed still differs, so it still transfers),
        and full-dirty variables degenerate to the classic whole plan, so
        values are bit-identical to whole-array mode in every case."""
        dev = self.device.array(handle)
        size, itemsize = dev.size, dev.itemsize
        if section is None:
            lo, hi = 0, size
        else:
            start, length = section
            lo, hi = start, start + length
        full_nbytes = (hi - lo) * itemsize
        whole = _TransferPlan(None, full_nbytes, full_nbytes, 1, (lo, hi), itemsize)
        self.dirty.bind(var, size, itemsize)
        if not self.delta_transfers:
            return whole
        pending = self.dirty.pending(var, direction)
        if pending is None:
            return whole
        need = pending.intersect(lo, hi)
        if need.covers(lo, hi):
            return whole  # full-dirty: degenerate whole-array fast path
        window = slice(lo, hi)
        host_flat = host.reshape(-1)[window]
        dev_flat = dev.reshape(-1)[window]
        for a, b in diff_intervals(host_flat, dev_flat):
            need.add(lo + a, lo + b)
        if need.covers(lo, hi):
            return whole
        gap_elems = max(0, self.device.config.merge_gap_bytes() // itemsize)
        batches = coalesce_intervals(need.intervals(), gap_elems)
        if batches and batches[0] == (lo, hi):
            return whole
        nbytes = sum(stop - start for start, stop in batches) * itemsize
        return _TransferPlan(batches, nbytes, full_nbytes, len(batches), (lo, hi),
                             itemsize)

    def _gather_to_primary(self, var: str, section, direction: str,
                           site: str) -> Optional[IntervalSet]:
        """Multi-device only: before any host<->device transfer, pull every
        element the gateway (device 0) holds stale — within the transfer
        span — from peer replicas, so host traffic sees exactly the logical
        single-device values and the delta planner's bitwise diff matches
        the n=1 diff byte-for-byte.  Two sound skips keep D2D traffic
        minimal: a whole/sectioned h2d overwrites its span anyway, and in
        delta mode the intervals already pending h2d are transferred (and
        overwritten) regardless of what the gateway holds.  Returns the
        gathered interval set (None when nothing moved)."""
        if self.ndevices <= 1:
            return None
        entry = self.present.lookup(var)
        if entry.handles is None:
            return None
        size = self.device.array(entry.handle).size
        if section is None:
            lo, hi = 0, size
        else:
            start, length = section
            lo, hi = start, start + length
        want = self.devset.replicas.stale(var, 0).intersect(lo, hi)
        if direction == H2D:
            if not self.delta_transfers:
                return None  # whole/sectioned copy overwrites the span
            pending = self.dirty.pending(var, H2D)
            if pending is None:
                return None  # unbound: the plan degenerates to whole-copy
            want = want.difference(pending)
        if not want:
            return None
        copies = self.devset.pull(var, 0, want, entry.handles, site=site)
        self._charge_d2d(copies, site)
        return want

    def _charge_d2d(self, copies, site: str) -> None:
        """Charge executed D2D copies: modeled P2P link time, the d2d byte
        and copy counters, a transfer.d2d span per copy (tagged with the
        destination device for per-device trace lanes), and a route-stamped
        entry in the transfer log."""
        for copy in copies:
            seconds = self.devset.p2p_time(copy)
            with self.tracer.span("transfer.d2d", category="runtime.transfer",
                                  var=copy.var, site=site, bytes=copy.nbytes,
                                  batches=len(copy.intervals), src=copy.src,
                                  dst=copy.dst, device=copy.dst):
                self.profiler.spend(CAT_P2P, seconds)
            self.profiler.count(CTR_BYTES_D2D, copy.nbytes)
            self.profiler.count(CTR_TRANSFER_D2D)
            self.transfer_log.append(TransferRecord(
                copy.var, site, "d2d", nbytes=copy.nbytes,
                full_nbytes=copy.nbytes, batches=len(copy.intervals),
                src_device=f"dev{copy.src}", dst_device=f"dev{copy.dst}"))

    def _cross_finding(self, kind: str, var: str, site: str,
                       nbytes: int = 0) -> None:
        """Record one cross-device coherence finding (p2p-missing /
        p2p-redundant / stale-replica), mirrored into the host<->device
        tracker's finding list when one is attached so memcheck surfaces
        it alongside the paper's kinds."""
        context = (tuple(self.coherence._context)
                   if self.coherence is not None else ())
        finding = Finding(kind, var, site, context=context,
                          nbytes_wasted=nbytes)
        self.devset.findings.append(finding)
        if self.coherence is not None:
            self.coherence.findings.append(finding)
        self.tracer.event("coherence.finding", kind=kind, var=var, site=site,
                          nbytes_wasted=nbytes)

    def _transfer_done(self, var: str, src: str, dst: str, site: str,
                       section, plan: _TransferPlan, direction: str) -> None:
        """Post-success bookkeeping: coherence hooks, dirty-interval drain,
        the transfer log, and the profiler's byte counters."""
        handled = self._coherence_transfer(var, src, dst, site, section, plan.span)
        if not handled:
            self.dirty.note_transfer(var, direction, span=plan.span)
        self.transfer_log.append(TransferRecord(
            var, site, direction, nbytes=plan.nbytes,
            full_nbytes=plan.full_nbytes, batches=plan.batches,
        ))
        self.profiler.count(
            CTR_BYTES_H2D if direction == "h2d" else CTR_BYTES_D2H, plan.nbytes
        )
        if self.sampler is not None:
            self.sampler.on_transfer(var, site, direction, plan.nbytes)
        saved = plan.full_nbytes - plan.nbytes
        if saved > 0:
            self.profiler.count(CTR_BYTES_SAVED, saved)
        if plan.intervals is None:
            self.profiler.observe(HIST_TRANSFER_BATCH_BYTES, plan.nbytes)
        else:
            for start, stop in plan.intervals:
                self.profiler.observe(HIST_TRANSFER_BATCH_BYTES,
                                      (stop - start) * plan.itemsize)
        if self.ndevices > 1 and direction == H2D:
            # The gateway now matches the host (= the logical value) over
            # the span; peers are stale wherever the copy changed bytes.
            span_ivs = IntervalSet([plan.span])
            self.devset.replicas.mark_fresh(var, 0, span_ivs)
            changed = (IntervalSet(plan.intervals)
                       if plan.intervals is not None else span_ivs)
            self.devset.replicas.mark_stale_others(var, 0, changed)

    def _hardened_transfer(self, op, var: str, handle: int, host: np.ndarray,
                           section, site: str) -> float:
        """Run one memcpy with retry-with-backoff.

        Transient faults abort the copy before data moves; corruption and
        truncation are caught by comparing the destination against the
        source after the copy (chaos runs only — the comparison is free in
        modeled time, and a re-copy repairs the payload exactly).  Retries
        beyond ``max_retries`` surface the typed error."""
        attempt = 0
        while True:
            try:
                seconds = op()
                if self.chaos is not None and not self._transfer_intact(
                        handle, host, section):
                    raise TransferCorruptionError(
                        f"transfer of '{var}' at {site or '?'} corrupted in flight"
                    )
                return seconds
            except (TransientFault, TransferCorruptionError) as err:
                if attempt >= self.max_retries:
                    raise
                backoff = self.backoff_time(attempt)
                self.profiler.spend(CAT_TRANSFER, backoff)
                self.profiler.count(CTR_TRANSFER_RETRIED)
                self.profiler.observe(HIST_RETRY_BACKOFF_S, backoff)
                self.tracer.event("retry", op="transfer", attempt=attempt,
                                  error=type(err).__name__,
                                  backoff_s=backoff)
                attempt += 1

    def _transfer_intact(self, handle: int, host: np.ndarray, section) -> bool:
        """Post-transfer verification: destination equals source over the
        transferred range (NaN-tolerant for float payloads — a NaN is a NaN
        whatever its bit pattern)."""
        dev = self.device.array(handle)
        if section is None:
            a, b = dev, host
        else:
            start, length = section
            sl = slice(start, start + length)
            a, b = dev.reshape(-1)[sl], host.reshape(-1)[sl]
        equal_nan = np.asarray(a).dtype.kind == "f"
        return np.array_equal(a, b, equal_nan=equal_nan)

    def _retrying(self, op, category: str, counter: str):
        """Generic retry-with-backoff for operations whose faults are marked
        transient (device allocation, kernel launch)."""
        attempt = 0
        while True:
            try:
                return op()
            except TransientFault as err:
                if attempt >= self.max_retries:
                    raise
                backoff = self.backoff_time(attempt)
                self.profiler.spend(category, backoff)
                self.profiler.count(counter)
                self.profiler.observe(HIST_RETRY_BACKOFF_S, backoff)
                self.tracer.event("retry", op=counter.split(".", 1)[0],
                                  attempt=attempt, error=type(err).__name__,
                                  backoff_s=backoff)
                attempt += 1

    def _coherence_transfer(self, var: str, src: str, dst: str, site: str,
                            section, span: Tuple[int, int]) -> bool:
        """Run the §III-B transfer hooks.  Whole-array coherence: a
        *sectioned* transfer refreshes only part of the destination, so a
        previously stale destination becomes may-stale instead of adopting
        the source's state outright.  Returns True when a tracker handled
        the transfer (it then also drained the dirty intervals)."""
        if self.coherence is None or not self.coherence.tracked(var):
            return False
        from repro.runtime.coherence import MAYSTALE, STALE

        was_stale = self.coherence.state(var, dst) == STALE
        self.coherence.on_transfer(var, src, dst, site=site, span=span)
        if section is not None and was_stale:
            self.coherence.reset_status(var, dst, MAYSTALE, site=site)
        return True

    def update_host(self, var: str, host: np.ndarray, queue: Optional[int] = None,
                    site: str = "", section=None) -> float:
        if not self.present.is_present(var):
            raise RuntimeFault(f"update host({var}): variable not present on device")
        return self.copy_to_host(var, host, queue=queue, site=site, section=section)

    def update_device(self, var: str, host: np.ndarray, queue: Optional[int] = None,
                      site: str = "", section=None) -> float:
        if not self.present.is_present(var):
            raise RuntimeFault(f"update device({var}): variable not present on device")
        return self.copy_to_device(var, host, queue=queue, site=site, section=section)

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def device_array(self, var: str) -> np.ndarray:
        return self.device.array(self.present.handle_of(var))

    def launch(self, spec: LaunchSpec, queue: Optional[int] = None,
               schedule: Optional[Schedule] = None,
               backend: Optional[str] = None) -> LaunchResult:
        with self.tracer.span("kernel.launch", category="runtime.kernel",
                              kernel=spec.name) as sp:
            if self.ndevices > 1:
                result, seconds = self._launch_sharded(spec, schedule, backend)
            else:
                result = self._retrying(
                    lambda: self.device.launch(spec, schedule=schedule,
                                               async_queue=queue,
                                               backend=backend),
                    CAT_KERNEL, CTR_LAUNCH_RETRIED,
                )
                seconds = self.device.config.costs.kernel_time(
                    result.total_steps)
                self.devset.busy_s[0] += seconds
            sp.set_attr("backend", result.backend)
            sp.set_attr("steps", result.total_steps)
            if queue is not None:
                sp.set_attr("queue", queue)
            self.profiler.count(
                CTR_LAUNCH_VECTORIZED if result.backend == "vectorized"
                else CTR_LAUNCH_INTERLEAVED
            )
            if queue is None:
                self.profiler.spend(CAT_KERNEL, seconds)
            else:
                self.queues.issue(queue, seconds, category=CAT_ASYNC_WAIT)
            self.launch_log.append(result)
            if self._track_writes:
                self._note_launch_writes(spec, result)
            if self.sampler is not None:
                self.sampler.on_launch(spec, result)
        return result

    def _launch_sharded(self, spec: LaunchSpec, schedule: Optional[Schedule],
                        backend: Optional[str]) -> Tuple[LaunchResult, float]:
        """Split one statically race-free launch across the device set.

        Pipeline: prove shardability (or raise the typed conflict), split the
        lane space into contiguous per-device ranges, predict each shard's
        read+planned-write footprint from the vector plan's retained
        subscript ASTs, pull exactly the stale part of each footprint over
        the P2P fabric (minimal halo exchange), run every shard on its own
        device, then merge — summed steps, unioned write footprints, and
        reductions rebuilt from the concatenated per-lane partials so the
        combine tree is bit-identical to the single-device one.  Modeled
        kernel time is the max over shards (they run concurrently)."""
        ndev = self.ndevices
        schedule = schedule or self.device.config.schedule
        if backend == "interleaved":
            raise ShardingConflictError(
                f"kernel {spec.name!r}: the forced interleaved backend "
                f"cannot shard across {ndev} devices (run with --devices 1)")
        if schedule.kind == Schedule.RANDOM:
            raise ShardingConflictError(
                f"kernel {spec.name!r}: the random schedule cannot shard "
                f"across {ndev} devices (run with --devices 1)")
        plan = vectorize.plan_for(spec)
        if plan is None:
            reason = vectorize.reject_reason(spec) or "not statically race-free"
            raise ShardingConflictError(
                f"kernel {spec.name!r} cannot shard across {ndev} devices: "
                f"{reason} (run with --devices 1)")
        # Kernel-local array name -> (canonical name, per-device handles).
        handles: Dict[str, Tuple[str, List[int]]] = {}
        for kname in spec.arrays:
            cname = spec.array_names.get(kname, kname)
            if not self.present.is_present(cname):
                raise ShardingConflictError(
                    f"kernel {spec.name!r}: array '{cname}' has no "
                    "present-table entry, so no peer replicas exist to "
                    "shard over (run with --devices 1)")
            entry = self.present.lookup(cname)
            if entry.handles is None:
                raise ShardingConflictError(
                    f"kernel {spec.name!r}: array '{cname}' was allocated "
                    "before multi-device mode; no peer replicas exist")
            handles[kname] = (cname, entry.handles)

        shards = shard_ranges(spec.nthreads, ndev)
        foots = shard_footprints(spec, plan, shards)

        # One stale-replica warning per (launch, array) whose footprint the
        # probe could not evaluate — those arrays fall back to whole-replica
        # revalidation, which is correct but not minimal.
        inexact = sorted({kname for per in foots for kname, fp in per.items()
                          if not fp.exact})
        for kname in inexact:
            self._cross_finding(STALE_REPLICA, handles[kname][0], spec.name)

        # Pre-launch halo exchange: each shard's device becomes fresh over
        # everything the shard may read — including its planned writes, so
        # the post-launch scratch diff equals the single-device diff.
        for d, per_array in enumerate(foots):
            for kname, fp in per_array.items():
                cname, hlist = handles[kname]
                copies = self.devset.pull(cname, d, fp.needed, hlist,
                                          site=spec.name)
                self._charge_d2d(copies, spec.name)

        results: List[LaunchResult] = []
        partials_list: List[Dict[str, List]] = []
        for d, (lo, hi) in enumerate(shards):
            arrays_d = (spec.arrays if d == 0 else
                        {kname: self.devset.devices[d].array(hlist[d])
                         for kname, (_, hlist) in handles.items()})
            sub = LaunchSpec(
                spec.name, spec.instrs, spec.index_vars, spec.threads[lo:hi],
                arrays_d, scalars=spec.scalars,
                private_decls=spec.private_decls,
                firstprivate=spec.firstprivate,
                reductions=spec.reductions, array_names=spec.array_names,
            )
            partials: Dict[str, List] = {}
            with self.tracer.span("kernel.shard", category="runtime.kernel",
                                  kernel=spec.name, device=d,
                                  lanes=hi - lo) as shsp:
                res = self.devset.devices[d].launch(sub, schedule=schedule,
                                                    partials_out=partials)
                shsp.set_attr("backend", res.backend)
                shsp.set_attr("steps", res.total_steps)
            results.append(res)
            partials_list.append(partials)

        # Post-launch replica invalidation: whatever shard d wrote is stale
        # on every other replica.  Byte-exact footprints when the shard's
        # vectorized diff is available; the probe's planned write set (or
        # the whole array) otherwise.
        for d, res in enumerate(results):
            for kname in plan.written_arrays:
                cname = handles[kname][0]
                if res.write_sets is not None:
                    wivs = res.write_sets.get(kname) or []
                else:
                    fp = foots[d].get(kname)
                    if fp is not None and fp.planned is not None:
                        wivs = fp.planned.intervals()
                    else:
                        wivs = [(0, int(spec.arrays[kname].size))]
                if wivs:
                    self.devset.replicas.mark_stale_others(cname, d, wivs)

        # Merge into one LaunchResult indistinguishable from n=1.
        total = sum(r.total_steps for r in results)
        max_steps = max((r.max_thread_steps for r in results), default=0)
        merged_writes: Optional[Dict[str, List[Tuple[int, int]]]] = {}
        if any(r.write_sets is None for r in results):
            merged_writes = None
        else:
            for kname in plan.written_arrays:
                acc = IntervalSet()
                for r in results:
                    for a, b in (r.write_sets.get(kname) or []):
                        acc.add(a, b)
                merged_writes[kname] = acc.intervals()
        reductions: Dict[str, object] = {}
        for name, op, dtype in spec.reductions:
            lane_partials: List = []
            for partials in partials_list:
                lane_partials.extend(partials.get(name, []))
            reductions[name] = tree_reduce(op, lane_partials, dtype)
        backend_kind = ("vectorized"
                        if all(r.backend == "vectorized" for r in results)
                        else "interleaved")
        result = LaunchResult(spec.name, total, max_steps, reductions, {},
                              backend=backend_kind, write_sets=merged_writes)
        shard_seconds = [self.device.config.costs.kernel_time(r.total_steps)
                         for r in results]
        for dev, busy in enumerate(shard_seconds):
            self.devset.busy_s[dev] += busy
        return result, max(shard_seconds)

    def _note_launch_writes(self, spec: LaunchSpec, result: LaunchResult) -> None:
        """Feed the launch's write footprints into the dirty map.  The
        interleaved stepper reports no footprints (write_sets=None): every
        array it could have touched is treated as an unknown partial write —
        the conservative direction for both transfer sizing and coherence
        byte estimates."""
        write_sets = result.write_sets
        for kname, arr in spec.arrays.items():
            cname = spec.array_names.get(kname, kname)
            self.dirty.bind(cname, arr.size, arr.itemsize)
            if write_sets is None:
                self.dirty.note_write(cname, GPU)
            else:
                footprint = write_sets.get(kname)
                if footprint:
                    self.dirty.note_write(cname, GPU, footprint=footprint)

    def wait(self, queue: Optional[int] = None) -> float:
        if queue is None:
            return self.queues.wait_all()
        return self.queues.wait(queue)

    # ------------------------------------------------------------------
    # Instrumentation hooks (inserted by the check-insertion pass)
    # ------------------------------------------------------------------
    def check_read(self, var: str, side: str, site: str = "") -> None:
        self._charge_check()
        if self.coherence is not None and self.coherence.tracked(var):
            self.coherence.check_read(var, side, site=site)

    def check_write(self, var: str, side: str, site: str = "", full: bool = False,
                    footprint=None) -> None:
        self._charge_check()
        if self.coherence is not None and self.coherence.tracked(var):
            self.coherence.check_write(var, side, site=site, full=full,
                                       footprint=footprint)
        elif full or footprint is not None:
            self.dirty.note_write(var, side, footprint=footprint, full=full)

    def reset_status(self, var: str, side: str, status: str, site: str = "") -> None:
        self._charge_check()
        if self.coherence is not None and self.coherence.tracked(var):
            self.coherence.reset_status(var, side, status, site=site)

    def note_reduction(self, var: str, site: str = "") -> None:
        if self.coherence is not None and self.coherence.tracked(var):
            self.coherence.on_reduction_kernel(var, site=site)

    def pin_after_alloc(self, var: str, side: str, status: str, site: str = "") -> None:
        """Compiler-directed dead-target marking for a transfer whose
        destination buffer may not exist yet.  Applied immediately when the
        variable is device-resident; otherwise queued until its allocation
        (which would otherwise clobber the pin with the fresh-buffer stale
        state)."""
        self._charge_check()
        if self.coherence is None or not self.coherence.tracked(var):
            return
        if self.present.is_present(var):
            self.coherence.reset_status(var, side, status, site=site)
        else:
            self._pending_pins[var] = (side, status, site)

    # ------------------------------------------------------------------
    # Host-side accounting used by the interpreter / verification harness
    # ------------------------------------------------------------------
    def charge_cpu(self, steps: int) -> None:
        self.profiler.spend(CAT_CPU, self.device.config.costs.cpu_time(steps))

    def charge_compare(self, elements: int) -> None:
        self.profiler.spend(CAT_RESULT_COMP, self.device.config.costs.compare_time(elements))

    def _charge_transfer(self, seconds: float, queue: Optional[int]) -> None:
        if queue is None:
            self.profiler.spend(CAT_TRANSFER, seconds)
        else:
            self.queues.issue(queue, seconds, category=CAT_TRANSFER)

    def _charge_check(self) -> None:
        self.profiler.spend(CAT_CHECK, self.device.config.costs.check_call_s)

    def backoff_time(self, attempt: int) -> float:
        """Modeled backoff before retry ``attempt`` (doubles per attempt,
        from the context-tunable base)."""
        return self.backoff_base * (2 ** attempt)

    # ------------------------------------------------------------------
    # Checkpoint support (repro.runtime.checkpoint)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Deep copy of every stateful runtime layer.  The dirty map is
        captured here even when a coherence tracker shares it (one capture,
        restored in place, keeps both references coherent); the chaos entry
        is captured always but applied only on disk resume (see
        :meth:`FaultPlan.snapshot_state` for why rollback skips it)."""
        state = {
            "device": self.device.snapshot_state(),
            "present": self.present.snapshot_state(),
            "queues": self.queues.snapshot_state(),
            "profiler": self.profiler.snapshot_state(),
            "dirty": self.dirty.snapshot_state(),
            "coherence": (self.coherence.snapshot_state()
                          if self.coherence is not None else None),
            "chaos": (self.chaos.snapshot_state()
                      if self.chaos is not None else None),
            "launch_log": list(self.launch_log),
            "transfer_log": list(self.transfer_log),
            "pending_pins": dict(self._pending_pins),
        }
        if self.ndevices > 1:
            # Peer replicas + P2P accounting ride in their own key so the
            # n=1 snapshot shape stays exactly the historical one.
            state["deviceset"] = self.devset.snapshot_state()
        return state

    def restore_state(self, state: Dict[str, object],
                      restore_chaos: bool = False) -> None:
        from repro.runtime.profiler import RECOVERY_COUNTER_PREFIX

        self.device.restore_state(state["device"])
        self.present.restore_state(state["present"])
        self.queues.restore_state(state["queues"])
        self.profiler.restore_state(
            state["profiler"],
            keep_counter_prefixes=(RECOVERY_COUNTER_PREFIX,))
        self.dirty.restore_state(state["dirty"])
        if self.coherence is not None and state["coherence"] is not None:
            self.coherence.restore_state(state["coherence"])
        if restore_chaos and self.chaos is not None and state["chaos"] is not None:
            self.chaos.restore_state(state["chaos"])
        self.launch_log[:] = state["launch_log"]
        self.transfer_log[:] = state["transfer_log"]
        self._pending_pins = dict(state["pending_pins"])
        if self.ndevices > 1 and state.get("deviceset") is not None:
            self.devset.restore_state(state["deviceset"])
