"""Present table: which host variables currently have device copies.

OpenACC structured data regions nest; the ``present_or_*`` clauses make the
inner region reuse the outer allocation.  Entries are reference-counted: the
region that created the buffer (refcount reaching zero) frees it and runs
its copyout action.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import RuntimeFault


class PresentEntry:
    __slots__ = ("name", "handle", "refcount", "copyout_on_exit", "handles")

    def __init__(self, name: str, handle: int,
                 handles: Optional[List[int]] = None):
        self.name = name
        self.handle = handle
        self.refcount = 1
        self.copyout_on_exit: List[bool] = []  # stack, one flag per nesting level
        # Multi-device runs: one handle per device in the DeviceSet, with
        # handles[0] == handle.  None on the single-device path.
        self.handles = handles

    def handle_on(self, dev: int) -> int:
        """Handle of this variable's replica on device ``dev``."""
        if self.handles is None:
            if dev != 0:
                raise RuntimeFault(
                    f"variable '{self.name}' has no replica on device {dev}")
            return self.handle
        return self.handles[dev]

    def __repr__(self):
        return f"PresentEntry({self.name}: handle={self.handle}, rc={self.refcount})"


class PresentTable:
    def __init__(self):
        self._entries: Dict[str, PresentEntry] = {}

    def is_present(self, name: str) -> bool:
        return name in self._entries

    def lookup(self, name: str) -> PresentEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise RuntimeFault(f"variable '{name}' is not present on the device")
        return entry

    def handle_of(self, name: str) -> int:
        return self.lookup(name).handle

    def add(self, name: str, handle: int,
            handles: Optional[List[int]] = None) -> PresentEntry:
        if name in self._entries:
            raise RuntimeFault(f"variable '{name}' is already present on the device")
        entry = PresentEntry(name, handle, handles=handles)
        self._entries[name] = entry
        return entry

    def retain(self, name: str) -> PresentEntry:
        entry = self.lookup(name)
        entry.refcount += 1
        return entry

    def release(self, name: str) -> Optional[PresentEntry]:
        """Decrement; returns the entry if this release frees the buffer
        (the caller performs copyout/free), else None."""
        entry = self.lookup(name)
        entry.refcount -= 1
        if entry.refcount == 0:
            del self._entries[name]
            return entry
        return None

    def names(self) -> List[str]:
        return list(self._entries)

    def __len__(self):
        return len(self._entries)

    # -- checkpoint support --------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        # Single-device entries keep the historical 3-tuple shape so existing
        # checkpoints round-trip unchanged; multi-device entries append their
        # per-device handle list as a 4th element.
        return {
            name: ((entry.handle, entry.refcount, list(entry.copyout_on_exit))
                   if entry.handles is None else
                   (entry.handle, entry.refcount, list(entry.copyout_on_exit),
                    list(entry.handles)))
            for name, entry in self._entries.items()
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._entries.clear()
        for name, packed in state.items():
            handle, refcount, copyout_on_exit = packed[:3]
            entry = PresentEntry(name, handle)
            entry.refcount = refcount
            entry.copyout_on_exit = list(copyout_on_exit)
            if len(packed) > 3:
                entry.handles = list(packed[3])
            self._entries[name] = entry
