"""DeviceSet: N simulated GPUs behind one runtime, with modeled P2P links.

The single-device runtime talks to one :class:`~repro.device.device.Device`;
under ``--devices N`` it talks to a :class:`DeviceSet` instead — N devices
plus a :class:`Topology` of peer-to-peer links (their own latency and
bandwidth, NVLink-style defaults in the cost model).  The set owns the
cross-device bookkeeping the partitioner needs:

* a :class:`~repro.runtime.intervals.ReplicaMap` tracking which elements of
  each device's replica are stale relative to the logical (single-device)
  value;
* the halo-exchange executor (:meth:`DeviceSet.pull`): given the interval
  set a destination device needs fresh, it synthesizes the minimal D2D
  copies from whichever peers hold those elements fresh;
* per-device and total D2D byte accounting, plus cross-device coherence
  findings (``p2p-missing`` / ``p2p-redundant`` / ``stale-replica``) that
  go beyond the paper's host<->device finding kinds.

Device 0 is the *gateway*: all host<->device traffic lands on it, so the
host-side :class:`~repro.runtime.coherence.CoherenceTracker` and
:class:`~repro.runtime.intervals.DirtyMap` keep their exact single-device
semantics.  Multi-device traffic is explicit D2D only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.device.device import Device, DeviceConfig
from repro.errors import ShardingError
from repro.runtime.intervals import IntervalSet, ReplicaMap

__all__ = ["P2PLink", "Topology", "D2DCopy", "DeviceSet"]


@dataclass(frozen=True)
class P2PLink:
    """One modeled peer-to-peer link."""

    latency_s: float
    bandwidth_Bps: float

    def time_batched(self, nbatches: int, nbytes: int) -> float:
        """One link latency per contiguous batch, bandwidth per byte."""
        return nbatches * self.latency_s + nbytes / self.bandwidth_Bps


class Topology:
    """All-to-all uniform crossbar: every device pair shares one link
    model (an NVSwitch-style fabric).  Kept as its own class so richer
    topologies (rings, PCIe trees) can drop in without touching callers."""

    def __init__(self, ndevices: int, link: P2PLink):
        self.ndevices = ndevices
        self._link = link

    def link(self, src: int, dst: int) -> P2PLink:
        if not (0 <= src < self.ndevices and 0 <= dst < self.ndevices):
            raise ShardingError(
                f"no P2P link between devices {src} and {dst} "
                f"(topology has {self.ndevices} devices)")
        return self._link

    @classmethod
    def from_config(cls, config: DeviceConfig) -> "Topology":
        costs = config.costs
        return cls(max(1, config.devices),
                   P2PLink(costs.p2p_latency_s, costs.p2p_bandwidth_Bps))


@dataclass(frozen=True)
class D2DCopy:
    """One executed device-to-device copy (possibly several interval
    batches over the same link, charged as one transfer)."""

    var: str
    src: int
    dst: int
    intervals: Tuple[Tuple[int, int], ...]
    nbytes: int


class DeviceSet:
    """N simulated devices + links + replica-validity bookkeeping."""

    def __init__(self, config: Optional[DeviceConfig] = None, chaos=None,
                 devices: Optional[List[Device]] = None):
        self.config = config or DeviceConfig()
        if devices is not None:
            self.devices = devices
        else:
            n = max(1, self.config.devices)
            # Chaos only ever attaches on the single-device path (the
            # runtime rejects chaos at N>1), so the gateway carries it.
            self.devices = [Device(self.config, chaos if d == 0 else None,
                                   index=d)
                            for d in range(n)]
        self.ndevices = len(self.devices)
        costs = self.config.costs
        self.topology = Topology(
            self.ndevices, P2PLink(costs.p2p_latency_s, costs.p2p_bandwidth_Bps))
        self.replicas = ReplicaMap(self.ndevices)
        self.bytes_d2d = 0
        self.d2d_copies = 0
        self.d2d_sent = [0] * self.ndevices
        self.d2d_recv = [0] * self.ndevices
        self.d2d_log: List[D2DCopy] = []
        # Modeled busy time per device: kernel seconds each device spent
        # executing its shard (the whole kernel at N=1).  Telemetry reads
        # this for per-device utilization and shard-imbalance reporting; it
        # never feeds back into the modeled clock.
        self.busy_s = [0.0] * self.ndevices
        # Cross-device coherence findings (repro.runtime.coherence kinds
        # P2P_MISSING / P2P_REDUNDANT / STALE_REPLICA).
        self.findings: List = []

    @classmethod
    def wrap(cls, device: Device) -> "DeviceSet":
        """Adopt an explicitly constructed single device (tests and direct
        runtime embedding pass a Device; behavior must stay identical)."""
        return cls(config=device.config, devices=[device])

    @property
    def primary(self) -> Device:
        """The gateway device: all host<->device traffic goes through it."""
        return self.devices[0]

    # ------------------------------------------------------------------
    # Replica lifecycle (mirrored allocation)
    # ------------------------------------------------------------------
    def alloc_peers(self, var: str, shape: Tuple[int, ...], dtype) -> List[int]:
        """Mirror an allocation the gateway already made onto every peer.
        Peer allocations overlap the gateway's in modeled time (simultaneous
        cudaMalloc on independent devices), so they charge nothing extra.
        All replicas start zero-filled and identical -> no stale intervals."""
        handles = []
        for dev in self.devices[1:]:
            handles.append(dev.alloc(var, shape, dtype))
        size = 1
        for dim in shape:
            size *= dim
        self.replicas.bind(var, size)
        return handles

    def free_peers(self, var: str, handles: List[int]) -> None:
        for dev, handle in zip(self.devices[1:], handles):
            dev.free(handle)
        self.replicas.drop(var)

    # ------------------------------------------------------------------
    # Halo exchange
    # ------------------------------------------------------------------
    def pull(self, var: str, dst: int, needed: IntervalSet,
             handles: List[int], site: str = "") -> List[D2DCopy]:
        """Make device ``dst`` fresh over ``needed``: synthesize the minimal
        D2D copies from peers that hold the missing elements fresh, execute
        them, update the replica map, and return the executed copies (the
        runtime charges their modeled P2P time).  ``handles[d]`` is ``var``'s
        buffer on device ``d``."""
        missing = self.replicas.missing(var, dst, needed)
        if not missing:
            return []
        copies: List[D2DCopy] = []
        for src in range(self.ndevices):
            if src == dst or not missing:
                continue
            avail = missing.difference(self.replicas.stale(var, src))
            if not avail:
                continue
            copies.append(self._copy(var, src, dst, avail, handles))
            missing = missing.difference(avail)
        if missing:
            # Invariant breach: no replica holds these elements fresh.  A
            # correct exchange plan never reaches here; record the error
            # finding and fall back to the gateway so execution stays
            # deterministic rather than reading junk silently.
            from repro.runtime.coherence import P2P_MISSING, Finding

            self.findings.append(Finding(
                P2P_MISSING, var, site or f"dev{dst}",
                context=(), nbytes_wasted=0))
            copies.append(self._copy(var, 0, dst, missing, handles))
        return copies

    def _copy(self, var: str, src: int, dst: int, ivs: IntervalSet,
              handles: List[int]) -> D2DCopy:
        src_flat = self.devices[src].array(handles[src]).reshape(-1)
        dst_flat = self.devices[dst].array(handles[dst]).reshape(-1)
        itemsize = dst_flat.itemsize
        nbytes = 0
        for a, b in ivs:
            dst_flat[a:b] = src_flat[a:b]
            nbytes += (b - a) * itemsize
        self.replicas.mark_fresh(var, dst, ivs)
        copy = D2DCopy(var, src, dst, tuple(ivs.intervals()), nbytes)
        self.bytes_d2d += nbytes
        self.d2d_copies += 1
        self.d2d_sent[src] += nbytes
        self.d2d_recv[dst] += nbytes
        self.d2d_log.append(copy)
        return copy

    def p2p_time(self, copy: D2DCopy) -> float:
        return self.topology.link(copy.src, copy.dst).time_batched(
            len(copy.intervals), copy.nbytes)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Peer device states + replica validity + D2D accounting.  The
        gateway device is snapshotted by the runtime itself (under the
        historical 'device' key), not here."""
        return {
            "peers": [dev.snapshot_state() for dev in self.devices[1:]],
            "replicas": self.replicas.snapshot_state(),
            "bytes_d2d": self.bytes_d2d,
            "d2d_copies": self.d2d_copies,
            "d2d_sent": list(self.d2d_sent),
            "d2d_recv": list(self.d2d_recv),
            "d2d_log": list(self.d2d_log),
            "findings": list(self.findings),
            "busy_s": list(self.busy_s),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        for dev, snap in zip(self.devices[1:], state["peers"]):
            dev.restore_state(snap)
        self.replicas.restore_state(state["replicas"])
        self.bytes_d2d = state["bytes_d2d"]
        self.d2d_copies = state["d2d_copies"]
        self.d2d_sent[:] = state["d2d_sent"]
        self.d2d_recv[:] = state["d2d_recv"]
        self.d2d_log[:] = state["d2d_log"]
        self.findings[:] = state["findings"]
        # Snapshots written before busy accounting existed lack the key.
        self.busy_s[:] = state.get("busy_s", [0.0] * self.ndevices)
