"""Kernel execution engine: many logical threads over shared device arrays.

Each logical thread owns a program counter and a register file and executes
the kernel bytecode for one iteration of the partitioned loop(s).  The
:class:`Schedule` decides interleaving:

* ``sequential``  — each thread runs to completion in order (no interleaving;
  races never manifest — the ablation baseline);
* ``round_robin`` — threads advance ``quantum`` instructions per turn (the
  default; deterministic and race-revealing);
* ``random``      — uniformly random runnable thread each step (seeded).

Recognized reductions execute on thread-private partials and are combined in
tree order (:mod:`repro.device.reduction`) after all threads complete, so
only the CPU ends up with the final value — matching the paper's note that
such kernels leave the GPU copy of the reduction variable stale.
"""

from __future__ import annotations

import random as _random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.device.bytecode import Branch, Dump, Jump, Program, Simple, TmpEval, TmpStore
from repro.device.reduction import identity, tree_reduce
from repro.device import vectorize
from repro.errors import DeviceError, InterpError, WatchdogTimeout
from repro.lang import semantics
from repro.lang.ctypes import Scalar


class Schedule:
    """Thread interleaving policy."""

    SEQUENTIAL = "sequential"
    ROUND_ROBIN = "round_robin"
    RANDOM = "random"

    def __init__(self, kind: str = ROUND_ROBIN, quantum: int = 1, seed: int = 0):
        if kind not in (self.SEQUENTIAL, self.ROUND_ROBIN, self.RANDOM):
            raise ValueError(f"unknown schedule kind {kind!r}")
        self.kind = kind
        self.quantum = max(1, quantum)
        self.seed = seed

    @classmethod
    def sequential(cls) -> "Schedule":
        return cls(cls.SEQUENTIAL)

    @classmethod
    def round_robin(cls, quantum: int = 1) -> "Schedule":
        return cls(cls.ROUND_ROBIN, quantum=quantum)

    @classmethod
    def random(cls, seed: int = 0) -> "Schedule":
        return cls(cls.RANDOM, seed=seed)

    def __repr__(self):
        return f"Schedule({self.kind}, quantum={self.quantum}, seed={self.seed})"


class LaunchSpec:
    """Everything the engine needs for one kernel launch.

    ``threads`` is the resolved iteration space: one tuple of index values
    per logical thread, bound to ``index_vars`` in each thread's registers.
    """

    def __init__(
        self,
        name: str,
        instrs: Program,
        index_vars: Sequence[str],
        threads: Sequence[Tuple],
        arrays: Dict[str, np.ndarray],
        scalars: Optional[Dict[str, object]] = None,
        private_decls: Optional[Dict[str, object]] = None,
        firstprivate: Optional[Dict[str, object]] = None,
        cached_vars: Optional[Dict[str, object]] = None,
        shared_writable: Optional[set] = None,
        reductions: Optional[Sequence[Tuple[str, str, object]]] = None,
        array_names: Optional[Dict[str, str]] = None,
    ):
        self.name = name
        self.instrs = instrs
        self.index_vars = tuple(index_vars)
        self.threads = list(threads)
        self.arrays = arrays
        self.scalars = dict(scalars or {})
        self.private_decls = dict(private_decls or {})   # name -> dtype|None
        self.firstprivate = dict(firstprivate or {})     # name -> initial value
        self.cached_vars = dict(cached_vars or {})       # name -> initial shared value
        self.shared_writable = set(shared_writable or ())
        self.reductions = list(reductions or [])         # (name, op, dtype|None)
        # Kernel-local array name -> canonical (present-table) name, so the
        # runtime can attribute per-launch write footprints to the dirty map.
        self.array_names = dict(array_names or {})

    @property
    def nthreads(self) -> int:
        return len(self.threads)


class LaunchResult:
    def __init__(self, name: str, total_steps: int, max_thread_steps: int,
                 reductions: Dict[str, object], shared_final: Dict[str, object],
                 backend: str = "interleaved",
                 write_sets: Optional[Dict[str, List[Tuple[int, int]]]] = None):
        self.name = name
        self.total_steps = total_steps
        self.max_thread_steps = max_thread_steps
        self.reductions = reductions
        self.shared_final = shared_final
        self.backend = backend  # "vectorized" | "interleaved"
        # Per-array element intervals this launch wrote (kernel-local array
        # name -> [start, stop) intervals over the flattened buffer), when
        # the engine collected them; None = unknown (interleaved stepper),
        # which the runtime treats as a conservative full-array write.
        self.write_sets = write_sets

    def __repr__(self):
        return f"LaunchResult({self.name}: {self.total_steps} steps)"


class _Thread:
    __slots__ = ("pc", "regs", "dtypes", "done", "steps")

    def __init__(self):
        self.pc = 0
        self.regs: Dict[str, object] = {}
        self.dtypes: Dict[str, object] = {}
        self.done = False
        self.steps = 0


class _ThreadEnv:
    """Name resolution for one thread: registers shadow shared state."""

    __slots__ = ("spec", "thread", "shared")

    def __init__(self, spec: LaunchSpec, thread: _Thread, shared: Dict[str, object]):
        self.spec = spec
        self.thread = thread
        self.shared = shared

    def load(self, name: str):
        regs = self.thread.regs
        if name in regs:
            return regs[name]
        arrays = self.spec.arrays
        if name in arrays:
            return arrays[name]
        if name in self.shared:
            return self.shared[name]
        raise InterpError(f"kernel {self.spec.name!r}: unbound name {name!r}")

    def store(self, name: str, value):
        thread = self.thread
        if name in thread.regs:
            thread.regs[name] = self._coerce(name, value)
            return
        if name in self.shared and name in self.spec.shared_writable:
            self.shared[name] = value
            return
        if name in self.spec.arrays:
            raise InterpError(f"kernel {self.spec.name!r}: cannot rebind array {name!r}")
        # A scalar never seen before: treat as thread-local (e.g. helper
        # temporaries introduced by passes).
        thread.regs[name] = value

    def declare(self, name: str, ctype, value):
        dtype = ctype.dtype if isinstance(ctype, Scalar) else None
        self.thread.dtypes[name] = dtype
        if value is None:
            value = 0
        self.thread.regs[name] = self._coerce(name, value)

    def call(self, func: str, args):
        return semantics.Builtins.call(func, args)

    def _coerce(self, name: str, value):
        dtype = self.thread.dtypes.get(name)
        if dtype is None:
            return value
        return np.dtype(dtype).type(value).item()


class KernelEngine:
    """Executes launch specs under a schedule.

    Race-free launches take the vectorized fast path
    (:mod:`repro.device.vectorize`) unless ``vectorize=False`` or the
    schedule is ``random`` (an ablation that explicitly asks for stochastic
    interleaving).  Everything race-revealing — and anything the vector
    backend bails out of at runtime — runs on the interleaved stepper.
    """

    def __init__(self, max_total_steps: int = 50_000_000, vectorize: bool = True):
        self.max_total_steps = max_total_steps
        self.vectorize = vectorize
        # When True, vectorized launches report per-array write footprints
        # (LaunchResult.write_sets) for the runtime's dirty-interval map.
        # Off by default: the footprint diff costs one array comparison per
        # written array, only worth paying when something consumes it.
        self.collect_write_sets = False

    def launch(self, spec: LaunchSpec, schedule: Optional[Schedule] = None,
               backend: Optional[str] = None,
               partials_out: Optional[Dict[str, List]] = None) -> LaunchResult:
        """``backend='interleaved'`` forces the stepper even for vectorizable
        specs (degradation ladder / diagnostics); None picks automatically.
        ``partials_out`` (multi-device shard merging) receives each
        reduction's per-lane partials in lane order."""
        schedule = schedule or Schedule.round_robin()
        if (self.vectorize and backend != "interleaved"
                and schedule.kind != Schedule.RANDOM):
            plan = vectorize.plan_for(spec)
            if plan is not None:
                try:
                    total, max_steps, reductions, write_sets = vectorize.execute(
                        spec, plan, self.max_total_steps,
                        collect_writes=self.collect_write_sets,
                        partials_out=partials_out,
                    )
                    return LaunchResult(
                        spec.name, total, max_steps, reductions, {},
                        backend="vectorized", write_sets=write_sets,
                    )
                except DeviceError:
                    raise
                except Exception:
                    # Anything the vector backend cannot reproduce exactly:
                    # scratch copies were discarded, so the interleaved
                    # stepper below sees pristine device memory.
                    pass
        shared: Dict[str, object] = dict(spec.scalars)
        for name, init in spec.cached_vars.items():
            shared.setdefault(name, init)

        threads: List[_Thread] = []
        envs: List[_ThreadEnv] = []
        partials: Dict[str, List] = {name: [] for name, _, _ in spec.reductions}
        red_info = {name: (op, dtype) for name, op, dtype in spec.reductions}

        for values in spec.threads:
            t = _Thread()
            for var, val in zip(spec.index_vars, values):
                t.regs[var] = val
            for name, dtype in spec.private_decls.items():
                t.dtypes[name] = dtype
                t.regs[name] = np.dtype(dtype).type(0).item() if dtype is not None else 0
            for name, val in spec.firstprivate.items():
                t.regs[name] = val
            for name in spec.cached_vars:
                t.regs[name] = shared[name]  # register cache starts from shared copy
            for name, (op, dtype) in red_info.items():
                init = identity(op)
                if dtype is not None:
                    init = np.dtype(dtype).type(init).item()
                t.regs[name] = init
                if dtype is not None:
                    t.dtypes[name] = dtype
            threads.append(t)
            envs.append(_ThreadEnv(spec, t, shared))

        total_steps = self._run(spec, threads, envs, shared, schedule)

        for t in threads:
            for name in partials:
                partials[name].append(t.regs.get(name, identity(red_info[name][0])))

        if partials_out is not None:
            for name, vals in partials.items():
                partials_out[name] = list(vals)

        reductions = {
            name: tree_reduce(op, partials[name], dtype)
            for name, (op, dtype) in red_info.items()
        }
        shared_final = {
            k: v for k, v in shared.items()
            if k in spec.shared_writable or k in spec.cached_vars
        }
        max_steps = max((t.steps for t in threads), default=0)
        return LaunchResult(spec.name, total_steps, max_steps, reductions, shared_final)

    # ------------------------------------------------------------------
    def _run(self, spec, threads, envs, shared, schedule) -> int:
        instrs = spec.instrs
        n = len(instrs)
        total = 0
        live = [i for i in range(len(threads)) if n > 0]
        for i, t in enumerate(threads):
            if n == 0:
                t.done = True

        def step(idx: int) -> bool:
            """Execute one instruction of thread idx; False when finished."""
            t = threads[idx]
            if t.pc >= n:
                t.done = True
                return False
            instr = instrs[t.pc]
            env = envs[idx]
            cls = type(instr)
            if cls is Simple:
                semantics.exec_simple(instr.stmt, env)
                t.pc += 1
            elif cls is TmpEval:
                t.regs[instr.reg] = semantics.evaluate(instr.expr, env)
                t.pc += 1
            elif cls is TmpStore:
                semantics.assign(instr.target, t.regs[instr.reg], env)
                t.pc += 1
            elif cls is Branch:
                if instr.cond is None or semantics.evaluate(instr.cond, env):
                    t.pc += 1
                else:
                    t.pc = instr.target
            elif cls is Jump:
                t.pc = instr.target
            elif cls is Dump:
                shared[instr.name] = t.regs.get(instr.name)
                t.pc += 1
            else:
                raise DeviceError(f"unknown instruction {instr!r}")
            t.steps += 1
            if t.pc >= n:
                t.done = True
            return not t.done

        if schedule.kind == Schedule.SEQUENTIAL:
            for i in live:
                while step(i):
                    total += 1
                    self._check_budget(total, spec)
                total += 1
        elif schedule.kind == Schedule.ROUND_ROBIN:
            quantum = schedule.quantum
            while live:
                survivors = []
                for i in live:
                    alive = True
                    for _ in range(quantum):
                        alive = step(i)
                        total += 1
                        self._check_budget(total, spec)
                        if not alive:
                            break
                    if alive:
                        survivors.append(i)
                live = survivors
        else:  # RANDOM
            rng = _random.Random(schedule.seed)
            live_set = list(live)
            while live_set:
                pick = rng.randrange(len(live_set))
                idx = live_set[pick]
                alive = step(idx)
                total += 1
                self._check_budget(total, spec)
                if not alive:
                    live_set[pick] = live_set[-1]
                    live_set.pop()
        return total

    def _check_budget(self, total: int, spec) -> None:
        if total > self.max_total_steps:
            raise WatchdogTimeout(
                f"watchdog: kernel {spec.name!r} exceeded {self.max_total_steps} "
                "steps (possible infinite loop in kernel body)"
            )
