"""Statement-level kernel bytecode.

A kernel body compiles to a flat instruction list.  One instruction is the
unit of atomicity under the interleaving scheduler: races that real GPUs
expose at memory-operation granularity appear here at statement granularity,
which is both deterministic and sufficient to reproduce the two error
classes of the paper's Table II:

* an unrecognized *reduction* compiles its read-modify-write into two
  instructions (``TmpEval`` + ``TmpStore``), so interleaved threads lose
  updates — an **active** error;
* an unrecognized *private* variable is register-cached with a ``Dump``
  back to the shared copy at the end of each iteration — the shared value
  is schedule-dependent, but when nothing reads it afterwards the output is
  unaffected — a **latent** error.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang import ast


class Instr:
    __slots__ = ()


class Simple(Instr):
    """Execute one simple statement atomically."""

    __slots__ = ("stmt",)

    def __init__(self, stmt: ast.Stmt):
        self.stmt = stmt

    def __repr__(self):
        from repro.lang.printer import to_source

        return f"Simple({to_source(self.stmt).strip()})"


class TmpEval(Instr):
    """reg = eval(expr): the read half of a split read-modify-write."""

    __slots__ = ("reg", "expr")

    def __init__(self, reg: str, expr: ast.Expr):
        self.reg = reg
        self.expr = expr

    def __repr__(self):
        from repro.lang.printer import expr_to_source

        return f"TmpEval({self.reg} = {expr_to_source(self.expr)})"


class TmpStore(Instr):
    """store(target, reg): the write half of a split read-modify-write."""

    __slots__ = ("target", "reg")

    def __init__(self, target: ast.Expr, reg: str):
        self.target = target
        self.reg = reg

    def __repr__(self):
        from repro.lang.printer import expr_to_source

        return f"TmpStore({expr_to_source(self.target)} = {self.reg})"


class Branch(Instr):
    """Jump to ``target`` when the condition is false."""

    __slots__ = ("cond", "target")

    def __init__(self, cond: Optional[ast.Expr], target: int):
        self.cond = cond
        self.target = target

    def __repr__(self):
        return f"Branch(!cond -> {self.target})"


class Jump(Instr):
    __slots__ = ("target",)

    def __init__(self, target: int):
        self.target = target

    def __repr__(self):
        return f"Jump({self.target})"


class Dump(Instr):
    """Write a register-cached (falsely shared) variable back to the shared
    copy — the paper's latent-race dump-back."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self):
        return f"Dump({self.name})"


Program = List[Instr]


def disassemble(instrs: Program) -> str:
    """Human-readable listing (debugging aid)."""
    return "\n".join(f"{i:4d}: {instr!r}" for i, instr in enumerate(instrs))
