"""Device memory: a separate address space with an explicit allocator.

Device allocations are numpy arrays living in a handle table — host code can
never reach them except through ``memcpy`` on the :class:`Device` facade,
which is exactly the property (separate address spaces, §II-C) the paper's
memory-management tooling exists to tame.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import DeviceMemoryError


class Allocation:
    """One device-resident buffer."""

    __slots__ = ("handle", "name", "data", "freed")

    def __init__(self, handle: int, name: str, data: np.ndarray):
        self.handle = handle
        self.name = name
        self.data = data
        self.freed = False

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def __repr__(self):
        state = "freed" if self.freed else f"{self.data.shape}/{self.data.dtype}"
        return f"Allocation(#{self.handle} {self.name}: {state})"


class DeviceMemory:
    """Handle-table allocator with a capacity limit."""

    def __init__(self, capacity_bytes: int = 6 * 1024**3, chaos=None,
                 device_index: int = 0):
        self.capacity = capacity_bytes
        # Which DeviceSet member this address space belongs to (0 on the
        # single-device path); diagnostics only.
        self.device_index = device_index
        self.used = 0
        self._table: Dict[int, Allocation] = {}
        self._next_handle = 1
        self.alloc_count = 0
        self.free_count = 0
        # Optional chaos FaultPlan (repro.runtime.chaos), attached by the
        # runtime; consulted before each allocation.
        self.chaos = chaos

    def alloc(self, name: str, shape: Tuple[int, ...], dtype) -> Allocation:
        """Allocate a zero-initialized device buffer."""
        if self.chaos is not None:
            fault = self.chaos.draw("alloc", site=name)
            if fault is not None:
                raise fault.to_error(
                    f"injected device OOM allocating buffer '{name}'"
                )
        data = np.zeros(shape, dtype=dtype)
        if self.used + data.nbytes > self.capacity:
            where = f"device {self.device_index}" if self.device_index else "device"
            raise DeviceMemoryError(
                f"{where} out of memory allocating {data.nbytes} B for '{name}' "
                f"({self.used}/{self.capacity} B in use)"
            )
        allocation = Allocation(self._next_handle, name, data)
        self._next_handle += 1
        self._table[allocation.handle] = allocation
        self.used += data.nbytes
        self.alloc_count += 1
        return allocation

    def free(self, handle: int) -> Allocation:
        allocation = self._table.get(handle)
        if allocation is None:
            raise DeviceMemoryError(f"free of unknown device handle {handle}")
        if allocation.freed:
            raise DeviceMemoryError(f"double free of device buffer '{allocation.name}'")
        allocation.freed = True
        self.used -= allocation.nbytes
        self.free_count += 1
        del self._table[handle]
        return allocation

    def get(self, handle: int) -> Allocation:
        allocation = self._table.get(handle)
        if allocation is None:
            raise DeviceMemoryError(f"access to unknown/freed device handle {handle}")
        return allocation

    def find_by_name(self, name: str) -> Optional[Allocation]:
        """Most recent live allocation with the given name (present-table
        helper; real lookup goes through the runtime's present table)."""
        for allocation in reversed(list(self._table.values())):
            if allocation.name == name:
                return allocation
        return None

    @property
    def live_allocations(self) -> int:
        return len(self._table)

    def reset(self) -> None:
        self._table.clear()
        self.used = 0

    # -- checkpoint support --------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Deep copy of the handle table and allocator counters."""
        return {
            "table": [(a.handle, a.name, a.data.copy())
                      for a in self._table.values()],
            "used": self.used,
            "next_handle": self._next_handle,
            "alloc_count": self.alloc_count,
            "free_count": self.free_count,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Rebuild the handle table from a snapshot.  Buffers are restored
        in place when a live allocation with matching handle and geometry
        exists (cheap, and any outstanding views stay valid) and recreated
        from a copy otherwise — never adopted from the snapshot itself, so
        one snapshot can be restored any number of times."""
        table: Dict[int, Allocation] = {}
        for handle, name, data in sorted(state["table"]):
            live = self._table.get(handle)
            if (live is not None and live.name == name
                    and live.data.shape == data.shape
                    and live.data.dtype == data.dtype):
                np.copyto(live.data, data, casting="no")
                live.freed = False
                table[handle] = live
            else:
                table[handle] = Allocation(handle, name, data.copy())
        self._table = table
        self.used = state["used"]
        self._next_handle = state["next_handle"]
        self.alloc_count = state["alloc_count"]
        self.free_count = state["free_count"]
