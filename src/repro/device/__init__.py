"""Simulated GPU device.

A :class:`repro.device.device.Device` owns a separate address space
(:mod:`memory`), a PCIe transfer cost model (:mod:`transfer`), and a kernel
execution engine (:mod:`engine`) that runs statement-level bytecode
(:mod:`bytecode`, :mod:`compile`) over many logical threads with a
configurable interleaving schedule — which is what lets the toolchain
*deterministically* reproduce the races and floating-point reordering
effects the paper's verification schemes detect.
"""

from repro.device.device import Device, DeviceConfig
from repro.device.engine import Schedule

__all__ = ["Device", "DeviceConfig", "Schedule"]
