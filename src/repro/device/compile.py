"""Lowering of kernel-body ASTs to device bytecode.

``compile_body`` flattens structured control flow into Branch/Jump
instructions.  Assignments that read-modify-write a variable in
``split_vars`` (unrecognized reductions / falsely shared scalars) are split
into TmpEval + TmpStore pairs so the scheduler can interleave between the
read and the write.  ``dump_vars`` get a Dump instruction at the end of each
thread's iteration (register-cached falsely-private variables).
"""

from __future__ import annotations

from itertools import count
from typing import Iterable, List, Optional, Sequence, Set

from repro.device.bytecode import Branch, Dump, Jump, Program, Simple, TmpEval, TmpStore
from repro.errors import CompileError
from repro.ir.defuse import expr_uses
from repro.lang import ast


class _Lowerer:
    def __init__(self, split_vars: Set[str]):
        self.split_vars = split_vars
        self.instrs: Program = []
        self.break_patches: List[List[int]] = []
        self.continue_patches: List[List[int]] = []
        self._tmp_ids = count()

    def emit(self, instr) -> int:
        self.instrs.append(instr)
        return len(self.instrs) - 1

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.body:
                self.lower_stmt(inner)
        elif isinstance(stmt, (ast.VarDecl, ast.ExprStmt)):
            self.emit(Simple(stmt))
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.break_patches:
                raise CompileError("break outside loop in kernel body")
            self.break_patches[-1].append(self.emit(Jump(-1)))
        elif isinstance(stmt, ast.Continue):
            if not self.continue_patches:
                raise CompileError("continue outside loop in kernel body")
            self.continue_patches[-1].append(self.emit(Jump(-1)))
        elif isinstance(stmt, ast.Return):
            raise CompileError("return inside a compute region is unsupported")
        else:
            raise CompileError(f"cannot lower {type(stmt).__name__} in kernel body")

    def _lower_assign(self, stmt: ast.Assign) -> None:
        base = ast.base_name(stmt.target)
        reads_target = bool(stmt.op) or (base in expr_uses(stmt.value))
        if base in self.split_vars and reads_target:
            reg = f"%t{next(self._tmp_ids)}"
            value = stmt.value
            if stmt.op:
                value = ast.Binary(stmt.op, stmt.target, stmt.value, stmt.line)
            self.emit(TmpEval(reg, value))
            self.emit(TmpStore(stmt.target, reg))
        else:
            self.emit(Simple(stmt))

    def _lower_if(self, stmt: ast.If) -> None:
        branch_at = self.emit(Branch(stmt.cond, -1))
        self.lower_stmt(stmt.then)
        if stmt.orelse is not None:
            jump_at = self.emit(Jump(-1))
            self.instrs[branch_at] = Branch(stmt.cond, len(self.instrs))
            self.lower_stmt(stmt.orelse)
            self.instrs[jump_at] = Jump(len(self.instrs))
        else:
            self.instrs[branch_at] = Branch(stmt.cond, len(self.instrs))

    def _lower_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        top = len(self.instrs)
        branch_at = self.emit(Branch(stmt.cond, -1)) if stmt.cond is not None else None
        self.break_patches.append([])
        self.continue_patches.append([])
        self.lower_stmt(stmt.body)
        step_at = len(self.instrs)
        if stmt.step is not None:
            self.lower_stmt(stmt.step)
        self.emit(Jump(top))
        end = len(self.instrs)
        if branch_at is not None:
            self.instrs[branch_at] = Branch(stmt.cond, end)
        for at in self.break_patches.pop():
            self.instrs[at] = Jump(end)
        for at in self.continue_patches.pop():
            self.instrs[at] = Jump(step_at)

    def _lower_while(self, stmt: ast.While) -> None:
        top = len(self.instrs)
        branch_at = self.emit(Branch(stmt.cond, -1))
        self.break_patches.append([])
        self.continue_patches.append([])
        self.lower_stmt(stmt.body)
        self.emit(Jump(top))
        end = len(self.instrs)
        self.instrs[branch_at] = Branch(stmt.cond, end)
        for at in self.break_patches.pop():
            self.instrs[at] = Jump(end)
        for at in self.continue_patches.pop():
            self.instrs[at] = Jump(top)


def compile_body(
    stmts: Sequence[ast.Stmt],
    split_vars: Optional[Iterable[str]] = None,
    dump_vars: Optional[Iterable[str]] = None,
) -> Program:
    """Lower a kernel body (the statements one thread executes for its
    iteration) to bytecode."""
    lowerer = _Lowerer(set(split_vars or ()))
    for stmt in stmts:
        lowerer.lower_stmt(stmt)
    for name in dump_vars or ():
        lowerer.emit(Dump(name))
    return lowerer.instrs
