"""Device-side reductions.

Recognized reductions give each thread a private partial which the engine
combines *pairwise, tree-shaped* — the order real GPU reductions use, and
deliberately different from the CPU's left-to-right order, so float results
differ by rounding.  That mismatch is precisely what §III-A's configurable
error margin exists for.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

IDENTITY = {
    "+": 0.0,
    "*": 1.0,
    "max": -math.inf,
    "min": math.inf,
    "&": ~0,
    "|": 0,
    "^": 0,
    "&&": 1,
    "||": 0,
}

_COMBINE = {
    "+": lambda a, b: a + b,
    "*": lambda a, b: a * b,
    "max": max,
    "min": min,
    "&": lambda a, b: int(a) & int(b),
    "|": lambda a, b: int(a) | int(b),
    "^": lambda a, b: int(a) ^ int(b),
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
}


def identity(op: str):
    return IDENTITY[op]


def combine(op: str, a, b):
    return _COMBINE[op](a, b)


def tree_reduce(op: str, partials: Sequence, dtype=None) -> object:
    """Pairwise tree reduction (GPU order).

    With ``dtype`` float32, intermediate results round to single precision
    at every combine, like a real in-register reduction.
    """
    fn = _COMBINE[op]
    if not partials:
        return identity(op)
    values: List = list(partials)
    if dtype is not None:
        values = [np.dtype(dtype).type(v) for v in values]
    while len(values) > 1:
        nxt = []
        for i in range(0, len(values) - 1, 2):
            v = fn(values[i], values[i + 1])
            if dtype is not None:
                v = np.dtype(dtype).type(v)
            nxt.append(v)
        if len(values) % 2:
            nxt.append(values[-1])
        values = nxt
    result = values[0]
    return result.item() if isinstance(result, np.generic) else result


def sequential_reduce(op: str, partials: Sequence, dtype=None) -> object:
    """Left-to-right reduction (CPU order) — the reference the tree order is
    compared against in tests."""
    fn = _COMBINE[op]
    acc = identity(op)
    if dtype is not None:
        acc = np.dtype(dtype).type(acc)
    for v in partials:
        acc = fn(acc, v)
        if dtype is not None:
            acc = np.dtype(dtype).type(acc)
    return acc.item() if isinstance(acc, np.generic) else acc
