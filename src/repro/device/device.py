"""Device facade: the simulated GPU the runtime talks to.

Bundles the allocator, the cost model, and the kernel engine, and logs every
operation as a :class:`DeviceEvent` with its *modeled* duration.  The
profiler folds these events into the Figure-1/3/4 breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.device.engine import KernelEngine, LaunchResult, LaunchSpec, Schedule
from repro.device.memory import DeviceMemory
from repro.device.transfer import CostModel, DEFAULT_COSTS
from repro.errors import DeviceError

# Event kinds (profiler categories key off these).
EV_ALLOC = "alloc"
EV_FREE = "free"
EV_H2D = "h2d"
EV_D2H = "d2h"
EV_LAUNCH = "launch"


@dataclass
class DeviceEvent:
    kind: str
    name: str
    nbytes: int = 0
    steps: int = 0
    seconds: float = 0.0
    async_queue: Optional[int] = None
    # Number of coalesced interval batches for h2d/d2h events (1 for a
    # classic whole-array or sectioned copy, 0 for an empty delta transfer).
    batches: int = 1


@dataclass
class DeviceConfig:
    capacity_bytes: int = 6 * 1024**3
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)
    schedule: Schedule = field(default_factory=Schedule.round_robin)
    max_kernel_steps: int = 50_000_000
    # Vectorized fast path for race-free launches (repro.device.vectorize);
    # False forces every launch onto the interleaved stepper.
    vectorize: bool = True
    # Delta transfers: update/region transfers move only dirty intervals
    # (plus a bitwise host/device diff as the soundness net) instead of the
    # whole array.  Off by default — whole-array mode is bit-identical to
    # the historical behavior in both values and modeled time.
    delta_transfers: bool = False
    # Dirty intervals closer than this many bytes are coalesced into one
    # batch; the filler bytes ride along.  None picks the cost model's
    # latency/bandwidth break-even (60 bytes at the default constants).
    transfer_merge_gap_bytes: Optional[int] = None
    # Multi-device execution: number of simulated GPUs in the DeviceSet.
    # 1 (the default) is the single-device runtime, bit-identical to the
    # historical behavior.  N>1 shards race-free gang loops across devices
    # with D2D halo exchange (repro.device.deviceset / runtime.partition).
    devices: int = 1

    def merge_gap_bytes(self) -> int:
        if self.transfer_merge_gap_bytes is not None:
            return self.transfer_merge_gap_bytes
        return self.costs.merge_break_even_bytes()


class Device:
    """One simulated accelerator."""

    def __init__(self, config: Optional[DeviceConfig] = None, chaos=None,
                 index: int = 0):
        self.config = config or DeviceConfig()
        # Position of this device inside its DeviceSet (0 on the
        # single-device path).
        self.index = index
        self.mem = DeviceMemory(self.config.capacity_bytes, device_index=index)
        self.engine = KernelEngine(self.config.max_kernel_steps,
                                   vectorize=self.config.vectorize)
        self.events: List[DeviceEvent] = []
        self.bytes_h2d = 0
        self.bytes_d2h = 0
        # Span tracer (repro.obs); AccRuntime swaps in the live one.
        from repro.obs.tracer import NULL_TRACER

        self.tracer = NULL_TRACER
        # Chaos FaultPlan (repro.runtime.chaos); None in normal operation.
        self.chaos = None
        if chaos is not None:
            self.attach_chaos(chaos)

    def attach_chaos(self, plan) -> None:
        """Wire a chaos FaultPlan into every device-side injection point."""
        self.chaos = plan
        self.mem.chaos = plan

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------
    def alloc(self, name: str, shape: Tuple[int, ...], dtype) -> int:
        allocation = self.mem.alloc(name, shape, dtype)
        self._log(DeviceEvent(EV_ALLOC, name, nbytes=allocation.nbytes,
                              seconds=self.config.costs.alloc_latency_s))
        return allocation.handle

    def free(self, handle: int) -> None:
        allocation = self.mem.free(handle)
        self._log(DeviceEvent(EV_FREE, allocation.name, nbytes=allocation.nbytes,
                              seconds=self.config.costs.free_latency_s))

    def array(self, handle: int) -> np.ndarray:
        """Device-side view of a buffer (engine/runtime internal use)."""
        return self.mem.get(handle).data

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def memcpy_h2d(self, handle: int, host: np.ndarray, async_queue: Optional[int] = None,
                   section: Optional[Tuple[int, int]] = None,
                   intervals: Optional[List[Tuple[int, int]]] = None) -> float:
        """Copy host -> device; ``section=(start, length)`` transfers a slice
        of the (1D-flattened) buffer, paying only its bytes.  ``intervals``
        (sorted, disjoint ``[start, stop)`` element intervals, already
        coalesced by the caller) performs an interval-batched delta copy:
        one latency per batch, bandwidth per byte, one chaos draw per batch.
        """
        dev = self.mem.get(handle)
        if dev.data.shape != host.shape:
            raise DeviceError(
                f"h2d shape mismatch for '{dev.name}': host {host.shape} vs device {dev.data.shape}"
            )
        if intervals is not None:
            return self._memcpy_batched(EV_H2D, dev, dev.data, host,
                                        intervals, async_queue)
        fault, snapshot = self._transfer_fault(f"h2d:{dev.name}", dev.data,
                                               self._full_or_section(dev, section))
        if section is None:
            np.copyto(dev.data, host, casting="same_kind")
            nbytes = dev.nbytes
            sl = slice(0, dev.data.size)
        else:
            sl = self._section_slice(dev, section)
            dev.data.reshape(-1)[sl] = host.reshape(-1)[sl]
            nbytes = (sl.stop - sl.start) * dev.data.itemsize
        if fault is not None:
            self._damage_payload(dev.data, snapshot, fault, sl)
        seconds = self.config.costs.transfer_time(nbytes)
        self.bytes_h2d += nbytes
        self._log(DeviceEvent(EV_H2D, dev.name, nbytes=nbytes, seconds=seconds,
                              async_queue=async_queue))
        return seconds

    def memcpy_d2h(self, host: np.ndarray, handle: int, async_queue: Optional[int] = None,
                   section: Optional[Tuple[int, int]] = None,
                   intervals: Optional[List[Tuple[int, int]]] = None) -> float:
        dev = self.mem.get(handle)
        if dev.data.shape != host.shape:
            raise DeviceError(
                f"d2h shape mismatch for '{dev.name}': host {host.shape} vs device {dev.data.shape}"
            )
        if intervals is not None:
            return self._memcpy_batched(EV_D2H, dev, host, dev.data,
                                        intervals, async_queue)
        fault, snapshot = self._transfer_fault(f"d2h:{dev.name}", host,
                                               self._full_or_section(dev, section))
        if section is None:
            np.copyto(host, dev.data, casting="same_kind")
            nbytes = dev.nbytes
            sl = slice(0, dev.data.size)
        else:
            sl = self._section_slice(dev, section)
            host.reshape(-1)[sl] = dev.data.reshape(-1)[sl]
            nbytes = (sl.stop - sl.start) * dev.data.itemsize
        if fault is not None:
            self._damage_payload(host, snapshot, fault, sl)
        seconds = self.config.costs.transfer_time(nbytes)
        self.bytes_d2h += nbytes
        self._log(DeviceEvent(EV_D2H, dev.name, nbytes=nbytes, seconds=seconds,
                              async_queue=async_queue))
        return seconds

    def _memcpy_batched(self, kind: str, dev, dest: np.ndarray,
                        src: np.ndarray, intervals: List[Tuple[int, int]],
                        async_queue: Optional[int]) -> float:
        """Delta transfer: copy each coalesced interval batch, drawing the
        chaos plan once per batch so corruption/truncation recovery works at
        batch granularity.  An aborting fault raises mid-sequence; earlier
        batches already landed, and the runtime's retry re-issues the whole
        plan (idempotent — re-copying equal data is harmless)."""
        size = dev.data.size
        last = 0
        for start, stop in intervals:
            if start < last or stop <= start or stop > size:
                raise DeviceError(
                    f"bad transfer interval [{start},{stop}) for '{dev.name}' "
                    f"of size {size}"
                )
            last = stop
        dest_flat = dest.reshape(-1)
        src_flat = src.reshape(-1)
        nbytes = 0
        for start, stop in intervals:
            sl = slice(start, stop)
            fault, snapshot = self._transfer_fault(f"{kind}:{dev.name}", dest, sl)
            dest_flat[sl] = src_flat[sl]
            if fault is not None:
                self._damage_payload(dest, snapshot, fault, sl)
            batch_bytes = (stop - start) * dev.data.itemsize
            nbytes += batch_bytes
            self.tracer.event("transfer.batch", var=dev.name, start=start,
                              stop=stop, bytes=batch_bytes)
        seconds = self.config.costs.transfer_time_batched(len(intervals), nbytes)
        if kind == EV_H2D:
            self.bytes_h2d += nbytes
        else:
            self.bytes_d2h += nbytes
        self._log(DeviceEvent(kind, dev.name, nbytes=nbytes, seconds=seconds,
                              async_queue=async_queue, batches=len(intervals)))
        return seconds

    @staticmethod
    def _full_or_section(dev, section: Optional[Tuple[int, int]]) -> slice:
        if section is None:
            return slice(0, dev.data.size)
        return Device._section_slice(dev, section)

    def _transfer_fault(self, site: str, dest: np.ndarray, sl: slice):
        """Consult the chaos plan before a copy.  An aborting fault raises
        here, before any data moved; a damaging fault returns with a snapshot
        of the destination range so truncation can restore the un-arrived
        suffix."""
        if self.chaos is None:
            return None, None
        fault = self.chaos.draw("transfer", site=site)
        if fault is None:
            return None, None
        if fault.aborts:
            raise fault.to_error("injected transient transfer failure")
        return fault, dest.reshape(-1)[sl].copy()

    @staticmethod
    def _damage_payload(dest: np.ndarray, snapshot: np.ndarray, fault,
                        sl: slice) -> None:
        """Apply in-flight damage, restricted to the transferred range so the
        caller's post-copy verification of that range is sufficient."""
        from repro.runtime.chaos import corrupt_payload, truncate_payload

        flat = dest.reshape(-1)[sl]
        if fault.corrupts:
            corrupt_payload(flat, fault)
        elif fault.truncates:
            truncate_payload(flat, snapshot, fault)

    @staticmethod
    def _section_slice(dev, section: Tuple[int, int]) -> slice:
        start, length = section
        size = dev.data.size
        if start < 0 or length <= 0 or start + length > size:
            raise DeviceError(
                f"bad section [{start}:{length}] for '{dev.name}' of size {size}"
            )
        return slice(start, start + length)

    # ------------------------------------------------------------------
    # Kernel execution
    # ------------------------------------------------------------------
    def launch(self, spec: LaunchSpec, schedule: Optional[Schedule] = None,
               async_queue: Optional[int] = None,
               backend: Optional[str] = None,
               partials_out: Optional[Dict[str, List]] = None) -> LaunchResult:
        """Run one kernel.  ``backend='interleaved'`` bypasses the vectorized
        fast path (degradation ladder / diagnostics)."""
        if self.chaos is not None:
            fault = self.chaos.draw("launch", site=spec.name)
            if fault is not None:
                # Raised before the engine touches device memory, so callers
                # may retry or degrade against pristine state.
                raise fault.to_error("injected kernel-launch failure")
        result = self.engine.launch(spec, schedule or self.config.schedule,
                                    backend=backend, partials_out=partials_out)
        seconds = self.config.costs.kernel_time(result.total_steps)
        self._log(DeviceEvent(EV_LAUNCH, spec.name, steps=result.total_steps,
                              seconds=seconds, async_queue=async_queue))
        return result

    # ------------------------------------------------------------------
    def _log(self, event: DeviceEvent) -> None:
        self.events.append(event)

    def total_seconds(self, kind: Optional[str] = None) -> float:
        return sum(e.seconds for e in self.events if kind is None or e.kind == kind)

    def total_transferred_bytes(self) -> int:
        return self.bytes_h2d + self.bytes_d2h

    def event_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for e in self.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return counts

    def reset_events(self) -> None:
        self.events.clear()
        self.bytes_h2d = 0
        self.bytes_d2h = 0

    # -- checkpoint support --------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Memory, event log, and link-byte totals (engine and config are
        stateless between launches and are not captured)."""
        return {
            "mem": self.mem.snapshot_state(),
            "events": list(self.events),
            "bytes_h2d": self.bytes_h2d,
            "bytes_d2h": self.bytes_d2h,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self.mem.restore_state(state["mem"])
        self.events[:] = state["events"]
        self.bytes_h2d = state["bytes_h2d"]
        self.bytes_d2h = state["bytes_d2h"]
