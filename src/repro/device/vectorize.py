"""Vectorized fast-path backend for the kernel engine.

The interleaved stepper in :mod:`repro.device.engine` is *semantically*
required only when races can manifest: fault-injected kernels carry split
read-modify-writes (``TmpEval``/``TmpStore``), register-cached dump-backs
(``Dump``), or truly shared scalars, and the ``random`` schedule is an
explicit ablation asking for stochastic interleaving.  Every other launch is
race-free by construction — each logical thread owns its registers and every
array element is written by at most one thread — so the whole iteration
space can execute as numpy operations with one lane per logical thread.

The backend has three pieces:

* :func:`plan_for` — a static, cached analysis that classifies a
  :class:`~repro.device.engine.LaunchSpec` as vectorizable.  It rejects any
  spec with race-revealing state (``shared_writable``, ``cached_vars``, the
  split-RMW / dump-back instructions) and any construct whose whole-lane
  semantics could diverge from per-thread stepping (pointer ops, unknown
  builtins, arrays written through non-injective index tuples, ...).
* a compiled *vector expression* layer — each AST node compiles once into a
  closure ``fn(ctx, sel) -> value`` operating on the lanes selected by
  ``sel`` (compressed execution: untaken ``&&``/``?:``/branch sides are
  never evaluated on lanes that do not take them, preserving short-circuit
  side effects and fault behaviour).
* :func:`execute` — a min-PC SIMT executor: every lane has a program
  counter; each step picks the smallest live pc, runs that one instruction
  for every lane sitting at it, and bumps those lanes' step counters.  Step
  accounting is therefore *identical to the interleaved stepper by
  construction* (``total_steps`` is the number of executed instructions
  summed over lanes in every schedule), so modeled kernel times — and the
  Figure 1/3/4 and Table II/III outputs derived from them — are bit-equal.

Bit-exactness rules worth knowing when editing:

* scalar evaluation happens in Python doubles / unbounded ints, so gathers
  upcast ``float32 -> float64`` and integer kinds to ``int64``;
* ``exp``/``log``/``pow``/``sin``/``cos`` loop over ``math.*`` per element —
  numpy's transcendentals are *not* bitwise equal to libm here (``sqrt``
  is, and is vectorized);
* register stores mirror ``_ThreadEnv._coerce``: round-trip through the
  declared dtype, then back to the float64/int64 working dtype.

Anything the closures cannot reproduce exactly raises :class:`VectorBailout`
at runtime; the engine then re-runs the launch on the interleaved stepper.
Writes land in scratch copies that are only committed on success, so a
bailed-out launch leaves device memory untouched for the re-run.
"""

from __future__ import annotations

import math
import weakref
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.device.bytecode import Branch, Dump, Jump, Program, Simple, TmpEval, TmpStore
from repro.device.reduction import identity, tree_reduce
from repro.errors import WatchdogTimeout
from repro.lang import ast
from repro.lang.ctypes import Scalar
from repro.lang.printer import expr_to_source

_INT = np.int64
_FLT = np.float64


class VectorBailout(Exception):
    """Raised when the vector backend cannot reproduce scalar semantics
    exactly at runtime; the engine falls back to the interleaved stepper."""


# ---------------------------------------------------------------------------
# Static analysis
# ---------------------------------------------------------------------------

class VectorPlan:
    """A positive vectorizability verdict for one kernel program.

    Besides the verdict itself the plan retains the *access shapes* the
    analysis already proved safe: for every device array, the distinct
    subscript-component AST tuples it is accessed through (``accesses``),
    and for written arrays the single proven one-element-per-thread write
    tuple (``write_tuples``).  The multi-device partitioner re-evaluates
    these ASTs over a shard's lanes to predict per-shard footprints without
    executing the kernel."""

    __slots__ = ("written_arrays", "accesses", "write_tuples")

    def __init__(self, written_arrays: frozenset, accesses=None,
                 write_tuples=None):
        self.written_arrays = written_arrays
        # root -> tuple of component-AST tuples (reads and writes, deduped).
        self.accesses: Dict[str, tuple] = accesses or {}
        # root -> the unique write component-AST tuple.
        self.write_tuples: Dict[str, tuple] = write_tuples or {}


class _Reject(Exception):
    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


# Analysis results keyed by instruction-list identity.  The instruction list
# is held strongly so the id can never be recycled; the cache is bounded by
# the number of distinct compiled kernels in the process (small).
_PLAN_CACHE: Dict[int, Tuple[Program, Optional[VectorPlan], str]] = {}
_PLAN_CACHE_MAX = 1024


def plan_for(spec) -> Optional[VectorPlan]:
    """Return a :class:`VectorPlan` if ``spec`` is vectorizable, else None."""
    # Launch-level state (varies per launch even for one program).
    if spec.shared_writable or spec.cached_vars:
        return None
    key = id(spec.instrs)
    cached = _PLAN_CACHE.get(key)
    if cached is not None and cached[0] is spec.instrs:
        return cached[1]
    try:
        plan: Optional[VectorPlan] = _analyze(spec)
        reason = ""
    except _Reject as rej:
        plan = None
        reason = rej.reason
    if len(_PLAN_CACHE) >= _PLAN_CACHE_MAX:
        _PLAN_CACHE.clear()
    _PLAN_CACHE[key] = (spec.instrs, plan, reason)
    return plan


def reject_reason(spec) -> Optional[str]:
    """Why the spec fell back, for diagnostics ('' when vectorizable)."""
    if spec.shared_writable:
        return "shared-writable scalars"
    if spec.cached_vars:
        return "register-cached shared vars"
    plan_for(spec)
    cached = _PLAN_CACHE.get(id(spec.instrs))
    return cached[2] if cached is not None else None


def _analyze(spec) -> VectorPlan:
    index_vars = set(spec.index_vars)
    arrays = spec.arrays
    ndims = {name: arr.ndim for name, arr in arrays.items()}

    # Pass 1: collect in-body declarations; they define the writable
    # register set together with private/firstprivate/reduction names.
    decl_names = set()
    for instr in spec.instrs:
        if type(instr) is Simple and isinstance(instr.stmt, ast.VarDecl):
            name = instr.stmt.name
            if name in arrays or name in spec.scalars:
                raise _Reject(f"declaration shadows shared name {name!r}")
            decl_names.add(name)
    writable_regs = (
        decl_names
        | set(spec.private_decls)
        | set(spec.firstprivate)
        | {name for name, _, _ in spec.reductions}
    )

    # (root, index-tuple-source) accesses, split by read/write.
    reads: Dict[str, set] = {}
    writes: Dict[str, set] = {}
    # For each write tuple, which components are bare partition index vars.
    bare_vars: Dict[Tuple[str, Tuple[str, ...]], set] = {}
    # Retained ASTs: root -> {source-key: component-AST tuple}, plus the
    # write tuple per root (for the multi-device footprint probe).
    access_asts: Dict[str, Dict[Tuple[str, ...], tuple]] = {}
    write_asts: Dict[str, tuple] = {}

    def subscript_parts(expr: ast.Subscript):
        comps: List[ast.Expr] = []
        node: ast.Expr = expr
        while isinstance(node, ast.Subscript):
            comps.append(node.index)
            node = node.base
        comps.reverse()
        if not isinstance(node, ast.Name):
            raise _Reject("subscript base is not a plain array name")
        root = node.id
        if root not in arrays:
            raise _Reject(f"subscript of non-device-array {root!r}")
        if len(comps) != ndims[root]:
            raise _Reject(f"partial indexing of array {root!r}")
        return root, comps

    def record(expr: ast.Subscript, is_write: bool):
        root, comps = subscript_parts(expr)
        key = tuple(expr_to_source(c) for c in comps)
        (writes if is_write else reads).setdefault(root, set()).add(key)
        access_asts.setdefault(root, {}).setdefault(key, tuple(comps))
        if is_write:
            bare = {c.id for c in comps if isinstance(c, ast.Name) and c.id in index_vars}
            bare_vars[(root, key)] = bare
            write_asts[root] = tuple(comps)
        for comp in comps:
            check_expr(comp)

    def check_store_target(target: ast.Expr):
        if isinstance(target, ast.Name):
            if target.id in arrays:
                raise _Reject(f"store rebinds array {target.id!r}")
            if target.id in index_vars:
                raise _Reject(f"store to partition index {target.id!r}")
            if target.id not in writable_regs:
                raise _Reject(f"store to non-register name {target.id!r}")
            return
        if isinstance(target, ast.Subscript):
            record(target, is_write=True)
            return
        raise _Reject(f"unsupported store target {type(target).__name__}")

    def check_expr(expr: ast.Expr):
        kind = type(expr)
        if kind in (ast.IntLit, ast.FloatLit):
            return
        if kind is ast.StrLit:
            raise _Reject("string literal in kernel body")
        if kind is ast.Name:
            if expr.id in arrays:
                raise _Reject(f"array {expr.id!r} used as a scalar value")
            return
        if kind is ast.Subscript:
            record(expr, is_write=False)
            return
        if kind is ast.Call:
            if expr.func not in _VBUILTINS:
                raise _Reject(f"builtin {expr.func!r} has no vector form")
            for arg in expr.args:
                check_expr(arg)
            return
        if kind is ast.Unary:
            op = expr.op
            if op in ("++", "--", "p++", "p--"):
                if not isinstance(expr.operand, ast.Name):
                    raise _Reject("increment of non-scalar lvalue")
                check_store_target(expr.operand)
                return
            if op in ("-", "!", "~"):
                check_expr(expr.operand)
                return
            raise _Reject(f"unary {op!r} (pointer op) in kernel body")
        if kind is ast.Binary:
            if expr.op not in ("&&", "||") and expr.op not in _SCALAR_BINOPS:
                raise _Reject(f"operator {expr.op!r} has no vector form")
            check_expr(expr.left)
            check_expr(expr.right)
            return
        if kind is ast.Ternary:
            check_expr(expr.cond)
            check_expr(expr.then)
            check_expr(expr.other)
            return
        if kind is ast.Cast:
            check_expr(expr.operand)
            return
        raise _Reject(f"cannot vectorize {kind.__name__}")

    for instr in spec.instrs:
        cls = type(instr)
        if cls is Simple:
            stmt = instr.stmt
            if isinstance(stmt, ast.Assign):
                check_expr(stmt.value)
                if stmt.op:
                    # Compound assignment reads the target too.
                    if isinstance(stmt.target, ast.Subscript):
                        record(stmt.target, is_write=False)
                    else:
                        check_expr(stmt.target)
                check_store_target(stmt.target)
            elif isinstance(stmt, ast.VarDecl):
                if stmt.init is not None:
                    check_expr(stmt.init)
            elif isinstance(stmt, ast.ExprStmt):
                check_expr(stmt.expr)
            else:
                raise _Reject(f"unsupported statement {type(stmt).__name__}")
        elif cls is Branch:
            if instr.cond is not None:
                check_expr(instr.cond)
        elif cls is Jump:
            pass
        elif cls in (TmpEval, TmpStore, Dump):
            # Split read-modify-writes and register dump-backs exist to
            # *expose* races; they must run on the interleaved stepper.
            raise _Reject(f"race-revealing instruction {cls.__name__}")
        else:
            raise _Reject(f"unknown instruction {cls.__name__}")

    # Written arrays: one syntactic index tuple per array, containing every
    # partition index var as a bare component (distinct lanes -> distinct
    # elements, so scatters never collide and lane order cannot matter), and
    # identical to every read tuple of the same array (a lane reads exactly
    # the element it owns, so gather-after-scatter is race-free).
    for root, wset in writes.items():
        if len(wset) != 1:
            raise _Reject(f"array {root!r} written through multiple index tuples")
        (wkey,) = wset
        if bare_vars[(root, wkey)] != index_vars:
            raise _Reject(
                f"write to {root!r} not provably one-element-per-thread"
            )
        extra_reads = reads.get(root, set()) - {wkey}
        if extra_reads:
            raise _Reject(
                f"array {root!r} read through a different index tuple than written"
            )

    return VectorPlan(
        frozenset(writes),
        accesses={root: tuple(per_key.values())
                  for root, per_key in access_asts.items()},
        write_tuples=dict(write_asts),
    )


# ---------------------------------------------------------------------------
# Vector value helpers
# ---------------------------------------------------------------------------
#
# A "value" is either a numpy array with one element per selected lane
# (dtype float64 or int64) or a uniform Python scalar.  Two-uniform
# operations reuse the exact scalar semantics from repro.lang.semantics.

from repro.lang.semantics import _BINOPS as _SCALAR_BINOPS  # noqa: E402
from repro.lang.semantics import c_div as _scalar_div  # noqa: E402
from repro.lang.semantics import c_mod as _scalar_mod  # noqa: E402


def _is_arr(v) -> bool:
    return isinstance(v, np.ndarray)


def _kind(v) -> str:
    if _is_arr(v):
        return "f" if v.dtype.kind == "f" else "i"
    return "f" if isinstance(v, float) else "i"


def _as_int(v):
    if _is_arr(v):
        return v if v.dtype.kind in "iu" else v.astype(_INT)
    return int(v)


def _vdiv(a, b):
    if not _is_arr(a) and not _is_arr(b):
        return _scalar_div(a, b)
    if _kind(a) == "i" and _kind(b) == "i":
        a64, b64 = _as_int(a), _as_int(b)
        if np.any(b64 == 0):
            raise VectorBailout("integer division by zero")
        q = np.abs(a64) // np.abs(b64)
        return np.where((a64 >= 0) == (b64 >= 0), q, -q)
    if np.any(np.asarray(b) == 0):
        raise VectorBailout("float division by zero")
    return np.asarray(a) / np.asarray(b)


def _vmod(a, b):
    if not _is_arr(a) and not _is_arr(b):
        return _scalar_mod(a, b)
    if np.any(np.asarray(b) == 0):
        raise VectorBailout("modulo by zero")
    if _kind(a) == "i" and _kind(b) == "i":
        a64, b64 = _as_int(a), _as_int(b)
        return a64 - _vdiv(a64, b64) * b64
    return np.fmod(np.asarray(a, dtype=_FLT), np.asarray(b, dtype=_FLT))


def _cmp(op):
    def fn(a, b):
        return op(a, b).astype(_INT)
    return fn


def _bit(op):
    def fn(a, b):
        return op(_as_int(a), _as_int(b))
    return fn


# Array-capable versions of _BINOPS; two-uniform inputs never reach these.
_VECTOR_BINOPS: Dict[str, Callable] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _vdiv,
    "%": _vmod,
    "<": _cmp(lambda a, b: np.less(a, b)),
    ">": _cmp(lambda a, b: np.greater(a, b)),
    "<=": _cmp(lambda a, b: np.less_equal(a, b)),
    ">=": _cmp(lambda a, b: np.greater_equal(a, b)),
    "==": _cmp(lambda a, b: np.equal(a, b)),
    "!=": _cmp(lambda a, b: np.not_equal(a, b)),
    "&": _bit(lambda a, b: a & b),
    "|": _bit(lambda a, b: a | b),
    "^": _bit(lambda a, b: a ^ b),
    "<<": _bit(lambda a, b: a << b),
    ">>": _bit(lambda a, b: a >> b),
}


# -- builtins ---------------------------------------------------------------

def _lift_libm(fn):
    """Elementwise loop over libm: numpy's transcendentals are not bitwise
    equal to math.* here, so exactness costs a per-element call."""

    def g(x):
        if _is_arr(x):
            return np.fromiter((fn(v) for v in x.tolist()), _FLT, count=x.size)
        return fn(x)
    return g


def _vsqrt(x):
    if _is_arr(x):
        if np.any(np.asarray(x) < 0):
            raise VectorBailout("sqrt of negative")
        return np.sqrt(x.astype(_FLT) if x.dtype.kind != "f" else x)
    return math.sqrt(x)


def _vfabs(x):
    return np.abs(x) if _is_arr(x) else abs(x)


def _viabs(x):
    return np.abs(_as_int(x)) if _is_arr(x) else abs(int(x))


def _vfloor(x):
    if _is_arr(x):
        return x if x.dtype.kind in "iu" else np.floor(x).astype(_INT)
    return math.floor(x)


def _vceil(x):
    if _is_arr(x):
        return x if x.dtype.kind in "iu" else np.ceil(x).astype(_INT)
    return math.ceil(x)


def _vmax(a, b):
    if not _is_arr(a) and not _is_arr(b):
        return max(a, b)
    if _kind(a) != _kind(b):
        raise VectorBailout("max of mixed int/float")
    # Python max(a, b) is `b if b > a else a`; np.where mirrors it exactly
    # (signed zeros and NaNs included), unlike np.maximum.
    return np.where(np.greater(b, a), b, a)


def _vmin(a, b):
    if not _is_arr(a) and not _is_arr(b):
        return min(a, b)
    if _kind(a) != _kind(b):
        raise VectorBailout("min of mixed int/float")
    return np.where(np.less(b, a), b, a)


def _vpow(a, b):
    if not _is_arr(a) and not _is_arr(b):
        return math.pow(a, b)
    av, bv = np.broadcast_arrays(np.asarray(a), np.asarray(b))
    return np.fromiter(
        (math.pow(x, y) for x, y in zip(av.tolist(), bv.tolist())),
        _FLT, count=av.size,
    )


def _f32(x):
    return x.astype(np.float32) if _is_arr(x) else np.float32(x)


def _vsqrtf(x):
    # Scalar path: sqrt in double of the float32 input, rounded to float32.
    if _is_arr(x):
        x32 = _f32(x)
        return np.fromiter(
            (np.float32(math.sqrt(v)) for v in x32.tolist()), np.float32,
            count=x32.size,
        ).astype(_FLT)
    return np.float32(math.sqrt(np.float32(x))).item()


def _vexpf(x):
    if _is_arr(x):
        x32 = _f32(x)
        return np.fromiter(
            (np.float32(math.exp(v)) for v in x32.tolist()), np.float32,
            count=x32.size,
        ).astype(_FLT)
    return np.float32(math.exp(np.float32(x))).item()


def _vfabsf(x):
    if _is_arr(x):
        return np.abs(_f32(x)).astype(_FLT)
    return np.float32(abs(np.float32(x))).item()


_VBUILTINS: Dict[str, Callable] = {
    "sqrt": _vsqrt,
    "fabs": _vfabs,
    "abs": _viabs,
    "exp": _lift_libm(math.exp),
    "log": _lift_libm(math.log),
    "pow": _vpow,
    "sin": _lift_libm(math.sin),
    "cos": _lift_libm(math.cos),
    "floor": _vfloor,
    "ceil": _vceil,
    "fmax": _vmax,
    "fmin": _vmin,
    "max": _vmax,
    "min": _vmin,
    "sqrtf": _vsqrtf,
    "expf": _vexpf,
    "fabsf": _vfabsf,
}


# ---------------------------------------------------------------------------
# Vector expression compilation
# ---------------------------------------------------------------------------

class _Ctx:
    """Per-launch lane state for the vector closures."""

    __slots__ = ("regs", "dtypes", "arrays", "scalars", "nlanes")

    def __init__(self, nlanes: int, arrays, scalars):
        self.regs: Dict[str, np.ndarray] = {}
        self.dtypes: Dict[str, Optional[np.dtype]] = {}
        self.arrays = arrays
        self.scalars = scalars
        self.nlanes = nlanes


_VEXPR_CACHE: "weakref.WeakKeyDictionary[ast.Expr, Callable]" = weakref.WeakKeyDictionary()
_VSTORE_CACHE: "weakref.WeakKeyDictionary[ast.Expr, Callable]" = weakref.WeakKeyDictionary()
_VSTMT_CACHE: "weakref.WeakKeyDictionary[ast.Stmt, Callable]" = weakref.WeakKeyDictionary()


def _vec_expr(expr: ast.Expr) -> Callable:
    fn = _VEXPR_CACHE.get(expr)
    if fn is None:
        fn = _compile_vexpr(expr)
        _VEXPR_CACHE[expr] = fn
    return fn


def _vec_store(target: ast.Expr) -> Callable:
    fn = _VSTORE_CACHE.get(target)
    if fn is None:
        fn = _compile_vstore(target)
        _VSTORE_CACHE[target] = fn
    return fn


def _vec_stmt(stmt: ast.Stmt) -> Callable:
    fn = _VSTMT_CACHE.get(stmt)
    if fn is None:
        fn = _compile_vstmt(stmt)
        _VSTMT_CACHE[stmt] = fn
    return fn


def _gather_upcast(out):
    if _is_arr(out):
        if out.dtype == _FLT or out.dtype == _INT:
            return out
        return out.astype(_FLT) if out.dtype.kind == "f" else out.astype(_INT)
    return out.item() if isinstance(out, np.generic) else out


def _compile_vexpr(expr: ast.Expr) -> Callable:
    kind = type(expr)
    if kind in (ast.IntLit, ast.FloatLit):
        value = expr.value
        return lambda ctx, sel: value
    if kind is ast.Name:
        name = expr.id

        def load(ctx, sel):
            reg = ctx.regs.get(name)
            if reg is not None:
                return reg[sel]
            return ctx.scalars[name]
        return load
    if kind is ast.Subscript:
        root, index_fns = _vsubscript_parts(expr)

        def gather(ctx, sel):
            idxs = [fn(ctx, sel) for fn in index_fns]
            idxs.reverse()
            return _gather_upcast(ctx.arrays[root][tuple(idxs)])
        return gather
    if kind is ast.Call:
        fn = _VBUILTINS[expr.func]
        arg_fns = [_vec_expr(a) for a in expr.args]
        if len(arg_fns) == 1:
            a0 = arg_fns[0]
            return lambda ctx, sel: fn(a0(ctx, sel))
        return lambda ctx, sel: fn(*[f(ctx, sel) for f in arg_fns])
    if kind is ast.Unary:
        return _compile_vunary(expr)
    if kind is ast.Binary:
        return _compile_vbinary(expr)
    if kind is ast.Ternary:
        return _compile_vternary(expr)
    if kind is ast.Cast:
        operand = _vec_expr(expr.operand)
        ctype = expr.ctype
        if isinstance(ctype, Scalar):
            if ctype.is_integer:
                def icast(ctx, sel):
                    v = operand(ctx, sel)
                    return _as_int(v)
                return icast
            dtype = ctype.dtype

            def fcast(ctx, sel):
                v = operand(ctx, sel)
                if _is_arr(v):
                    return v.astype(dtype).astype(_FLT)
                return np.dtype(dtype).type(v).item()
            return fcast
        return operand
    raise VectorBailout(f"cannot vectorize {kind.__name__}")


def _vsubscript_parts(expr: ast.Subscript):
    index_fns: List[Callable] = []
    node: ast.Expr = expr
    while isinstance(node, ast.Subscript):
        index_fns.append(_vec_expr(node.index))
        node = node.base
    assert isinstance(node, ast.Name)
    return node.id, index_fns


def _compile_vunary(expr: ast.Unary) -> Callable:
    op = expr.op
    if op in ("++", "--", "p++", "p--"):
        operand = _vec_expr(expr.operand)
        store = _vec_store(expr.operand)
        delta = 1 if "+" in op else -1
        if op in ("++", "--"):
            def post(ctx, sel):
                old = operand(ctx, sel)
                store(old + delta, ctx, sel)
                return old
            return post

        def pre(ctx, sel):
            new = operand(ctx, sel) + delta
            store(new, ctx, sel)
            return new
        return pre
    operand = _vec_expr(expr.operand)
    if op == "-":
        return lambda ctx, sel: -operand(ctx, sel)
    if op == "!":
        def vnot(ctx, sel):
            v = operand(ctx, sel)
            if _is_arr(v):
                return (v == 0).astype(_INT)
            return int(not v)
        return vnot
    if op == "~":
        def vinv(ctx, sel):
            return ~_as_int(operand(ctx, sel))
        return vinv
    raise VectorBailout(f"unary {op!r}")


def _compile_vbinary(expr: ast.Binary) -> Callable:
    op = expr.op
    left = _vec_expr(expr.left)
    right = _vec_expr(expr.right)
    if op == "&&":
        def vand(ctx, sel):
            lv = left(ctx, sel)
            if not _is_arr(lv):
                if not lv:
                    return 0
                rv = right(ctx, sel)
                if _is_arr(rv):
                    return (rv != 0).astype(_INT)
                return int(bool(rv))
            taken = lv != 0
            out = np.zeros(len(sel), _INT)
            if taken.any():
                rv = right(ctx, sel[taken])
                if _is_arr(rv):
                    out[taken] = (rv != 0).astype(_INT)
                else:
                    out[taken] = int(bool(rv))
            return out
        return vand
    if op == "||":
        def vor(ctx, sel):
            lv = left(ctx, sel)
            if not _is_arr(lv):
                if lv:
                    return 1
                rv = right(ctx, sel)
                if _is_arr(rv):
                    return (rv != 0).astype(_INT)
                return int(bool(rv))
            taken = lv != 0
            out = np.ones(len(sel), _INT)
            falls = ~taken
            if falls.any():
                rv = right(ctx, sel[falls])
                if _is_arr(rv):
                    out[falls] = (rv != 0).astype(_INT)
                else:
                    out[falls] = int(bool(rv))
            return out
        return vor
    scalar_fn = _SCALAR_BINOPS[op]
    vector_fn = _VECTOR_BINOPS[op]

    def vbin(ctx, sel):
        a = left(ctx, sel)
        b = right(ctx, sel)
        if _is_arr(a) or _is_arr(b):
            return vector_fn(a, b)
        return scalar_fn(a, b)
    return vbin


def _compile_vternary(expr: ast.Ternary) -> Callable:
    cond = _vec_expr(expr.cond)
    then = _vec_expr(expr.then)
    other = _vec_expr(expr.other)

    def vtern(ctx, sel):
        cv = cond(ctx, sel)
        if not _is_arr(cv):
            return then(ctx, sel) if cv else other(ctx, sel)
        taken = cv != 0
        if taken.all():
            return then(ctx, sel)
        if not taken.any():
            return other(ctx, sel)
        tv = then(ctx, sel[taken])
        ov = other(ctx, sel[~taken])
        tk, ok = _kind(tv), _kind(ov)
        if tk != ok:
            raise VectorBailout("mixed int/float ternary arms")
        out = np.empty(len(sel), _FLT if tk == "f" else _INT)
        out[taken] = tv
        out[~taken] = ov
        return out
    return vtern


# -- stores -----------------------------------------------------------------

def _reg_store(ctx: _Ctx, name: str, vals, sel):
    """Mirror of _ThreadEnv.store + _coerce for register targets."""
    decl = ctx.dtypes.get(name)
    reg = ctx.regs.get(name)
    if _is_arr(vals):
        if decl is not None:
            vals = vals.astype(decl)
        vkind = "f" if vals.dtype.kind == "f" else "i"
        vals = vals.astype(_FLT if vkind == "f" else _INT)
    else:
        if decl is not None:
            vals = np.dtype(decl).type(vals).item()
        vkind = _kind(vals)
    if reg is None:
        reg = np.zeros(ctx.nlanes, _FLT if vkind == "f" else _INT)
        ctx.regs[name] = reg
    elif ("f" if reg.dtype.kind == "f" else "i") != vkind:
        if len(sel) == ctx.nlanes:
            # Uniform-flow retype: every lane transitions together, exactly
            # as each scalar thread would.
            reg = np.zeros(ctx.nlanes, _FLT if vkind == "f" else _INT)
            ctx.regs[name] = reg
        else:
            raise VectorBailout(f"divergent retype of register {name!r}")
    reg[sel] = vals


def _compile_vstore(target: ast.Expr) -> Callable:
    if isinstance(target, ast.Name):
        name = target.id
        return lambda vals, ctx, sel: _reg_store(ctx, name, vals, sel)
    if isinstance(target, ast.Subscript):
        root, index_fns = _vsubscript_parts(target)

        def scatter(vals, ctx, sel):
            idxs = [fn(ctx, sel) for fn in index_fns]
            idxs.reverse()
            # The plan proved one-element-per-lane, so no dedup is needed.
            ctx.arrays[root][tuple(idxs)] = vals
        return scatter
    raise VectorBailout(f"store target {type(target).__name__}")


def _compile_vstmt(stmt: ast.Stmt) -> Callable:
    if isinstance(stmt, ast.Assign):
        value_fn = _vec_expr(stmt.value)
        store = _vec_store(stmt.target)
        if stmt.op:
            old_fn = _vec_expr(stmt.target)
            scalar_fn = _SCALAR_BINOPS[stmt.op]
            vector_fn = _VECTOR_BINOPS[stmt.op]

            def aug(ctx, sel):
                value = value_fn(ctx, sel)
                old = old_fn(ctx, sel)
                if _is_arr(old) or _is_arr(value):
                    store(vector_fn(old, value), ctx, sel)
                else:
                    store(scalar_fn(old, value), ctx, sel)
            return aug

        def plain(ctx, sel):
            store(value_fn(ctx, sel), ctx, sel)
        return plain
    if isinstance(stmt, ast.VarDecl):
        name = stmt.name
        ctype = stmt.ctype
        dtype = ctype.dtype if isinstance(ctype, Scalar) else None
        init_fn = _vec_expr(stmt.init) if stmt.init is not None else None

        def decl(ctx, sel):
            ctx.dtypes[name] = dtype
            vals = init_fn(ctx, sel) if init_fn is not None else 0
            _reg_store(ctx, name, vals, sel)
        return decl
    if isinstance(stmt, ast.ExprStmt):
        expr_fn = _vec_expr(stmt.expr)

        def run(ctx, sel):
            expr_fn(ctx, sel)
        return run
    raise VectorBailout(f"statement {type(stmt).__name__}")


# ---------------------------------------------------------------------------
# SIMT executor
# ---------------------------------------------------------------------------

def execute(spec, plan: VectorPlan, max_total_steps: int,
            collect_writes: bool = False, partials_out=None):
    """Run ``spec`` vectorized.  Returns (total_steps, max_thread_steps,
    reductions, write_sets) and commits array writes; raises
    :class:`VectorBailout` (device memory untouched) when exact semantics
    cannot be guaranteed.

    With ``collect_writes``, ``write_sets`` maps each written array to the
    element intervals whose bytes changed (scratch copy vs. pre-launch
    contents) — an under-approximation of the true store footprint (a store
    of an identical value is invisible), which is exactly the safe direction
    for the runtime's dirty-interval tracking; otherwise it is None."""
    nlanes = len(spec.threads)
    instrs = spec.instrs
    n = len(instrs)

    # Writes land in scratch copies, committed only on success.
    arrays = {
        name: (arr.copy() if name in plan.written_arrays else arr)
        for name, arr in spec.arrays.items()
    }
    ctx = _Ctx(nlanes, arrays, dict(spec.scalars))

    # Lane registers, mirroring KernelEngine.launch's per-thread setup.
    for k, var in enumerate(spec.index_vars):
        ctx.regs[var] = np.fromiter(
            (values[k] for values in spec.threads), _INT, count=nlanes
        )
    for name, dtype in spec.private_decls.items():
        ctx.dtypes[name] = dtype
        if dtype is not None:
            zero = np.dtype(dtype).type(0).item()
            work = _FLT if isinstance(zero, float) else _INT
            ctx.regs[name] = np.full(nlanes, zero, work)
        else:
            ctx.regs[name] = np.zeros(nlanes, _INT)
    for name, val in spec.firstprivate.items():
        if not isinstance(val, (int, float, np.integer, np.floating)):
            raise VectorBailout(f"non-scalar firstprivate {name!r}")
        val = val.item() if isinstance(val, np.generic) else val
        ctx.regs[name] = np.full(nlanes, val, _FLT if isinstance(val, float) else _INT)
    red_info = {name: (op, dtype) for name, op, dtype in spec.reductions}
    for name, (op, dtype) in red_info.items():
        init = identity(op)
        if dtype is not None:
            init = np.dtype(dtype).type(init).item()
            ctx.dtypes[name] = dtype
        ctx.regs[name] = np.full(nlanes, init, _FLT if isinstance(init, float) else _INT)

    pc = np.zeros(nlanes, _INT)
    steps = np.zeros(nlanes, _INT)
    total = 0
    if n == 0:
        pc += 1  # no instructions: every lane is born finished

    while True:
        active = pc < n
        if not active.any():
            break
        p = int(pc[active].min())
        m = active & (pc == p)
        sel = np.flatnonzero(m)
        instr = instrs[p]
        cls = type(instr)
        if cls is Simple:
            _vec_stmt(instr.stmt)(ctx, sel)
            pc[m] = p + 1
        elif cls is Branch:
            if instr.cond is None:
                pc[m] = p + 1
            else:
                cv = _vec_expr(instr.cond)(ctx, sel)
                if _is_arr(cv):
                    pc[sel] = np.where(cv != 0, p + 1, instr.target)
                else:
                    pc[m] = p + 1 if cv else instr.target
        elif cls is Jump:
            pc[m] = instr.target
        else:
            raise VectorBailout(f"instruction {cls.__name__}")
        steps[m] += 1
        total += len(sel)
        if total > max_total_steps:
            raise WatchdogTimeout(
                f"watchdog: kernel {spec.name!r} exceeded {max_total_steps} "
                "steps (possible infinite loop in kernel body)"
            )

    # Diff scratch against the pristine buffers (write footprints), then
    # commit scratch copies into the real device buffers.
    write_sets = None
    if collect_writes:
        from repro.device.transfer import diff_intervals

        write_sets = {
            name: diff_intervals(arrays[name], spec.arrays[name])
            for name in plan.written_arrays
        }
    for name in plan.written_arrays:
        spec.arrays[name][...] = arrays[name]

    reductions = {}
    for name, (op, dtype) in red_info.items():
        partials = ctx.regs[name].tolist()
        if partials_out is not None:
            # Lane-order partials for the multi-device merger: reducing the
            # concatenation of every shard's partials in one tree reproduces
            # the single-device combine order bit-for-bit.
            partials_out[name] = list(partials)
        reductions[name] = tree_reduce(op, partials, dtype)

    return total, int(steps.max()) if nlanes else 0, reductions, write_sets
