"""PCIe transfer and device-operation cost model.

All "time" in the simulator is *modeled* time, produced by this module and
accumulated by the profiler — not wall-clock.  The defaults approximate the
paper's testbed (Tesla M2090 behind PCIe 2.0 x16): ~10 µs per-transfer
latency, ~6 GB/s sustained bandwidth, small fixed costs for cudaMalloc/
cudaFree/kernel launch.  Figures 1/3/4 only need the *relative* shape, which
is insensitive to the exact constants (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Tunable cost constants (seconds / bytes-per-second).

    Calibration: the simulator runs the paper's workloads at miniature
    sizes (tens-to-hundreds of elements where the testbed used millions),
    so the constants are scaled to keep the *regime* faithful — one
    simulated element stands for ~10^6 real ones.  Bandwidth is therefore
    6e6 B/s instead of PCIe's 6e9 B/s, and per-element comparison reflects
    a host-side tolerant compare of a "large" element.  What the figures
    report is insensitive to the absolute values; the relative ordering
    (transfer >> alloc >> launch; compare ~ transfer-per-element) is what
    reproduces the paper's breakdowns.
    """

    transfer_latency_s: float = 10e-6
    transfer_bandwidth_Bps: float = 6e6
    alloc_latency_s: float = 20e-6
    free_latency_s: float = 10e-6
    launch_latency_s: float = 8e-6
    # Per-VM-step device compute cost.  One step is one simple statement of
    # one logical thread; the gap to cpu_step_s models the SIMT speedup.
    device_step_s: float = 2e-9
    cpu_step_s: float = 50e-9
    # Result-comparison cost per compared element (host-side, §III-A).
    compare_elem_s: float = 1e-6
    # One coherence check call (§III-B instrumentation, Figure 4 overhead).
    check_call_s: float = 120e-9
    # Base delay before re-issuing an operation that hit a transient fault
    # (doubles per attempt; see CostModel.backoff_time).  Modeled time, like
    # everything else here — the retry layer charges it to the profiler.
    retry_backoff_s: float = 100e-6

    def transfer_time(self, nbytes: int) -> float:
        """h2d / d2h transfer of ``nbytes``."""
        return self.transfer_latency_s + nbytes / self.transfer_bandwidth_Bps

    def backoff_time(self, attempt: int) -> float:
        """Exponential backoff before retry number ``attempt`` (0-based)."""
        return self.retry_backoff_s * (2 ** attempt)

    def kernel_time(self, total_steps: int) -> float:
        """Device time for a launch that executed ``total_steps`` VM steps."""
        return self.launch_latency_s + total_steps * self.device_step_s

    def cpu_time(self, total_steps: int) -> float:
        return total_steps * self.cpu_step_s

    def compare_time(self, elements: int) -> float:
        return elements * self.compare_elem_s


DEFAULT_COSTS = CostModel()
