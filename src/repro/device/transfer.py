"""PCIe transfer and device-operation cost model + interval batching.

All "time" in the simulator is *modeled* time, produced by this module and
accumulated by the profiler — not wall-clock.  The defaults approximate the
paper's testbed (Tesla M2090 behind PCIe 2.0 x16): ~10 µs per-transfer
latency, ~6 GB/s sustained bandwidth, small fixed costs for cudaMalloc/
cudaFree/kernel launch.  Figures 1/3/4 only need the *relative* shape, which
is insensitive to the exact constants (see DESIGN.md §2).

This module is also the byte-accurate transfer engine's toolbox: interval
coalescing under a merge gap (:func:`coalesce_intervals`), bitwise
host/device diffing (:func:`diff_intervals`), and the batched cost formula
(:meth:`CostModel.transfer_time_batched`) — one latency per coalesced batch
plus bandwidth per byte actually moved.  A single whole-array batch prices
identically to the classic :meth:`CostModel.transfer_time`, which keeps
full-dirty delta transfers bit-identical to whole-array mode."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class CostModel:
    """Tunable cost constants (seconds / bytes-per-second).

    Calibration: the simulator runs the paper's workloads at miniature
    sizes (tens-to-hundreds of elements where the testbed used millions),
    so the constants are scaled to keep the *regime* faithful — one
    simulated element stands for ~10^6 real ones.  Bandwidth is therefore
    6e6 B/s instead of PCIe's 6e9 B/s, and per-element comparison reflects
    a host-side tolerant compare of a "large" element.  What the figures
    report is insensitive to the absolute values; the relative ordering
    (transfer >> alloc >> launch; compare ~ transfer-per-element) is what
    reproduces the paper's breakdowns.
    """

    transfer_latency_s: float = 10e-6
    transfer_bandwidth_Bps: float = 6e6
    alloc_latency_s: float = 20e-6
    free_latency_s: float = 10e-6
    launch_latency_s: float = 8e-6
    # Per-VM-step device compute cost.  One step is one simple statement of
    # one logical thread; the gap to cpu_step_s models the SIMT speedup.
    device_step_s: float = 2e-9
    cpu_step_s: float = 50e-9
    # Result-comparison cost per compared element (host-side, §III-A).
    compare_elem_s: float = 1e-6
    # One coherence check call (§III-B instrumentation, Figure 4 overhead).
    check_call_s: float = 120e-9
    # Base delay before re-issuing an operation that hit a transient fault
    # (doubles per attempt; see CostModel.backoff_time).  Modeled time, like
    # everything else here — the retry layer charges it to the profiler.
    retry_backoff_s: float = 100e-6
    # Peer-to-peer (device-to-device) link, multi-device runs only.  NVLink-
    # style: half the PCIe latency, twice the bandwidth, same miniature
    # scaling as the rest of the model.
    p2p_latency_s: float = 5e-6
    p2p_bandwidth_Bps: float = 12e6

    def transfer_time(self, nbytes: int) -> float:
        """h2d / d2h transfer of ``nbytes``."""
        return self.transfer_latency_s + nbytes / self.transfer_bandwidth_Bps

    def p2p_time_batched(self, nbatches: int, nbytes: int) -> float:
        """Device-to-device copy over the modeled P2P link: one link latency
        per contiguous batch, bandwidth per byte.  Zero batches cost zero."""
        return nbatches * self.p2p_latency_s + nbytes / self.p2p_bandwidth_Bps

    def transfer_time_batched(self, nbatches: int, nbytes: int) -> float:
        """Interval-batched transfer: one latency per batch, bandwidth per
        byte.  ``transfer_time_batched(1, n) == transfer_time(n)``; zero
        batches move nothing and cost nothing."""
        return nbatches * self.transfer_latency_s + nbytes / self.transfer_bandwidth_Bps

    def merge_break_even_bytes(self) -> int:
        """Gap size at which transferring filler bytes costs the same as an
        extra batch latency (the natural default merge gap)."""
        return int(self.transfer_latency_s * self.transfer_bandwidth_Bps)

    def backoff_time(self, attempt: int) -> float:
        """Exponential backoff before retry number ``attempt`` (0-based)."""
        return self.retry_backoff_s * (2 ** attempt)

    def kernel_time(self, total_steps: int) -> float:
        """Device time for a launch that executed ``total_steps`` VM steps."""
        return self.launch_latency_s + total_steps * self.device_step_s

    def cpu_time(self, total_steps: int) -> float:
        return total_steps * self.cpu_step_s

    def compare_time(self, elements: int) -> float:
        return elements * self.compare_elem_s


DEFAULT_COSTS = CostModel()


# ---------------------------------------------------------------------------
# Interval batching / diffing (the byte-accurate transfer engine)
# ---------------------------------------------------------------------------

def coalesce_intervals(intervals: Sequence[Tuple[int, int]],
                       gap_elems: int) -> List[Tuple[int, int]]:
    """Merge sorted, disjoint element intervals whose gap is at most
    ``gap_elems`` elements.  The filler elements inside a closed gap ride
    along in the batch (and are charged as moved bytes); merging pays off
    whenever the gap is below the latency/bandwidth break-even."""
    out: List[Tuple[int, int]] = []
    for start, stop in intervals:
        if out and start - out[-1][1] <= gap_elems:
            out[-1] = (out[-1][0], max(out[-1][1], stop))
        else:
            out.append((start, stop))
    return out


def mask_to_intervals(mask: np.ndarray) -> List[Tuple[int, int]]:
    """Runs of True in a flat boolean mask, as ``[start, stop)`` intervals."""
    if not mask.any():
        return []
    flat = mask.reshape(-1)
    boundaries = np.flatnonzero(np.diff(flat.astype(np.int8)))
    edges = np.concatenate(([0], boundaries + 1, [flat.size]))
    return [
        (int(edges[i]), int(edges[i + 1]))
        for i in range(len(edges) - 1)
        if flat[edges[i]]
    ]


def bitwise_neq_mask(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Flat boolean mask of elements whose *bytes* differ.

    Plain ``!=`` would call two NaNs different (good: the copy is taken and
    stays conservative) but +0.0 and -0.0 equal (bad: skipping the copy
    would leave the destination bit-different from a whole-array transfer).
    Comparing the raw bytes makes delta transfers bit-exact for every dtype.
    """
    af = np.ascontiguousarray(a).reshape(-1)
    bf = np.ascontiguousarray(b).reshape(-1)
    if af.itemsize == 1:
        return af.view(np.uint8) != bf.view(np.uint8)
    av = af.view(np.uint8).reshape(af.size, af.itemsize)
    bv = bf.view(np.uint8).reshape(bf.size, bf.itemsize)
    return (av != bv).any(axis=1)


def diff_intervals(a: np.ndarray, b: np.ndarray) -> List[Tuple[int, int]]:
    """Element intervals (over the flattened arrays) where ``a`` and ``b``
    differ bitwise — the soundness net under delta transfers: anything the
    dirty tracking missed still shows up here and gets copied."""
    return mask_to_intervals(bitwise_neq_mask(a, b))
