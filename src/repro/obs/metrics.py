"""Unified metrics registry: counters + histograms.

The registry absorbs the historical ``Profiler.count`` counters (the
profiler keeps its ``counters`` dict as a compatibility view into its
registry) and adds power-of-two histograms for value distributions the
counters flatten away — per-batch transfer bytes, retry backoff latencies.

Registries chain: a per-profiler registry can point at a context-level
``parent``, so every count/observation lands both in the owning runtime's
view (what the historical tests and the byte guard read) and in the
:class:`~repro.toolchain.ToolchainContext`'s run-wide aggregate (what the
RunReport exports).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

__all__ = ["Histogram", "MetricsRegistry"]


class Histogram:
    """Power-of-two-bucketed distribution (count/sum/min/max + buckets).

    Bucket key ``k`` counts observations with ``2**(k-1) < value <= 2**k``
    (``value <= 0`` lands in the dedicated ``zero`` bucket), which spans
    bytes (large ints) and latencies (small floats) with one scheme.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}
        # ``zero`` bucket rides in the dict under the sentinel key below.

    _ZERO_BUCKET = -(10 ** 6)

    def observe(self, value) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value <= 0.0:
            key = self._ZERO_BUCKET
        else:
            key = math.ceil(math.log2(value))
        self.buckets[key] = self.buckets.get(key, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        buckets = {
            ("zero" if k == self._ZERO_BUCKET else f"le_2^{k}"): n
            for k, n in sorted(self.buckets.items())
        }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }

    def __repr__(self):
        return f"Histogram(count={self.count}, sum={self.total})"


class MetricsRegistry:
    """Named counters and histograms, optionally mirrored into a parent."""

    def __init__(self, parent: Optional["MetricsRegistry"] = None):
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.parent = parent

    def count(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta
        if self.parent is not None:
            self.parent.count(name, delta)

    def observe(self, name: str, value) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)
        if self.parent is not None:
            self.parent.observe(name, value)

    def snapshot(self) -> Dict[str, object]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: hist.snapshot()
                for name, hist in sorted(self.histograms.items())
            },
        }

    def reset(self) -> None:
        """Clear this registry's own state (the parent keeps its aggregate)."""
        self.counters.clear()
        self.histograms.clear()

    # -- checkpoint support -------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Deep copy of counters and histograms (checkpoint payload)."""
        return {
            "counters": dict(self.counters),
            "histograms": {
                name: (hist.count, hist.total, hist.min, hist.max,
                       dict(hist.buckets))
                for name, hist in self.histograms.items()
            },
        }

    def restore_state(self, state: Dict[str, object],
                      keep_prefixes: Iterable[str] = ()) -> None:
        """Rewind to a :meth:`snapshot_state` capture.  Counters whose names
        start with one of ``keep_prefixes`` keep their current values instead
        of rewinding (and are dropped from the snapshot side entirely, so a
        resume never double-counts them).  The parent is untouched — a
        chained run-wide aggregate keeps counting monotonically."""
        keep = tuple(keep_prefixes)
        kept = {name: value for name, value in self.counters.items()
                if name.startswith(keep)} if keep else {}
        self.counters.clear()
        for name, value in state["counters"].items():
            if not (keep and name.startswith(keep)):
                self.counters[name] = value
        self.counters.update(kept)
        self.histograms.clear()
        for name, (count, total, vmin, vmax, buckets) in state["histograms"].items():
            hist = Histogram()
            hist.count = count
            hist.total = total
            hist.min = vmin
            hist.max = vmax
            hist.buckets = dict(buckets)
            self.histograms[name] = hist
