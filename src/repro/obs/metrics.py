"""Unified metrics registry: counters + histograms.

The registry absorbs the historical ``Profiler.count`` counters (the
profiler keeps its ``counters`` dict as a compatibility view into its
registry) and adds power-of-two histograms for value distributions the
counters flatten away — per-batch transfer bytes, retry backoff latencies.

Registries chain: a per-profiler registry can point at a context-level
``parent``, so every count/observation lands both in the owning runtime's
view (what the historical tests and the byte guard read) and in the
:class:`~repro.toolchain.ToolchainContext`'s run-wide aggregate (what the
RunReport exports).
"""

from __future__ import annotations

import math
import re
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "WindowedHistogram",
    "is_registered_counter",
    "register_counter",
    "register_counter_prefix",
    "registered_counter_prefixes",
    "registered_counters",
]

# ---------------------------------------------------------------------------
# Counter-name registry.  One module-level source of truth for every counter
# the toolchain may bump; ``Profiler.count`` rejects anything else.  The
# registry lives here (the obs layer) so that every layer that mints counter
# names — runtime, service, device — declares them against the same set;
# :mod:`repro.runtime.profiler` re-exports these for compatibility.
# ---------------------------------------------------------------------------

_COUNTER_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")
_REGISTERED_COUNTERS: set = set()
_REGISTERED_PREFIXES: set = set()


def register_counter(name: str) -> str:
    """Declare a counter name (``noun.verb`` dotted lowercase) and return it,
    so declarations double as the ``CTR_*`` constant definitions."""
    if not _COUNTER_NAME_RE.match(name):
        raise ValueError(
            f"counter name {name!r} does not follow the dotted-lowercase "
            f"noun.verb convention (e.g. 'launch.retried')")
    _REGISTERED_COUNTERS.add(name)
    return name


def register_counter_prefix(prefix: str) -> str:
    """Declare a dynamic counter family (e.g. ``fault.injected.<kind>``);
    the prefix must itself end with a dot."""
    if not prefix.endswith(".") or not _COUNTER_NAME_RE.match(prefix[:-1]):
        raise ValueError(f"counter prefix {prefix!r} must be dotted lowercase "
                         f"ending in '.'")
    _REGISTERED_PREFIXES.add(prefix)
    return prefix


def is_registered_counter(name: str) -> bool:
    if name in _REGISTERED_COUNTERS:
        return True
    return any(name.startswith(p) and _COUNTER_NAME_RE.match(name)
               for p in _REGISTERED_PREFIXES)


def registered_counters() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTERED_COUNTERS))


def registered_counter_prefixes() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTERED_PREFIXES))


class Histogram:
    """Power-of-two-bucketed distribution (count/sum/min/max + buckets).

    Bucket key ``k`` counts observations with ``2**(k-1) < value <= 2**k``
    (``value <= 0`` lands in the dedicated ``zero`` bucket), which spans
    bytes (large ints) and latencies (small floats) with one scheme.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}
        # ``zero`` bucket rides in the dict under the sentinel key below.

    _ZERO_BUCKET = -(10 ** 6)

    def observe(self, value) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value <= 0.0:
            key = self._ZERO_BUCKET
        else:
            key = math.ceil(math.log2(value))
        self.buckets[key] = self.buckets.get(key, 0) + 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram (in place)."""
        if other.count == 0:
            return self
        self.count += other.count
        self.total += other.total
        self.min = other.min if self.min is None else min(self.min, other.min)
        self.max = other.max if self.max is None else max(self.max, other.max)
        for key, n in other.buckets.items():
            self.buckets[key] = self.buckets.get(key, 0) + n
        return self

    @classmethod
    def bucket_bounds(cls, key: int) -> Tuple[float, float]:
        """``(lo, hi]`` value bounds of bucket ``key`` (zero bucket: (0, 0])."""
        if key == cls._ZERO_BUCKET:
            return (0.0, 0.0)
        return (2.0 ** (key - 1), 2.0 ** key)

    def buckets_le(self) -> List[Dict[str, object]]:
        """Cumulative (Prometheus-style) buckets: ``[{"le": bound, "count": n},
        ..., {"le": "+Inf", "count": total}]``.  External tooling can recompute
        percentiles from these without knowing the power-of-two scheme."""
        out: List[Dict[str, object]] = []
        cumulative = 0
        for key, n in sorted(self.buckets.items()):
            cumulative += n
            bound = 0.0 if key == self._ZERO_BUCKET else 2.0 ** key
            out.append({"le": bound, "count": cumulative})
        out.append({"le": "+Inf", "count": self.count})
        return out

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-interpolated quantile estimate (``q`` in [0, 1]).  Linear
        interpolation inside the containing power-of-two bucket, tightened by
        the observed min/max at the extremes.  None when empty."""
        if self.count == 0:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for key, n in sorted(self.buckets.items()):
            if cumulative + n >= rank:
                lo, hi = self.bucket_bounds(key)
                lo = max(lo, self.min if self.min is not None else lo)
                hi = min(hi, self.max if self.max is not None else hi)
                if hi <= lo:
                    return lo
                return lo + (hi - lo) * (rank - cumulative) / n
            cumulative += n
        return self.max

    def snapshot(self) -> Dict[str, object]:
        buckets = {
            ("zero" if k == self._ZERO_BUCKET else f"le_2^{k}"): n
            for k, n in sorted(self.buckets.items())
        }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
            "cumulative": self.buckets_le(),
        }

    def __repr__(self):
        return f"Histogram(count={self.count}, sum={self.total})"


class WindowedHistogram:
    """Sliding-window time-series of :class:`Histogram`\\ s.

    A ring of ``slots`` power-of-two histograms, each covering
    ``window_s / slots`` seconds of wall clock; observations land in the
    current slot, and :meth:`merged` folds the still-live slots into one
    histogram covering (at most) the trailing ``window_s`` seconds.  Slots
    are recycled lazily on access — an idle window costs nothing.
    Thread-safe: the daemon's worker threads observe concurrently.
    """

    __slots__ = ("window_s", "slots", "slot_s", "_clock", "_ring", "_lock")

    def __init__(self, window_s: float = 60.0, slots: int = 6,
                 clock=time.monotonic):
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = float(window_s)
        self.slots = int(slots)
        self.slot_s = self.window_s / self.slots
        self._clock = clock
        # ring[i] = [slot_epoch, Histogram]; epoch is the global slot index,
        # so a stale entry is detected (and recycled) without a sweeper.
        self._ring: List[List[object]] = [[-1, Histogram()]
                                          for _ in range(self.slots)]
        self._lock = threading.Lock()

    def _epoch(self) -> int:
        return int(self._clock() / self.slot_s)

    def observe(self, value) -> None:
        epoch = self._epoch()
        i = epoch % self.slots
        with self._lock:
            slot = self._ring[i]
            if slot[0] != epoch:
                slot[0] = epoch
                slot[1] = Histogram()
            slot[1].observe(value)

    def merged(self) -> Histogram:
        """One histogram folding every slot still inside the window."""
        epoch = self._epoch()
        live_from = epoch - self.slots + 1
        out = Histogram()
        with self._lock:
            for slot_epoch, hist in self._ring:
                if slot_epoch >= live_from:
                    out.merge(hist)
        return out

    def __repr__(self):
        return (f"WindowedHistogram(window_s={self.window_s}, "
                f"slots={self.slots})")


class MetricsRegistry:
    """Named counters and histograms, optionally mirrored into a parent."""

    def __init__(self, parent: Optional["MetricsRegistry"] = None):
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.parent = parent

    def count(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta
        if self.parent is not None:
            self.parent.count(name, delta)

    def observe(self, name: str, value) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)
        if self.parent is not None:
            self.parent.observe(name, value)

    def snapshot(self) -> Dict[str, object]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: hist.snapshot()
                for name, hist in sorted(self.histograms.items())
            },
        }

    def reset(self) -> None:
        """Clear this registry's own state (the parent keeps its aggregate)."""
        self.counters.clear()
        self.histograms.clear()

    # -- checkpoint support -------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Deep copy of counters and histograms (checkpoint payload)."""
        return {
            "counters": dict(self.counters),
            "histograms": {
                name: (hist.count, hist.total, hist.min, hist.max,
                       dict(hist.buckets))
                for name, hist in self.histograms.items()
            },
        }

    def restore_state(self, state: Dict[str, object],
                      keep_prefixes: Iterable[str] = ()) -> None:
        """Rewind to a :meth:`snapshot_state` capture.  Counters whose names
        start with one of ``keep_prefixes`` keep their current values instead
        of rewinding (and are dropped from the snapshot side entirely, so a
        resume never double-counts them).  The parent is untouched — a
        chained run-wide aggregate keeps counting monotonically."""
        keep = tuple(keep_prefixes)
        kept = {name: value for name, value in self.counters.items()
                if name.startswith(keep)} if keep else {}
        self.counters.clear()
        for name, value in state["counters"].items():
            if not (keep and name.startswith(keep)):
                self.counters[name] = value
        self.counters.update(kept)
        self.histograms.clear()
        for name, (count, total, vmin, vmax, buckets) in state["histograms"].items():
            hist = Histogram()
            hist.count = count
            hist.total = total
            hist.min = vmin
            hist.max = vmax
            hist.buckets = dict(buckets)
            self.histograms[name] = hist
