"""Span-based tracer.

A :class:`Span` is one named, nested unit of toolchain work — a compiler
pass, a memory transfer, a kernel launch, a verification compare — carrying
wall-clock start/end, the modeled-time window when a modeled clock is wired
(:attr:`Tracer.modeled_clock`), structured attributes, and point-in-time
:class:`SpanEvent`\\ s (chaos injections, retries, coherence transitions).

Nesting is per thread: each thread owns its own open-span stack, so the
parallel experiment scheduler's worker threads (and any future threaded
stage) produce correctly parented spans without cross-talk.  Span ids are
allocated under one lock and finished spans land in one shared list, so a
multi-threaded trace still exports as a single coherent timeline.

The tracer never touches the simulated clock, the chaos RNG, or any device
state — a traced run is bit-identical to an untraced one by construction.
Tracing is off by default via :data:`NULL_TRACER`, whose every method is a
no-op returning the shared :data:`_NULL_SPAN`, so instrumented hot paths pay
only one attribute lookup and one call when disabled.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

__all__ = ["NULL_TRACER", "NullTracer", "Span", "SpanEvent", "Tracer"]


class SpanEvent:
    """One point-in-time occurrence attached to a span."""

    __slots__ = ("name", "wall", "modeled", "attrs")

    def __init__(self, name: str, wall: float, modeled: Optional[float],
                 attrs: Dict[str, object]):
        self.name = name
        self.wall = wall
        self.modeled = modeled
        self.attrs = attrs

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"name": self.name, "attrs": dict(self.attrs)}
        if self.modeled is not None:
            out["modeled_s"] = self.modeled
        return out

    def __repr__(self):
        return f"SpanEvent({self.name!r}, {self.attrs})"


class Span:
    """One nested unit of traced work.  Used as a context manager:

    >>> with tracer.span("transfer", category="runtime.transfer", var="a") as sp:
    ...     sp.set_attr("bytes", 128)
    ...     sp.event("retry", kind="transfer.transient")
    """

    __slots__ = ("tracer", "span_id", "parent_id", "name", "category",
                 "wall_start", "wall_end", "modeled_start", "modeled_end",
                 "attrs", "events", "thread_id")

    def __init__(self, tracer: "Tracer", span_id: int, name: str,
                 category: str, attrs: Dict[str, object]):
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = 0
        self.name = name
        self.category = category
        self.wall_start = 0.0
        self.wall_end = 0.0
        self.modeled_start: Optional[float] = None
        self.modeled_end: Optional[float] = None
        self.attrs = attrs
        self.events: List[SpanEvent] = []
        self.thread_id = 0

    # -- context manager ---------------------------------------------------
    def __enter__(self) -> "Span":
        self.tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._close(self)
        return False

    # -- payload -----------------------------------------------------------
    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def event(self, name: str, /, **attrs) -> None:
        self.events.append(SpanEvent(
            name, self.tracer._wall(), self.tracer._modeled_now(), attrs
        ))

    @property
    def wall_seconds(self) -> float:
        return max(0.0, self.wall_end - self.wall_start)

    @property
    def modeled_seconds(self) -> Optional[float]:
        if self.modeled_start is None or self.modeled_end is None:
            return None
        return max(0.0, self.modeled_end - self.modeled_start)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "cat": self.category,
            "wall_s": self.wall_seconds,
            "attrs": dict(self.attrs),
            "events": [e.to_dict() for e in self.events],
        }
        modeled = self.modeled_seconds
        if modeled is not None:
            out["modeled_s"] = modeled
        return out

    def __repr__(self):
        return f"Span({self.name!r}, cat={self.category!r}, id={self.span_id})"


class _NullSpan:
    """Shared do-nothing span: what :data:`NULL_TRACER` hands out."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set_attr(self, key: str, value) -> None:
        pass

    def event(self, name: str, /, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every call is a no-op (tracing off by default)."""

    enabled = False
    modeled_clock: Optional[Callable[[], float]] = None
    trace_context = None
    sinks: tuple = ()

    def span(self, name: str, category: str = "run", **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, /, **attrs) -> None:
        pass

    def current(self) -> None:
        return None


NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans and events for one run (see module docstring)."""

    enabled = True

    def __init__(self, wall_clock: Callable[[], float] = time.perf_counter):
        self._wall = wall_clock
        self.epoch = wall_clock()
        # Modeled-time source (e.g. ``lambda: profiler.now``); installed by
        # the runtime so spans carry both clocks.  None -> wall only.
        self.modeled_clock: Optional[Callable[[], float]] = None
        # Identity of the request/run this tracer serves (stamped on exports
        # and reports); None outside the service/trace plumbing.
        self.trace_context = None
        # Live observers (flight-recorder sinks): each gets record_span /
        # record_event callbacks as spans finish.  Empty by default, so the
        # common path pays one truth test per closed span.
        self.sinks: List[object] = []
        self.spans: List[Span] = []          # finished spans, finish order
        self.orphan_events: List[SpanEvent] = []  # events with no open span
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 1
        self._next_thread = 1

    # -- internals ---------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _thread_id(self) -> int:
        tid = getattr(self._local, "tid", None)
        if tid is None:
            with self._lock:
                tid = self._local.tid = self._next_thread
                self._next_thread += 1
        return tid

    def _modeled_now(self) -> Optional[float]:
        clock = self.modeled_clock
        return clock() if clock is not None else None

    def _open(self, span: Span) -> None:
        stack = self._stack()
        span.parent_id = stack[-1].span_id if stack else 0
        span.thread_id = self._thread_id()
        span.modeled_start = self._modeled_now()
        span.wall_start = self._wall()
        stack.append(span)

    def _close(self, span: Span) -> None:
        span.wall_end = self._wall()
        span.modeled_end = self._modeled_now()
        stack = self._stack()
        # Tolerate exception-driven unwinding: pop through to this span.
        while stack:
            top = stack.pop()
            if top is span:
                break
        with self._lock:
            self.spans.append(span)
        for sink in self.sinks:
            sink.record_span(span)

    # -- public API ---------------------------------------------------------
    def span(self, name: str, category: str = "run", **attrs) -> Span:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(self, span_id, name, category, attrs)

    def event(self, name: str, /, **attrs) -> None:
        """Attach an event to the innermost open span of this thread (or to
        the orphan list when nothing is open)."""
        stack = self._stack()
        if stack:
            stack[-1].event(name, **attrs)
        else:
            event = SpanEvent(name, self._wall(), self._modeled_now(), attrs)
            with self._lock:
                self.orphan_events.append(event)
            for sink in self.sinks:
                sink.record_event(event)

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def sorted_spans(self) -> List[Span]:
        """Finished spans in start order (stable across the finish-order
        nondeterminism of threaded runs)."""
        with self._lock:
            return sorted(self.spans, key=lambda s: (s.wall_start, s.span_id))
