"""Live telemetry plane: trace contexts, rolling daemon statistics, and the
crash flight recorder.

Three cooperating pieces, all zero-cost when unused:

* :class:`TraceContext` — a ``trace_id``/``request_id`` pair minted by the
  service client (or by the daemon when a request arrives without one),
  carried through the NDJSON protocol, stamped on every span, RunReport and
  flight-recorder entry produced by that request, and shipped to experiment
  pool workers so a multi-process run stitches into one coherent trace.

* :class:`Telemetry` — the daemon's rolling statistics: per-verb request
  latency over a sliding window (:class:`~repro.obs.metrics.WindowedHistogram`
  ring of power-of-two histograms), queue-depth / in-flight gauges, worker
  utilization (busy seconds in the window over ``window × workers``), and
  cumulative per-device busy time / D2D halo traffic folded in from each
  request's :class:`~repro.device.deviceset.DeviceSet`.  Everything is
  *read-only over runtime state* — recording telemetry never touches the
  modeled clock, the chaos RNG, or any device memory, so telemetry-enabled
  responses stay byte-identical to the offline CLI.

* :class:`FlightRecorder` — a bounded ring of recent spans/events (one ring
  per request plus one daemon-lifetime ring) dumped into the RunReport and
  error payload on any failure path, so post-mortems ship their own black
  box instead of requiring a re-run with ``--trace``.
"""

from __future__ import annotations

import collections
import threading
import time
import uuid
from typing import Dict, List, Optional

from repro.obs.metrics import WindowedHistogram

__all__ = [
    "FlightRecorder",
    "Telemetry",
    "TraceContext",
    "render_prometheus",
]


class TraceContext:
    """One request's identity: ``trace_id`` names the end-to-end trace (the
    client's session of related requests), ``request_id`` names this hop."""

    __slots__ = ("trace_id", "request_id")

    def __init__(self, trace_id: str, request_id: Optional[str] = None):
        self.trace_id = trace_id
        self.request_id = request_id

    @classmethod
    def mint(cls, request_id: Optional[str] = None) -> "TraceContext":
        return cls(uuid.uuid4().hex[:16], request_id)

    def to_dict(self) -> Dict[str, Optional[str]]:
        return {"trace_id": self.trace_id, "request_id": self.request_id}

    def __eq__(self, other):
        return (isinstance(other, TraceContext)
                and other.trace_id == self.trace_id
                and other.request_id == self.request_id)

    def __repr__(self):
        return (f"TraceContext(trace_id={self.trace_id!r}, "
                f"request_id={self.request_id!r})")

    # Plain __getstate__/__setstate__ so the experiment scheduler can ship a
    # context to ProcessPoolExecutor workers despite __slots__.
    def __getstate__(self):
        return (self.trace_id, self.request_id)

    def __setstate__(self, state):
        self.trace_id, self.request_id = state


class FlightRecorder:
    """Bounded ring of recent observability entries (the black box).

    Entries are plain dicts (``kind`` of ``span``/``event``/``request``) so a
    dump is directly JSON-serializable into reports and error payloads.  The
    recorder itself never raises and never blocks beyond a ring append.
    """

    def __init__(self, capacity: int = 256):
        self.capacity = int(capacity)
        self._ring = collections.deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self.dropped = 0

    def record(self, entry: Dict[str, object]) -> None:
        with self._lock:
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(entry)

    def tail(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        with self._lock:
            entries = list(self._ring)
        if limit is not None and limit >= 0:
            entries = entries[-limit:]
        return entries

    def __len__(self):
        with self._lock:
            return len(self._ring)

    def sink(self, tag: Optional[Dict[str, object]] = None) -> "_RecorderSink":
        """A tracer sink feeding this ring, tagging every entry with ``tag``
        (e.g. the request's trace/request ids)."""
        return _RecorderSink(self, dict(tag or {}))


class _RecorderSink:
    """Adapter from :class:`~repro.obs.tracer.Tracer` sink callbacks to
    compact, JSON-safe :class:`FlightRecorder` entries."""

    __slots__ = ("recorder", "tag")

    def __init__(self, recorder: FlightRecorder, tag: Dict[str, object]):
        self.recorder = recorder
        self.tag = tag

    @staticmethod
    def _safe_attrs(attrs: Dict[str, object]) -> Dict[str, object]:
        return {
            key: (value if isinstance(value, (int, float, str, bool,
                                              type(None)))
                  else repr(value))
            for key, value in attrs.items()
        }

    def record_span(self, span) -> None:
        entry: Dict[str, object] = {
            "kind": "span",
            "name": span.name,
            "cat": span.category,
            "wall_s": span.wall_seconds,
            "attrs": self._safe_attrs(span.attrs),
        }
        modeled = span.modeled_seconds
        if modeled is not None:
            entry["modeled_s"] = modeled
        if span.events:
            entry["events"] = [
                {"name": e.name, "attrs": self._safe_attrs(e.attrs)}
                for e in span.events
            ]
        entry.update(self.tag)
        self.recorder.record(entry)

    def record_event(self, event) -> None:
        entry = {
            "kind": "event",
            "name": event.name,
            "attrs": self._safe_attrs(event.attrs),
        }
        entry.update(self.tag)
        self.recorder.record(entry)


class Telemetry:
    """The daemon's rolling statistics (see module docstring).

    Lifecycle hooks (``request_submitted`` → ``request_started`` →
    ``request_finished``) are called by the daemon around each request;
    ``record_run`` folds per-device numbers out of a finished request's
    runtime.  :meth:`snapshot` renders everything into one JSON-safe dict —
    the payload of the ``stats`` protocol verb and the input of
    :func:`render_prometheus` and ``repro top``.
    """

    def __init__(self, workers: int = 1, window_s: float = 60.0,
                 slots: int = 6, clock=time.monotonic):
        self.workers = max(1, int(workers))
        self.window_s = float(window_s)
        self._slots = int(slots)
        self._clock = clock
        self.started_at = clock()
        self._lock = threading.Lock()
        self._latency: Dict[str, WindowedHistogram] = {}
        # Busy seconds per finished request, in-window: utilization numerator.
        self._busy = WindowedHistogram(window_s, slots, clock)
        self._queue_depth = 0
        self._inflight = 0
        self._finished = 0
        self._errors = 0
        # Cumulative per-device aggregates (devices appear on first use).
        self._device_busy: Dict[int, float] = {}
        self._device_launches: Dict[int, int] = {}
        self._d2d_bytes = 0
        self._d2d_copies = 0

    # -- request lifecycle ---------------------------------------------------
    def request_submitted(self) -> None:
        with self._lock:
            self._queue_depth += 1

    def request_started(self, verb: str) -> None:
        with self._lock:
            if self._queue_depth > 0:
                self._queue_depth -= 1
            self._inflight += 1

    def request_finished(self, verb: str, elapsed_s: float, ok: bool) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            self._finished += 1
            if not ok:
                self._errors += 1
            hist = self._latency.get(verb)
            if hist is None:
                hist = self._latency[verb] = WindowedHistogram(
                    self.window_s, self._slots, self._clock)
        hist.observe(elapsed_s * 1e3)
        self._busy.observe(elapsed_s)

    # -- device aggregates ---------------------------------------------------
    def record_run(self, runtime) -> None:
        """Fold a finished request's per-device numbers into the lifetime
        aggregates.  Reads runtime state only; never mutates it."""
        devset = getattr(runtime, "devset", None)
        if devset is None:
            return
        busy = list(getattr(devset, "busy_s", ()))
        with self._lock:
            for dev, seconds in enumerate(busy):
                self._device_busy[dev] = self._device_busy.get(dev, 0.0) + seconds
                if seconds > 0.0:
                    self._device_launches[dev] = \
                        self._device_launches.get(dev, 0) + 1
            self._d2d_bytes += getattr(devset, "bytes_d2d", 0)
            self._d2d_copies += getattr(devset, "d2d_copies", 0)

    # -- derived views -------------------------------------------------------
    def utilization(self) -> float:
        """Busy seconds inside the window over ``window × workers`` (the
        window is clipped to the daemon's uptime while warming up)."""
        window = min(self.window_s, max(1e-9, self._clock() - self.started_at))
        busy = self._busy.merged().total
        return min(1.0, busy / (window * self.workers))

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            latency = dict(self._latency)
            device_busy = dict(self._device_busy)
            device_launches = dict(self._device_launches)
            queue_depth = self._queue_depth
            inflight = self._inflight
            finished = self._finished
            errors = self._errors
            d2d_bytes = self._d2d_bytes
            d2d_copies = self._d2d_copies
        uptime = max(0.0, self._clock() - self.started_at)
        window = min(self.window_s, max(1e-9, uptime))
        verbs: Dict[str, Dict[str, object]] = {}
        for verb, whist in sorted(latency.items()):
            merged = whist.merged()
            if merged.count == 0:
                continue
            verbs[verb] = {
                "count": merged.count,
                "rate_rps": merged.count / window,
                "mean_ms": merged.total / merged.count,
                "p50_ms": merged.quantile(0.50),
                "p95_ms": merged.quantile(0.95),
                "p99_ms": merged.quantile(0.99),
                "max_ms": merged.max,
                "buckets": merged.buckets_le(),
            }
        devices: Dict[str, Dict[str, object]] = {}
        for dev in sorted(device_busy):
            devices[str(dev)] = {
                "busy_s": device_busy[dev],
                "requests": device_launches.get(dev, 0),
            }
        busy_values = [v for v in device_busy.values() if v > 0.0]
        imbalance = None
        if busy_values:
            mean = sum(busy_values) / len(busy_values)
            imbalance = (max(busy_values) / mean) if mean > 0 else None
        return {
            "uptime_s": uptime,
            "window_s": self.window_s,
            "workers": self.workers,
            "requests": finished,
            "errors": errors,
            "inflight": inflight,
            "queue_depth": queue_depth,
            "utilization": self.utilization(),
            "verbs": verbs,
            "devices": devices,
            "shard_imbalance": imbalance,
            "d2d": {"bytes": d2d_bytes, "copies": d2d_copies},
        }


def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch == "_") else "_")
    text = "".join(out)
    if not text or not (text[0].isalpha() or text[0] == "_"):
        text = "_" + text
    return text


def _prom_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(snapshot: Dict[str, object],
                      counters: Optional[Dict[str, int]] = None,
                      cache: Optional[Dict[str, Dict[str, object]]] = None,
                      namespace: str = "repro") -> str:
    """Render a :meth:`Telemetry.snapshot` (plus the daemon's counter dict
    and two-tier cache statistics) in the Prometheus text exposition format
    (version 0.0.4)."""
    lines: List[str] = []

    def family(name: str, kind: str, help_text: str) -> str:
        full = f"{namespace}_{name}"
        lines.append(f"# HELP {full} {help_text}")
        lines.append(f"# TYPE {full} {kind}")
        return full

    def sample(full: str, labels: Dict[str, object], value) -> None:
        if labels:
            rendered = ",".join(
                f'{key}="{str(val)}"' for key, val in labels.items())
            lines.append(f"{full}{{{rendered}}} {_prom_value(value)}")
        else:
            lines.append(f"{full} {_prom_value(value)}")

    full = family("uptime_seconds", "gauge", "Daemon uptime.")
    sample(full, {}, snapshot.get("uptime_s", 0.0))
    full = family("workers", "gauge", "Worker pool size.")
    sample(full, {}, snapshot.get("workers", 0))
    full = family("requests_total", "counter", "Requests served.")
    sample(full, {}, snapshot.get("requests", 0))
    full = family("errors_total", "counter", "Requests that returned an error.")
    sample(full, {}, snapshot.get("errors", 0))
    full = family("inflight_requests", "gauge", "Requests currently executing.")
    sample(full, {}, snapshot.get("inflight", 0))
    full = family("queue_depth", "gauge", "Requests accepted but not started.")
    sample(full, {}, snapshot.get("queue_depth", 0))
    full = family("worker_utilization", "gauge",
                  "Busy seconds over window times workers (0..1).")
    sample(full, {}, snapshot.get("utilization", 0.0))

    verbs = snapshot.get("verbs") or {}
    if verbs:
        full = family("request_latency_ms", "histogram",
                      "Per-verb request latency over the sliding window.")
        for verb, stats in sorted(verbs.items()):
            for bucket in stats.get("buckets", []):
                sample(f"{full}_bucket",
                       {"verb": verb, "le": bucket["le"]}, bucket["count"])
            sample(f"{full}_count", {"verb": verb}, stats.get("count", 0))
            mean = stats.get("mean_ms") or 0.0
            sample(f"{full}_sum", {"verb": verb},
                   mean * stats.get("count", 0))

    devices = snapshot.get("devices") or {}
    if devices:
        full = family("device_busy_seconds", "counter",
                      "Cumulative modeled busy time per simulated device.")
        for dev, stats in sorted(devices.items(), key=lambda kv: int(kv[0])):
            sample(full, {"device": dev}, stats.get("busy_s", 0.0))
    imbalance = snapshot.get("shard_imbalance")
    if imbalance is not None:
        full = family("shard_imbalance", "gauge",
                      "Max over mean per-device busy time.")
        sample(full, {}, imbalance)
    d2d = snapshot.get("d2d") or {}
    full = family("d2d_bytes_total", "counter", "Bytes over modeled P2P links.")
    sample(full, {}, d2d.get("bytes", 0))
    full = family("d2d_copies_total", "counter", "Device-to-device copies.")
    sample(full, {}, d2d.get("copies", 0))

    if cache:
        full = family("cache_hit_ratio", "gauge",
                      "Two-tier pass-cache hit ratio per tier.")
        for tier, stats in sorted(cache.items()):
            ratio = stats.get("hit_ratio")
            if ratio is not None:
                sample(full, {"tier": tier}, ratio)
        full = family("cache_requests_total", "counter",
                      "Cache lookups per tier and outcome.")
        for tier, stats in sorted(cache.items()):
            sample(full, {"tier": tier, "outcome": "hit"},
                   stats.get("hits", 0))
            sample(full, {"tier": tier, "outcome": "miss"},
                   stats.get("misses", 0))

    if counters:
        full = family("counter_total", "counter",
                      "Registered toolchain counters (daemon lifetime).")
        for name, value in sorted(counters.items()):
            sample(full, {"name": name}, value)

    return "\n".join(lines) + "\n"
