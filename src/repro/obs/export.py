"""Trace exporters: Chrome-trace JSON, JSONL event stream, tree view.

The Chrome-trace form loads directly in ``chrome://tracing`` and Perfetto
(one complete event per span, one instant event per span event, modeled
times in ``args``).  The JSONL form is one self-describing JSON object per
line — spans and events interleaved in start order — for ``jq``-style
processing.  The tree view is the human ``repro trace <prog> --format
tree`` rendering.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.obs.tracer import Span, Tracer

__all__ = [
    "chrome_trace_events",
    "render_tree",
    "to_jsonl_lines",
    "write_chrome_trace",
    "write_jsonl",
]


def _json_safe(value):
    """Attribute values come from toolchain internals; keep the export
    loadable whatever they are."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


def _safe_attrs(attrs: Dict[str, object]) -> Dict[str, object]:
    return {str(k): _json_safe(v) for k, v in attrs.items()}


# Synthetic Chrome-trace thread ids for per-device lanes.  Real thread ids
# come from threading.get_ident() (pointer-sized); a small fixed base keeps
# the device lanes visually grouped and collision-free in practice.
_DEVICE_TID_BASE = 1000000


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, object]]:
    """The ``traceEvents`` list: ``ph=X`` complete events for spans,
    ``ph=i`` instants for span events, microsecond timestamps relative to
    the tracer epoch.

    Spans carrying an integer ``device`` attribute (multi-device runs emit
    them on ``kernel.shard`` and ``transfer.d2d``) are rerouted onto one
    synthetic lane per device, named via ``thread_name`` metadata, so an
    N-GPU run renders as N parallel swimlanes.  Single-device traces have
    no such spans and stay byte-identical."""
    pid = os.getpid()
    events: List[Dict[str, object]] = []
    device_lanes: Dict[int, int] = {}

    trace_context = getattr(tracer, "trace_context", None)
    if trace_context is not None:
        # Identity metadata: lets a viewer (or a cross-process stitcher)
        # attribute this export to its service request.  Absent entirely
        # when no trace context is set, so plain traced runs are unchanged.
        events.append({
            "name": "trace_context",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": 0,
            "args": dict(trace_context.to_dict()),
        })

    def _tid(span: Span) -> int:
        dev = span.attrs.get("device")
        if not isinstance(dev, int) or isinstance(dev, bool):
            return span.thread_id
        return device_lanes.setdefault(dev, _DEVICE_TID_BASE + dev)

    for span in tracer.sorted_spans():
        args = _safe_attrs(span.attrs)
        if span.modeled_seconds is not None:
            args["modeled_us"] = span.modeled_seconds * 1e6
        tid = _tid(span)
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": (span.wall_start - tracer.epoch) * 1e6,
            "dur": span.wall_seconds * 1e6,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
        for ev in span.events:
            events.append({
                "name": ev.name,
                "cat": span.category,
                "ph": "i",
                "s": "t",
                "ts": (ev.wall - tracer.epoch) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": _safe_attrs(ev.attrs),
            })
    for dev, tid in sorted(device_lanes.items()):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": tid,
            "args": {"name": f"dev{dev}"},
        })
    for ev in tracer.orphan_events:
        events.append({
            "name": ev.name,
            "cat": "orphan",
            "ph": "i",
            "s": "p",
            "ts": (ev.wall - tracer.epoch) * 1e6,
            "pid": pid,
            "tid": 0,
            "args": _safe_attrs(ev.attrs),
        })
    return events


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    payload = {"traceEvents": chrome_trace_events(tracer),
               "displayTimeUnit": "ms"}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=None, separators=(",", ":"))
        handle.write("\n")


def to_jsonl_lines(tracer: Tracer) -> List[str]:
    """One JSON object per line: spans (with nested events) in start order,
    preceded by a ``trace_context`` header record when an identity is set."""
    lines = []
    trace_context = getattr(tracer, "trace_context", None)
    if trace_context is not None:
        lines.append(json.dumps(
            {"kind": "trace_context", **trace_context.to_dict()},
            sort_keys=True,
        ))
    for span in tracer.sorted_spans():
        record = span.to_dict()
        record["kind"] = "span"
        record["attrs"] = _safe_attrs(record["attrs"])
        record["events"] = [
            {**e, "attrs": _safe_attrs(e.get("attrs", {}))}
            for e in record["events"]
        ]
        lines.append(json.dumps(record, sort_keys=True))
    for ev in tracer.orphan_events:
        lines.append(json.dumps(
            {"kind": "event", "name": ev.name, "attrs": _safe_attrs(ev.attrs)},
            sort_keys=True,
        ))
    return lines


def write_jsonl(tracer: Tracer, path: str) -> None:
    with open(path, "w") as handle:
        for line in to_jsonl_lines(tracer):
            handle.write(line + "\n")


def render_tree(tracer: Tracer, max_events: int = 4) -> str:
    """Indented span tree with wall/modeled durations and inline events."""
    spans = tracer.sorted_spans()
    known = {span.span_id for span in spans}
    children: Dict[int, List[Span]] = {}
    for span in spans:
        # A parent that never closed (error unwinding) is absent from the
        # finished list; render its children as roots rather than dropping.
        parent = span.parent_id if span.parent_id in known else 0
        children.setdefault(parent, []).append(span)

    lines: List[str] = []

    def fmt_attrs(attrs: Dict[str, object]) -> str:
        if not attrs:
            return ""
        body = " ".join(f"{k}={_json_safe(v)}" for k, v in attrs.items())
        return f"  [{body}]"

    def walk(span: Span, depth: int) -> None:
        indent = "  " * depth
        modeled = span.modeled_seconds
        clocks = f"{span.wall_seconds * 1e6:.0f}us wall"
        if modeled is not None:
            clocks += f", {modeled * 1e6:.1f}us modeled"
        lines.append(f"{indent}{span.name} ({span.category}) "
                     f"{clocks}{fmt_attrs(span.attrs)}")
        shown = span.events[:max_events]
        for ev in shown:
            lines.append(f"{indent}  * {ev.name}{fmt_attrs(ev.attrs)}")
        hidden = len(span.events) - len(shown)
        if hidden > 0:
            lines.append(f"{indent}  * ... {hidden} more event(s)")
        for child in children.get(span.span_id, ()):
            walk(child, depth + 1)

    for root in children.get(0, ()):
        walk(root, 0)
    for ev in tracer.orphan_events:
        lines.append(f"* {ev.name}{fmt_attrs(ev.attrs)}")
    return "\n".join(lines) or "(no spans recorded)"
