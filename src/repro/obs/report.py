"""RunReport: one self-describing JSON artifact per toolchain run.

A report bundles everything a CI job (or a person debugging one) needs to
ask "what did this run do": spans, metrics (counters + histograms),
coherence findings, transfer-byte totals, pass stats, and — for failed runs
— the typed error including the interactive loop's per-iteration convergence
history.  ``scripts/check_report_schema.py`` validates the schema and
``scripts/check_bench.py --compare-reports`` diffs two reports structurally
(deterministic fields only; wall-clock noise is excluded by construction).
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = [
    "SCHEMA",
    "build_report",
    "diff_reports",
    "structural_projection",
    "validate_report",
]

SCHEMA = "repro.run-report/1"


def build_report(ctx, command: Optional[str] = None,
                 program: Optional[str] = None,
                 params: Optional[Dict[str, object]] = None,
                 error: Optional[BaseException] = None,
                 extra: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """Assemble the report from one :class:`~repro.toolchain.ToolchainContext`
    (and the last runtime it saw, when a run got that far)."""
    runtime = getattr(ctx, "last_runtime", None)
    tracer = getattr(ctx, "tracer", None)
    trace_context = getattr(ctx, "trace_context", None)

    report: Dict[str, object] = {
        "schema": SCHEMA,
        "command": command,
        "program": program,
        # Trace identity (None for runs outside the service/trace plumbing).
        # Excluded from the structural projection: ids are minted per run.
        "trace": (trace_context.to_dict()
                  if trace_context is not None else None),
        "params": {k: v for k, v in (params or {}).items()
                   if isinstance(v, (int, float, str, bool))},
        "metrics": ctx.metrics.snapshot(),
        "pass_stats": _pass_stats(ctx),
        "spans": ([s.to_dict() for s in tracer.sorted_spans()]
                  if tracer is not None and tracer.enabled else []),
        # Events emitted outside any open span (e.g. the interactive
        # loop's terminal optimize.no_convergence marker).
        "events": ([e.to_dict() for e in tracer.orphan_events]
                   if tracer is not None and tracer.enabled else []),
    }

    if runtime is not None:
        profiler = runtime.profiler
        device = runtime.device
        report["modeled_time_s"] = profiler.total()
        report["modeled_breakdown_s"] = {
            cat: sec for cat, sec in profiler.breakdown().items() if sec
        }
        report["bytes"] = {
            "h2d": device.bytes_h2d,
            "d2h": device.bytes_d2h,
            "d2d": profiler.counters.get("bytes.d2d", 0),
            "total": device.total_transferred_bytes(),
            "saved": profiler.counters.get("bytes.saved", 0),
        }
        report["transfers"] = {
            "count": len(runtime.transfer_log),
            "batches": sum(rec.batches for rec in runtime.transfer_log),
        }
        report["launches"] = len(runtime.launch_log)
        ckpt = getattr(runtime, "checkpointer", None)
        report["recovery"] = {
            "checkpoints_saved": ckpt.saves if ckpt is not None else 0,
            "rollbacks": ckpt.rollbacks if ckpt is not None else 0,
            "replayed_iterations": (ckpt.replayed_iterations
                                    if ckpt is not None else 0),
            "resumed": bool(ckpt.resumed) if ckpt is not None else False,
            "last_checkpoint": (ckpt.last_disk_path
                                if ckpt is not None else None),
        }
        tracker = runtime.coherence
        report["findings"] = ([
            {
                "kind": f.kind,
                "var": f.var,
                "site": f.site,
                "context": [list(c) for c in f.context],
                "nbytes_wasted": f.nbytes_wasted,
            }
            for f in tracker.findings
        ] if tracker is not None else [])
    else:
        report["modeled_time_s"] = None
        report["modeled_breakdown_s"] = {}
        report["bytes"] = {"h2d": 0, "d2h": 0, "d2d": 0, "total": 0,
                           "saved": 0}
        report["transfers"] = {"count": 0, "batches": 0}
        report["launches"] = 0
        report["recovery"] = {
            "checkpoints_saved": 0, "rollbacks": 0,
            "replayed_iterations": 0, "resumed": False,
            "last_checkpoint": None,
        }
        report["findings"] = []

    if error is not None:
        from repro.errors import error_stage

        err_entry: Dict[str, object] = {
            "type": type(error).__name__,
            "stage": error_stage(error),
            "message": str(error),
        }
        history = getattr(error, "history", None)
        if history:
            # ConvergenceError: the failed run carries its per-iteration
            # convergence trajectory (PR 2) right in the artifact.
            err_entry["convergence_history"] = list(history)
        report["error"] = err_entry
    else:
        report["error"] = None

    if extra:
        report.update(extra)
    return report


def _pass_stats(ctx) -> Dict[str, object]:
    stats = ctx.pass_stats
    return {
        name: {
            "invocations": rec.invocations,
            "cache_hits": rec.cache_hits,
            "cache_misses": rec.cache_misses,
        }
        for name, rec in sorted(stats.records.items())
    }


# ---------------------------------------------------------------------------
# Schema validation (hand-rolled: no external jsonschema dependency)
# ---------------------------------------------------------------------------

_TOP_LEVEL = {
    "schema": str,
    "params": dict,
    "metrics": dict,
    "pass_stats": dict,
    "spans": list,
    "events": list,
    "modeled_breakdown_s": dict,
    "bytes": dict,
    "transfers": dict,
    "launches": int,
    "recovery": dict,
    "findings": list,
}


def validate_report(report) -> List[str]:
    """Structural checks; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(report, dict):
        return ["report is not a JSON object"]
    if report.get("schema") != SCHEMA:
        problems.append(f"schema is {report.get('schema')!r}, expected {SCHEMA!r}")
    for key, typ in _TOP_LEVEL.items():
        if key not in report:
            problems.append(f"missing key {key!r}")
        elif not isinstance(report[key], typ):
            problems.append(f"{key!r} is {type(report[key]).__name__}, "
                            f"expected {typ.__name__}")
    if problems:
        return problems

    metrics = report["metrics"]
    for sub in ("counters", "histograms"):
        if not isinstance(metrics.get(sub), dict):
            problems.append(f"metrics.{sub} missing or not an object")
    if isinstance(metrics.get("counters"), dict):
        for name, value in metrics["counters"].items():
            if not isinstance(value, int):
                problems.append(f"counter {name!r} is not an int")
    if isinstance(metrics.get("histograms"), dict):
        for name, hist in metrics["histograms"].items():
            if not isinstance(hist, dict) or not {
                "count", "sum", "min", "max", "buckets"
            } <= set(hist):
                problems.append(f"histogram {name!r} malformed")

    for key in ("h2d", "d2h", "d2d", "total", "saved"):
        if not isinstance(report["bytes"].get(key), int):
            problems.append(f"bytes.{key} missing or not an int")

    recovery = report["recovery"]
    for key in ("checkpoints_saved", "rollbacks", "replayed_iterations"):
        if not isinstance(recovery.get(key), int):
            problems.append(f"recovery.{key} missing or not an int")
    if not isinstance(recovery.get("resumed"), bool):
        problems.append("recovery.resumed missing or not a bool")
    if "last_checkpoint" not in recovery:
        problems.append("recovery.last_checkpoint missing")

    for i, span in enumerate(report["spans"]):
        if not isinstance(span, dict):
            problems.append(f"spans[{i}] is not an object")
            continue
        if not isinstance(span.get("name"), str) or not isinstance(span.get("cat"), str):
            problems.append(f"spans[{i}] missing name/cat")
        if not isinstance(span.get("id"), int) or not isinstance(span.get("parent"), int):
            problems.append(f"spans[{i}] missing id/parent")
        if not isinstance(span.get("wall_s"), (int, float)):
            problems.append(f"spans[{i}] missing wall_s")
        if not isinstance(span.get("attrs"), dict) or not isinstance(span.get("events"), list):
            problems.append(f"spans[{i}] missing attrs/events")

    for i, finding in enumerate(report["findings"]):
        if not isinstance(finding, dict) or not {
            "kind", "var", "site"
        } <= set(finding):
            problems.append(f"findings[{i}] malformed")

    error = report.get("error")
    if error is not None and (not isinstance(error, dict)
                              or not {"type", "stage", "message"} <= set(error)):
        problems.append("error entry malformed")

    trace = report.get("trace")
    if trace is not None:
        if not isinstance(trace, dict) or not isinstance(
                trace.get("trace_id"), str):
            problems.append("trace entry malformed (expected trace_id string)")

    flight = report.get("flight_recorder")
    if flight is not None:
        if not isinstance(flight, dict):
            problems.append("flight_recorder is not an object")
        else:
            for ring, entries in flight.items():
                if not isinstance(entries, list) or not all(
                        isinstance(e, dict) for e in entries):
                    problems.append(
                        f"flight_recorder.{ring} is not a list of entries")
    return problems


# ---------------------------------------------------------------------------
# Structural diff (deterministic fields only)
# ---------------------------------------------------------------------------

def structural_projection(report: Dict[str, object]) -> Dict[str, object]:
    """The deterministic skeleton of a report: everything modeled or
    counted, nothing wall-clocked.  Two runs of the same program at the same
    settings project identically; any difference is a behavior change."""
    span_counts: Dict[str, int] = {}
    for span in report.get("spans", []):
        key = f"{span.get('cat', '?')}:{span.get('name', '?')}"
        span_counts[key] = span_counts.get(key, 0) + 1
    finding_counts: Dict[str, int] = {}
    for finding in report.get("findings", []):
        kind = finding.get("kind", "?")
        finding_counts[kind] = finding_counts.get(kind, 0) + 1
    metrics = report.get("metrics", {})
    return {
        "schema": report.get("schema"),
        "modeled_time_s": report.get("modeled_time_s"),
        "bytes": report.get("bytes"),
        "transfers": report.get("transfers"),
        "launches": report.get("launches"),
        "counters": metrics.get("counters", {}),
        # last_checkpoint is a filesystem path (tmpdir noise); the counts
        # are deterministic per seed and belong in the projection.
        "recovery": {k: v for k, v in (report.get("recovery") or {}).items()
                     if k != "last_checkpoint"},
        "span_counts": dict(sorted(span_counts.items())),
        "finding_counts": dict(sorted(finding_counts.items())),
        "error": ((report.get("error") or {}).get("type")
                  if report.get("error") else None),
    }


def diff_reports(a: Dict[str, object], b: Dict[str, object]) -> List[str]:
    """Human-readable structural differences between two reports."""
    pa, pb = structural_projection(a), structural_projection(b)
    diffs: List[str] = []
    for key in sorted(set(pa) | set(pb)):
        va, vb = pa.get(key), pb.get(key)
        if va == vb:
            continue
        if isinstance(va, dict) and isinstance(vb, dict):
            for sub in sorted(set(va) | set(vb)):
                if va.get(sub) != vb.get(sub):
                    diffs.append(f"{key}.{sub}: {va.get(sub)!r} != {vb.get(sub)!r}")
        else:
            diffs.append(f"{key}: {va!r} != {vb!r}")
    return diffs
