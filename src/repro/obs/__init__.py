"""Unified observability layer: span tracing, metrics, exports, run reports.

One :class:`~repro.obs.tracer.Tracer` records nested, timestamped spans
(wall-clock and, where a modeled clock is wired, modeled time) across the
whole toolchain — compiler passes, runtime operations, verification — with
structured attributes and events.  Tracing is off by default: the shared
:data:`~repro.obs.tracer.NULL_TRACER` swallows every call without
allocating, and traced runs stay bit-identical in outputs and modeled time
because the tracer only *reads* toolchain state.

Exports: Chrome-trace JSON (``chrome://tracing`` / Perfetto), a JSONL event
stream, a human tree view (:mod:`repro.obs.export`), and the self-describing
:mod:`repro.obs.report` RunReport that CI diffs structurally.

The live plane (:mod:`repro.obs.telemetry`) adds trace-context propagation,
sliding-window daemon statistics with Prometheus exposition, and the crash
flight recorder.
"""

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    WindowedHistogram,
    is_registered_counter,
    register_counter,
    register_counter_prefix,
    registered_counter_prefixes,
    registered_counters,
)
from repro.obs.telemetry import (
    FlightRecorder,
    Telemetry,
    TraceContext,
    render_prometheus,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, SpanEvent, Tracer

__all__ = [
    "FlightRecorder",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanEvent",
    "Telemetry",
    "TraceContext",
    "Tracer",
    "WindowedHistogram",
    "is_registered_counter",
    "register_counter",
    "register_counter_prefix",
    "registered_counter_prefixes",
    "registered_counters",
    "render_prometheus",
]
