"""Recursive-descent parser for the mini-C language.

Grammar highlights:

* declarations: ``type declarator (, declarator)* ;`` with array and pointer
  declarators, optional scalar initializer;
* statements: block, ``if``/``else``, ``for``, ``while``, ``return``,
  ``break``, ``continue``, assignment (incl. compound ``+=`` etc.),
  expression statements (calls, ``i++``);
* expressions: full C operator precedence for the supported operators,
  ternary, casts, multi-dimensional subscripts, calls.

``#pragma`` lines are attached to the next statement's ``pragmas`` list.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.ctypes import Array, Pointer, SCALARS, Scalar
from repro.lang.lexer import (
    Token,
    parse_float_literal,
    parse_int_literal,
    tokenize,
)

# Binary operator precedence (higher binds tighter).
_BIN_PREC = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_ASSIGN_OPS = {"=": "", "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%"}


class TokenStream:
    """Cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def next(self) -> Token:
        tok = self.peek()
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if not self.at(kind, text):
            want = text or kind
            raise ParseError(f"expected {want!r}, found {tok.text!r}", tok.line, tok.col)
        return self.next()

    @property
    def eof(self) -> bool:
        return self.peek().kind == "EOF"


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast.Program`."""

    def __init__(self, source: str):
        self.ts = TokenStream(tokenize(source))
        self._pending_pragmas = []

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        decls: List[ast.VarDecl] = []
        funcs: List[ast.FuncDef] = []
        while not self.ts.eof:
            standalone = self._collect_pragmas()
            if standalone is not None:
                d = standalone.pragmas[0]
                raise ParseError(f"'{d.name}' directive outside any function", d.line, 1)
            if self.ts.eof:
                break
            item = self._parse_top_item()
            if isinstance(item, ast.FuncDef):
                funcs.append(item)
            else:
                decls.extend(item)
        if self._pending_pragmas:
            d = self._pending_pragmas[0]
            raise ParseError("dangling #pragma at end of file", d.line, 1)
        return ast.Program(decls, funcs)

    def _parse_top_item(self):
        tok = self.ts.peek()
        base = self._parse_type_keyword()
        if base is None:
            raise ParseError(f"expected declaration, found {tok.text!r}", tok.line, tok.col)
        # void f(...) or T f(...) vs. T x, y;
        if base == "void" or (
            self.ts.at("ID") and self.ts.peek(1).kind == "OP" and self.ts.peek(1).text == "("
        ):
            return self._parse_funcdef(base, tok.line)
        return self._parse_decl_stmts(base, tok.line)

    def _parse_type_keyword(self) -> Optional[str]:
        tok = self.ts.peek()
        if tok.kind == "KEYWORD" and tok.text in ("int", "long", "float", "double", "void"):
            self.ts.next()
            return tok.text
        return None

    def _parse_funcdef(self, ret_name: str, line: int) -> ast.FuncDef:
        name = self.ts.expect("ID").text
        self.ts.expect("OP", "(")
        params: List[ast.Param] = []
        if not self.ts.at("OP", ")"):
            while True:
                pline = self.ts.peek().line
                base = self._parse_type_keyword()
                if base is None or base == "void":
                    if base == "void" and self.ts.at("OP", ")"):
                        break
                    tok = self.ts.peek()
                    raise ParseError("expected parameter type", tok.line, tok.col)
                pname, ctype = self._parse_declarator(SCALARS[base])
                params.append(ast.Param(pname, ctype, pline))
                if not self.ts.accept("OP", ","):
                    break
        self.ts.expect("OP", ")")
        body = self._parse_block()
        ret_type = None if ret_name == "void" else SCALARS[ret_name]
        return ast.FuncDef(name, ret_type, params, body, line)

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def _parse_declarator(self, base: Scalar):
        """Parse ``[*] name ([dim])*`` and return (name, ctype)."""
        is_ptr = bool(self.ts.accept("OP", "*"))
        name = self.ts.expect("ID").text
        dims = []
        while self.ts.accept("OP", "["):
            dims.append(self._parse_dim())
            self.ts.expect("OP", "]")
        if dims:
            if is_ptr:
                tok = self.ts.peek()
                raise ParseError("arrays of pointers are unsupported", tok.line, tok.col)
            return name, Array(base, tuple(dims))
        if is_ptr:
            return name, Pointer(base)
        return name, base

    def _parse_dim(self):
        tok = self.ts.peek()
        if tok.kind == "INT":
            self.ts.next()
            return parse_int_literal(tok.text)
        if tok.kind == "ID":
            self.ts.next()
            return tok.text
        raise ParseError("array dimension must be a constant or a name", tok.line, tok.col)

    def _parse_decl_stmts(self, base_name: str, line: int) -> List[ast.VarDecl]:
        base = SCALARS[base_name]
        out = []
        while True:
            name, ctype = self._parse_declarator(base)
            init = None
            if self.ts.accept("OP", "="):
                init = self.parse_expr()
            out.append(ast.VarDecl(name, ctype, init, line))
            if not self.ts.accept("OP", ","):
                break
        self.ts.expect("OP", ";")
        return out

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    # Directives that execute on their own rather than annotating the next
    # statement; the parser gives each an empty carrier statement.
    _STANDALONE = frozenset({"update", "wait", "enter data", "exit data"})

    def _collect_pragmas(self) -> Optional[ast.Stmt]:
        """Buffer annotation pragmas; return a carrier statement when a
        standalone executable directive (update/wait) is seen."""
        from repro.lang.pragma import parse_pragma  # local: avoids import cycle

        while self.ts.at("PRAGMA"):
            tok = self.ts.next()
            directive = parse_pragma(tok.text, tok.line)
            if directive.namespace == "acc" and directive.name in self._STANDALONE:
                stmt = ast.Block([], tok.line)
                stmt.pragmas = [directive]
                return stmt
            self._pending_pragmas.append(directive)
        return None

    def _take_pragmas(self):
        out = self._pending_pragmas
        self._pending_pragmas = []
        return out

    def _parse_block(self) -> ast.Block:
        open_tok = self.ts.expect("OP", "{")
        body: List[ast.Stmt] = []
        while not self.ts.at("OP", "}"):
            if self.ts.eof:
                raise ParseError("unterminated block", open_tok.line, open_tok.col)
            body.extend(self._parse_stmt_list_item())
        self.ts.expect("OP", "}")
        return ast.Block(body, open_tok.line)

    def _parse_stmt_list_item(self) -> List[ast.Stmt]:
        """Parse one statement (possibly expanding to several VarDecls)."""
        standalone = self._collect_pragmas()
        if standalone is not None:
            return [standalone]
        pragmas = self._take_pragmas()
        tok = self.ts.peek()
        if tok.kind == "KEYWORD" and tok.text in ("int", "long", "float", "double"):
            self.ts.next()
            decls = self._parse_decl_stmts(tok.text, tok.line)
            if pragmas:
                decls[0].pragmas = pragmas
            return decls
        stmt = self._parse_stmt()
        stmt.pragmas = pragmas
        return [stmt]

    def _parse_stmt(self) -> ast.Stmt:
        tok = self.ts.peek()
        if tok.kind == "OP" and tok.text == "{":
            return self._parse_block()
        if tok.kind == "KEYWORD":
            if tok.text == "if":
                return self._parse_if()
            if tok.text == "for":
                return self._parse_for()
            if tok.text == "while":
                return self._parse_while()
            if tok.text == "return":
                self.ts.next()
                value = None if self.ts.at("OP", ";") else self.parse_expr()
                self.ts.expect("OP", ";")
                return ast.Return(value, tok.line)
            if tok.text == "break":
                self.ts.next()
                self.ts.expect("OP", ";")
                return ast.Break(tok.line)
            if tok.text == "continue":
                self.ts.next()
                self.ts.expect("OP", ";")
                return ast.Continue(tok.line)
        if tok.kind == "OP" and tok.text == ";":
            self.ts.next()
            return ast.Block([], tok.line)  # empty statement
        stmt = self._parse_simple_stmt()
        self.ts.expect("OP", ";")
        return stmt

    def _parse_simple_stmt(self) -> ast.Stmt:
        """Assignment or expression statement, without trailing ';'."""
        tok = self.ts.peek()
        expr = self.parse_expr()
        op_tok = self.ts.peek()
        if op_tok.kind == "OP" and op_tok.text in _ASSIGN_OPS:
            if not ast.is_lvalue(expr):
                raise ParseError("assignment target is not an lvalue", op_tok.line, op_tok.col)
            self.ts.next()
            value = self.parse_expr()
            return ast.Assign(expr, value, _ASSIGN_OPS[op_tok.text], tok.line)
        return ast.ExprStmt(expr, tok.line)

    def _parse_body(self) -> ast.Block:
        """Parse a control-flow body, normalizing it to a Block so that every
        later pass sees uniform statement lists."""
        stmt = self._parse_stmt()
        if isinstance(stmt, ast.Block) and not stmt.pragmas:
            return stmt
        block = ast.Block([stmt], stmt.line)
        return block

    def _parse_if(self) -> ast.If:
        tok = self.ts.expect("KEYWORD", "if")
        self.ts.expect("OP", "(")
        cond = self.parse_expr()
        self.ts.expect("OP", ")")
        then = self._parse_body()
        orelse = None
        if self.ts.accept("KEYWORD", "else"):
            orelse = self._parse_body()
        return ast.If(cond, then, orelse, tok.line)

    def _parse_for(self) -> ast.For:
        tok = self.ts.expect("KEYWORD", "for")
        self.ts.expect("OP", "(")
        init: Optional[ast.Stmt] = None
        if not self.ts.at("OP", ";"):
            kw = self.ts.peek()
            if kw.kind == "KEYWORD" and kw.text in ("int", "long", "float", "double"):
                self.ts.next()
                base = SCALARS[kw.text]
                name, ctype = self._parse_declarator(base)
                init_expr = None
                if self.ts.accept("OP", "="):
                    init_expr = self.parse_expr()
                init = ast.VarDecl(name, ctype, init_expr, kw.line)
            else:
                init = self._parse_simple_stmt()
        self.ts.expect("OP", ";")
        cond = None if self.ts.at("OP", ";") else self.parse_expr()
        self.ts.expect("OP", ";")
        step = None if self.ts.at("OP", ")") else self._parse_simple_stmt()
        self.ts.expect("OP", ")")
        body = self._parse_body()
        return ast.For(init, cond, step, body, tok.line)

    def _parse_while(self) -> ast.While:
        tok = self.ts.expect("KEYWORD", "while")
        self.ts.expect("OP", "(")
        cond = self.parse_expr()
        self.ts.expect("OP", ")")
        body = self._parse_body()
        return ast.While(cond, body, tok.line)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self.ts.accept("OP", "?"):
            then = self.parse_expr()
            self.ts.expect("OP", ":")
            other = self._parse_ternary()
            return ast.Ternary(cond, then, other, cond.line)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            tok = self.ts.peek()
            prec = _BIN_PREC.get(tok.text) if tok.kind == "OP" else None
            if prec is None or prec < min_prec:
                return left
            self.ts.next()
            right = self._parse_binary(prec + 1)
            left = ast.Binary(tok.text, left, right, tok.line)

    def _parse_unary(self) -> ast.Expr:
        tok = self.ts.peek()
        if tok.kind == "OP" and tok.text in ("-", "+", "!", "~", "*", "&"):
            self.ts.next()
            operand = self._parse_unary()
            if tok.text == "+":
                return operand
            return ast.Unary(tok.text, operand, tok.line)
        if tok.kind == "OP" and tok.text in ("++", "--"):
            self.ts.next()
            operand = self._parse_unary()
            return ast.Unary("p" + tok.text, operand, tok.line)  # prefix
        # Cast: '(' type ')' unary
        if tok.kind == "OP" and tok.text == "(":
            nxt = self.ts.peek(1)
            if nxt.kind == "KEYWORD" and nxt.text in SCALARS:
                self.ts.next()
                base = SCALARS[self.ts.next().text]
                ctype = Pointer(base) if self.ts.accept("OP", "*") else base
                self.ts.expect("OP", ")")
                operand = self._parse_unary()
                return ast.Cast(ctype, operand, tok.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self.ts.peek()
            if tok.kind == "OP" and tok.text == "[":
                self.ts.next()
                index = self.parse_expr()
                self.ts.expect("OP", "]")
                expr = ast.Subscript(expr, index, tok.line)
            elif tok.kind == "OP" and tok.text in ("++", "--"):
                self.ts.next()
                expr = ast.Unary(tok.text, expr, tok.line)  # postfix
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self.ts.peek()
        if tok.kind == "INT":
            self.ts.next()
            return ast.IntLit(parse_int_literal(tok.text), tok.line)
        if tok.kind == "FLOAT":
            self.ts.next()
            return ast.FloatLit(parse_float_literal(tok.text), tok.text, tok.line)
        if tok.kind == "STRING":
            self.ts.next()
            # Undo simple escapes; benchmarks only use \n and \t.
            body = tok.text[1:-1].replace("\\n", "\n").replace("\\t", "\t").replace('\\"', '"')
            return ast.StrLit(body, tok.line)
        if tok.kind == "CHAR":
            self.ts.next()
            ch = tok.text[1:-1]
            value = ord(ch.replace("\\n", "\n").replace("\\t", "\t").replace("\\0", "\0")[0])
            return ast.IntLit(value, tok.line)
        if tok.kind == "ID":
            self.ts.next()
            if self.ts.at("OP", "("):
                self.ts.next()
                args = []
                if not self.ts.at("OP", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self.ts.accept("OP", ","):
                            break
                self.ts.expect("OP", ")")
                return ast.Call(tok.text, args, tok.line)
            return ast.Name(tok.text, tok.line)
        if tok.kind == "OP" and tok.text == "(":
            self.ts.next()
            expr = self.parse_expr()
            self.ts.expect("OP", ")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r} in expression", tok.line, tok.col)


def parse_program(source: str) -> ast.Program:
    """Parse mini-C source text into a :class:`repro.lang.ast.Program`."""
    return Parser(source).parse_program()


def parse_expression(source: str) -> ast.Expr:
    """Parse a standalone expression (used by the pragma parser and tests)."""
    parser = Parser(source)
    expr = parser.parse_expr()
    tok = parser.ts.peek()
    if tok.kind != "EOF":
        raise ParseError(f"trailing input {tok.text!r} after expression", tok.line, tok.col)
    return expr
