"""Type system for the mini-C language.

Only the types the benchmarks need: ``int``/``long`` (both mapped to int64),
``float``/``double`` (float32/float64), fixed-shape arrays, and pointers.
Array dimensions may be integer constants or identifiers bound at program
setup time (resolved by the interpreter from program parameters).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

Dim = Union[int, str]  # constant extent, or a symbolic (parameter) name


class CType:
    """Base class for mini-C types; instances are immutable and hashable."""

    __slots__ = ()

    def is_scalar(self) -> bool:
        return False

    def is_array(self) -> bool:
        return False

    def is_pointer(self) -> bool:
        return False


class Scalar(CType):
    """A scalar numeric type."""

    __slots__ = ("name",)

    _NUMPY = {
        "int": np.int64,
        "long": np.int64,
        "float": np.float32,
        "double": np.float64,
    }

    def __init__(self, name: str):
        if name not in self._NUMPY:
            raise ValueError(f"unknown scalar type {name!r}")
        self.name = name

    def is_scalar(self) -> bool:
        return True

    @property
    def dtype(self):
        """Matching numpy dtype."""
        return self._NUMPY[self.name]

    @property
    def is_integer(self) -> bool:
        return self.name in ("int", "long")

    @property
    def size_bytes(self) -> int:
        return np.dtype(self.dtype).itemsize

    def __eq__(self, other):
        return isinstance(other, Scalar) and self.name == other.name

    def __hash__(self):
        return hash(("Scalar", self.name))

    def __repr__(self):
        return self.name


INT = Scalar("int")
LONG = Scalar("long")
FLOAT = Scalar("float")
DOUBLE = Scalar("double")

SCALARS = {"int": INT, "long": LONG, "float": FLOAT, "double": DOUBLE}


class Array(CType):
    """Fixed-shape array of a scalar element type."""

    __slots__ = ("elem", "dims")

    def __init__(self, elem: Scalar, dims: Tuple[Dim, ...]):
        if not isinstance(elem, Scalar):
            raise ValueError("array element type must be scalar")
        if not dims:
            raise ValueError("array must have at least one dimension")
        self.elem = elem
        self.dims = tuple(dims)

    def is_array(self) -> bool:
        return True

    @property
    def ndim(self) -> int:
        return len(self.dims)

    def shape(self, params: Optional[dict] = None) -> Tuple[int, ...]:
        """Resolve symbolic dims against ``params`` to a concrete shape."""
        out = []
        for d in self.dims:
            if isinstance(d, int):
                out.append(d)
            else:
                if params is None or d not in params:
                    raise KeyError(f"unbound array dimension {d!r}")
                out.append(int(params[d]))
        return tuple(out)

    def size_bytes(self, params: Optional[dict] = None) -> int:
        n = 1
        for extent in self.shape(params):
            n *= extent
        return n * self.elem.size_bytes

    def __eq__(self, other):
        return (
            isinstance(other, Array)
            and self.elem == other.elem
            and self.dims == other.dims
        )

    def __hash__(self):
        return hash(("Array", self.elem, self.dims))

    def __repr__(self):
        dims = "".join(f"[{d}]" for d in self.dims)
        return f"{self.elem}{dims}"


class Pointer(CType):
    """Pointer to a scalar element type (used for aliasing scenarios)."""

    __slots__ = ("elem",)

    def __init__(self, elem: Scalar):
        if not isinstance(elem, Scalar):
            raise ValueError("pointer element type must be scalar")
        self.elem = elem

    def is_pointer(self) -> bool:
        return True

    def __eq__(self, other):
        return isinstance(other, Pointer) and self.elem == other.elem

    def __hash__(self):
        return hash(("Pointer", self.elem))

    def __repr__(self):
        return f"{self.elem}*"


def common_type(a: Scalar, b: Scalar) -> Scalar:
    """Usual arithmetic conversion between two scalar types."""
    rank = {"int": 0, "long": 1, "float": 2, "double": 3}
    return a if rank[a.name] >= rank[b.name] else b
