"""AST node definitions for the mini-C language.

Nodes are small mutable classes (compiler passes rewrite trees in place or
produce edited clones via :mod:`repro.lang.visitor`).  Every node carries a
``line`` for diagnostics.  Structural equality ignores ``line`` so tests can
compare shapes without pinning positions.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple


class Node:
    """Base class for all AST nodes.

    ``__weakref__`` lets the compiled-expression cache in
    :mod:`repro.lang.semantics` key closures by node without pinning trees
    in memory (entries die with the AST, so caches never leak across
    programs).
    """

    __slots__ = ("line", "__weakref__")
    _fields: Tuple[str, ...] = ()

    def __init__(self, line: int = 0):
        self.line = line

    # -- generic traversal ------------------------------------------------
    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (flattening lists of nodes)."""
        for name in self._fields:
            value = getattr(self, name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, preorder."""
        yield self
        for child in self.children():
            yield from child.walk()

    # -- equality / repr ---------------------------------------------------
    def _state(self):
        return tuple(
            tuple(v) if isinstance(v, list) else v
            for v in (getattr(self, name) for name in self._fields)
        )

    def __eq__(self, other):
        return type(self) is type(other) and self._state() == other._state()

    def __hash__(self):  # identity hash: nodes are mutable
        return id(self)

    def __repr__(self):
        parts = ", ".join(f"{n}={getattr(self, n)!r}" for n in self._fields)
        return f"{type(self).__name__}({parts})"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr(Node):
    """Base class for expressions."""
    __slots__ = ()


class IntLit(Expr):
    """Integer literal."""
    __slots__ = ("value",)
    _fields = ("value",)

    def __init__(self, value: int, line: int = 0):
        super().__init__(line)
        self.value = value


class FloatLit(Expr):
    """Floating-point literal.  ``text`` preserves the written form."""
    __slots__ = ("value", "text")
    _fields = ("value",)

    def __init__(self, value: float, text: Optional[str] = None, line: int = 0):
        super().__init__(line)
        self.value = value
        self.text = text if text is not None else repr(value)


class StrLit(Expr):
    """String literal (only used as arguments to builtins like printf)."""
    __slots__ = ("value",)
    _fields = ("value",)

    def __init__(self, value: str, line: int = 0):
        super().__init__(line)
        self.value = value


class Name(Expr):
    """Identifier reference."""
    __slots__ = ("id",)
    _fields = ("id",)

    def __init__(self, id: str, line: int = 0):
        super().__init__(line)
        self.id = id


class Subscript(Expr):
    """Array subscript ``base[index]``; multi-dim appears nested."""
    __slots__ = ("base", "index")
    _fields = ("base", "index")

    def __init__(self, base: Expr, index: Expr, line: int = 0):
        super().__init__(line)
        self.base = base
        self.index = index


class Call(Expr):
    """Function call ``func(args...)``."""
    __slots__ = ("func", "args")
    _fields = ("func", "args")

    def __init__(self, func: str, args: Sequence[Expr], line: int = 0):
        super().__init__(line)
        self.func = func
        self.args = list(args)


class Unary(Expr):
    """Unary operator: ``-``, ``+``, ``!``, ``~``, ``*`` (deref), ``&``."""
    __slots__ = ("op", "operand")
    _fields = ("op", "operand")

    def __init__(self, op: str, operand: Expr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.operand = operand


class Binary(Expr):
    """Binary operator expression."""
    __slots__ = ("op", "left", "right")
    _fields = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class Ternary(Expr):
    """Conditional expression ``cond ? then : other``."""
    __slots__ = ("cond", "then", "other")
    _fields = ("cond", "then", "other")

    def __init__(self, cond: Expr, then: Expr, other: Expr, line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.other = other


class Cast(Expr):
    """C-style cast ``(type) expr``; ``ctype`` is a :class:`repro.lang.ctypes.CType`."""
    __slots__ = ("ctype", "operand")
    _fields = ("ctype", "operand")

    def __init__(self, ctype, operand: Expr, line: int = 0):
        super().__init__(line)
        self.ctype = ctype
        self.operand = operand


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt(Node):
    """Base class for statements.  ``pragmas`` holds directives written on
    the lines immediately above the statement."""

    __slots__ = ("pragmas",)

    def __init__(self, line: int = 0):
        super().__init__(line)
        self.pragmas = []  # list[repro.acc.directives.Directive]


class VarDecl(Stmt):
    """Declaration of one variable: ``ctype name [= init];``."""
    __slots__ = ("name", "ctype", "init")
    _fields = ("name", "init")

    def __init__(self, name: str, ctype, init: Optional[Expr] = None, line: int = 0):
        super().__init__(line)
        self.name = name
        self.ctype = ctype
        self.init = init

    def _state(self):
        return (self.name, self.ctype, self.init)


class Assign(Stmt):
    """Assignment ``target op= value`` where op in {'', '+', '-', '*', '/'}."""
    __slots__ = ("target", "op", "value")
    _fields = ("target", "op", "value")

    def __init__(self, target: Expr, value: Expr, op: str = "", line: int = 0):
        super().__init__(line)
        self.target = target
        self.op = op
        self.value = value


class ExprStmt(Stmt):
    """Expression evaluated for side effects (a call, ``i++``)."""
    __slots__ = ("expr",)
    _fields = ("expr",)

    def __init__(self, expr: Expr, line: int = 0):
        super().__init__(line)
        self.expr = expr


class Block(Stmt):
    """Compound statement ``{ ... }``."""
    __slots__ = ("body",)
    _fields = ("body",)

    def __init__(self, body: Sequence[Stmt], line: int = 0):
        super().__init__(line)
        self.body = list(body)


class If(Stmt):
    __slots__ = ("cond", "then", "orelse")
    _fields = ("cond", "then", "orelse")

    def __init__(self, cond: Expr, then: Stmt, orelse: Optional[Stmt] = None, line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.orelse = orelse


class For(Stmt):
    """``for (init; cond; step) body``.

    ``init`` is a statement (Assign or VarDecl) or None; ``step`` is a
    statement (Assign or ExprStmt) or None.
    """
    __slots__ = ("init", "cond", "step", "body")
    _fields = ("init", "cond", "step", "body")

    def __init__(self, init, cond, step, body: Stmt, line: int = 0):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class While(Stmt):
    __slots__ = ("cond", "body")
    _fields = ("cond", "body")

    def __init__(self, cond: Expr, body: Stmt, line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.body = body


class Return(Stmt):
    __slots__ = ("value",)
    _fields = ("value",)

    def __init__(self, value: Optional[Expr] = None, line: int = 0):
        super().__init__(line)
        self.value = value


class Break(Stmt):
    __slots__ = ()
    _fields = ()


class Continue(Stmt):
    __slots__ = ()
    _fields = ()


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------

class Param(Node):
    """Function parameter."""
    __slots__ = ("name", "ctype")
    _fields = ("name",)

    def __init__(self, name: str, ctype, line: int = 0):
        super().__init__(line)
        self.name = name
        self.ctype = ctype

    def _state(self):
        return (self.name, self.ctype)


class FuncDef(Node):
    """Function definition."""
    __slots__ = ("name", "ret_type", "params", "body")
    _fields = ("params", "body")

    def __init__(self, name: str, ret_type, params: Sequence[Param], body: Block, line: int = 0):
        super().__init__(line)
        self.name = name
        self.ret_type = ret_type
        self.params = list(params)
        self.body = body

    def _state(self):
        return (self.name, self.ret_type, tuple(self.params), self.body)


class Program(Node):
    """A whole translation unit: globals + functions."""
    __slots__ = ("decls", "funcs")
    _fields = ("decls", "funcs")

    def __init__(self, decls: Sequence[VarDecl], funcs: Sequence[FuncDef], line: int = 0):
        super().__init__(line)
        self.decls = list(decls)
        self.funcs = list(funcs)

    def func(self, name: str) -> FuncDef:
        for f in self.funcs:
            if f.name == name:
                return f
        raise KeyError(name)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def base_name(expr: Expr) -> Optional[str]:
    """Return the root variable name of an lvalue expression, or None.

    ``a`` -> ``a``; ``a[i][j]`` -> ``a``; ``*p`` -> ``p``; ``(x)`` cases are
    not produced by the parser (parens don't create nodes).
    """
    while True:
        if isinstance(expr, Name):
            return expr.id
        if isinstance(expr, Subscript):
            expr = expr.base
        elif isinstance(expr, Unary) and expr.op == "*":
            expr = expr.operand
        elif isinstance(expr, Cast):
            expr = expr.operand
        else:
            return None


def is_lvalue(expr: Expr) -> bool:
    """True if the expression can appear on the left of an assignment."""
    return (
        isinstance(expr, Name)
        or isinstance(expr, Subscript)
        or (isinstance(expr, Unary) and expr.op == "*")
    )
