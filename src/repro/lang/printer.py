"""AST-to-source printer.

Used to emit the translated program (the "new CUDA program" of the paper's
Figure 2 becomes readable instrumented mini-C here), to round-trip sources in
tests, and to render directive suggestions back to the user.
"""

from __future__ import annotations

from typing import List

from repro.lang import ast
from repro.lang.ctypes import Array, CType, Pointer, Scalar

_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}
_UNARY_PREC = 11


def expr_to_source(expr: ast.Expr, parent_prec: int = 0) -> str:
    """Render an expression, parenthesizing only where precedence demands."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.FloatLit):
        return expr.text
    if isinstance(expr, ast.StrLit):
        body = expr.value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        return f'"{body}"'
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Subscript):
        return f"{expr_to_source(expr.base, _UNARY_PREC)}[{expr_to_source(expr.index)}]"
    if isinstance(expr, ast.Call):
        args = ", ".join(expr_to_source(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, ast.Unary):
        if expr.op in ("++", "--"):  # postfix
            return f"{expr_to_source(expr.operand, _UNARY_PREC)}{expr.op}"
        op = expr.op[1:] if expr.op.startswith("p") and expr.op != "p" else expr.op
        text = f"{op}{expr_to_source(expr.operand, _UNARY_PREC)}"
        return text if parent_prec <= _UNARY_PREC else f"({text})"
    if isinstance(expr, ast.Binary):
        prec = _PREC[expr.op]
        left = expr_to_source(expr.left, prec)
        right = expr_to_source(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, ast.Ternary):
        text = (
            f"{expr_to_source(expr.cond, 1)} ? {expr_to_source(expr.then)}"
            f" : {expr_to_source(expr.other)}"
        )
        return f"({text})" if parent_prec > 0 else text
    if isinstance(expr, ast.Cast):
        return f"({type_prefix(expr.ctype)}){expr_to_source(expr.operand, _UNARY_PREC)}"
    raise TypeError(f"cannot print expression node {type(expr).__name__}")


def type_prefix(ctype: CType) -> str:
    """Base type text for declarations and casts."""
    if isinstance(ctype, Scalar):
        return ctype.name
    if isinstance(ctype, Pointer):
        return f"{ctype.elem.name} *"
    if isinstance(ctype, Array):
        return ctype.elem.name
    raise TypeError(f"cannot print type {ctype!r}")


def _decl_to_source(decl: ast.VarDecl) -> str:
    ctype = decl.ctype
    if isinstance(ctype, Array):
        dims = "".join(f"[{d}]" for d in ctype.dims)
        text = f"{ctype.elem.name} {decl.name}{dims}"
    elif isinstance(ctype, Pointer):
        text = f"{ctype.elem.name} *{decl.name}"
    else:
        text = f"{ctype.name} {decl.name}"
    if decl.init is not None:
        text += f" = {expr_to_source(decl.init)}"
    return text + ";"


class _Printer:
    def __init__(self, indent: str = "    "):
        self.indent = indent
        self.lines: List[str] = []

    def emit(self, depth: int, text: str) -> None:
        self.lines.append(self.indent * depth + text)

    def print_pragmas(self, stmt: ast.Stmt, depth: int) -> None:
        for directive in stmt.pragmas:
            self.emit(depth, directive.to_source())

    def print_stmt(self, stmt: ast.Stmt, depth: int) -> None:
        self.print_pragmas(stmt, depth)
        if isinstance(stmt, ast.VarDecl):
            self.emit(depth, _decl_to_source(stmt))
        elif isinstance(stmt, ast.Assign):
            op = stmt.op + "="
            self.emit(
                depth,
                f"{expr_to_source(stmt.target)} {op} {expr_to_source(stmt.value)};",
            )
        elif isinstance(stmt, ast.ExprStmt):
            self.emit(depth, expr_to_source(stmt.expr) + ";")
        elif isinstance(stmt, ast.Block):
            if not stmt.body and stmt.pragmas and all(
                p.namespace == "acc" and p.name in ("update", "wait", "enter data", "exit data")
                for p in stmt.pragmas
            ):
                return  # carrier for standalone directives: pragma lines only
            self.emit(depth, "{")
            for inner in stmt.body:
                self.print_stmt(inner, depth + 1)
            self.emit(depth, "}")
        elif isinstance(stmt, ast.If):
            self.emit(depth, f"if ({expr_to_source(stmt.cond)})")
            self.print_stmt_as_body(stmt.then, depth)
            if stmt.orelse is not None:
                self.emit(depth, "else")
                self.print_stmt_as_body(stmt.orelse, depth)
        elif isinstance(stmt, ast.For):
            init = self._simple_stmt_text(stmt.init) if stmt.init else ""
            cond = expr_to_source(stmt.cond) if stmt.cond else ""
            step = self._simple_stmt_text(stmt.step) if stmt.step else ""
            self.emit(depth, f"for ({init}; {cond}; {step})")
            self.print_stmt_as_body(stmt.body, depth)
        elif isinstance(stmt, ast.While):
            self.emit(depth, f"while ({expr_to_source(stmt.cond)})")
            self.print_stmt_as_body(stmt.body, depth)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.emit(depth, "return;")
            else:
                self.emit(depth, f"return {expr_to_source(stmt.value)};")
        elif isinstance(stmt, ast.Break):
            self.emit(depth, "break;")
        elif isinstance(stmt, ast.Continue):
            self.emit(depth, "continue;")
        else:
            raise TypeError(f"cannot print statement node {type(stmt).__name__}")

    def print_stmt_as_body(self, stmt: ast.Stmt, depth: int) -> None:
        """Loop/if bodies always print as blocks for readability."""
        if isinstance(stmt, ast.Block) and not stmt.pragmas:
            self.print_stmt(stmt, depth)
        else:
            self.emit(depth, "{")
            self.print_stmt(stmt, depth + 1)
            self.emit(depth, "}")

    def _simple_stmt_text(self, stmt: ast.Stmt) -> str:
        if isinstance(stmt, ast.Assign):
            op = stmt.op + "="
            return f"{expr_to_source(stmt.target)} {op} {expr_to_source(stmt.value)}"
        if isinstance(stmt, ast.ExprStmt):
            return expr_to_source(stmt.expr)
        if isinstance(stmt, ast.VarDecl):
            return _decl_to_source(stmt)[:-1]  # strip ';'
        raise TypeError(f"bad simple statement {type(stmt).__name__}")

    def print_func(self, func: ast.FuncDef) -> None:
        ret = func.ret_type.name if func.ret_type is not None else "void"
        params = ", ".join(self._param_text(p) for p in func.params)
        self.emit(0, f"{ret} {func.name}({params})")
        self.print_stmt(func.body, 0)

    @staticmethod
    def _param_text(param: ast.Param) -> str:
        ctype = param.ctype
        if isinstance(ctype, Array):
            dims = "".join(f"[{d}]" for d in ctype.dims)
            return f"{ctype.elem.name} {param.name}{dims}"
        if isinstance(ctype, Pointer):
            return f"{ctype.elem.name} *{param.name}"
        return f"{ctype.name} {param.name}"


def to_source(node) -> str:
    """Render a Program, FuncDef, Stmt, or Expr back to mini-C source."""
    if isinstance(node, ast.Program):
        printer = _Printer()
        for decl in node.decls:
            printer.print_stmt(decl, 0)
        for func in node.funcs:
            if printer.lines:
                printer.emit(0, "")
            printer.print_func(func)
        return "\n".join(printer.lines) + "\n"
    if isinstance(node, ast.FuncDef):
        printer = _Printer()
        printer.print_func(node)
        return "\n".join(printer.lines) + "\n"
    if isinstance(node, ast.Stmt):
        printer = _Printer()
        printer.print_stmt(node, 0)
        return "\n".join(printer.lines) + "\n"
    if isinstance(node, ast.Expr):
        return expr_to_source(node)
    raise TypeError(f"cannot print node {type(node).__name__}")
