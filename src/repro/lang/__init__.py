"""Mini-C language frontend.

The toolchain consumes a C-subset language ("mini-C") that is rich enough to
express the paper's twelve OpenACC benchmarks: scalar and array declarations,
pointers (including aliasing assignments), ``for``/``while``/``if`` control
flow, arithmetic expressions, calls to a small builtin library, and
``#pragma acc`` directive lines attached to statements.

Public entry points:

* :func:`repro.lang.parser.parse_program` — source text to :class:`ast.Program`.
* :func:`repro.lang.printer.to_source` — AST back to source text.
"""

from repro.lang.parser import parse_program
from repro.lang.printer import to_source

__all__ = ["parse_program", "to_source"]
