"""Generic AST visitors and transformers.

Compiler passes either walk trees read-only (:class:`Visitor`) or rebuild
them (:class:`Transformer`, which clones nodes whose children changed so the
original tree stays intact — passes like memory-transfer demotion must not
mutate the user's program).
"""

from __future__ import annotations

import copy
from typing import Callable, List, Optional

from repro.lang import ast


class Visitor:
    """Dispatches on node class name: ``visit_Assign``, ``visit_For``, ...

    Unhandled nodes fall through to :meth:`generic_visit`, which recurses
    into children.
    """

    def visit(self, node: ast.Node):
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: ast.Node):
        for child in node.children():
            self.visit(child)


class Transformer:
    """Rebuilding visitor: each ``visit_X`` returns a replacement node (or a
    list of statements, for statement positions).  Nodes are shallow-copied
    before their fields are replaced, so the input tree is never mutated.
    """

    def visit(self, node: ast.Node):
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: ast.Node):
        replacements = {}
        for name in node._fields:
            value = getattr(node, name)
            if isinstance(value, ast.Node):
                new = self.visit(value)
                if new is not value:
                    replacements[name] = new
            elif isinstance(value, list):
                new_list, changed = self._visit_list(value)
                if changed:
                    replacements[name] = new_list
        if not replacements:
            return node
        clone = copy.copy(node)
        for name, value in replacements.items():
            setattr(clone, name, value)
        return clone

    def _visit_list(self, items: list):
        out: List = []
        changed = False
        for item in items:
            if isinstance(item, ast.Node):
                new = self.visit(item)
                if isinstance(new, list):
                    out.extend(new)
                    changed = True
                    continue
                if new is not item:
                    changed = True
                if new is not None:
                    out.append(new)
                else:
                    changed = True
            else:
                out.append(item)
        return out, changed


def clone_tree(node: ast.Node) -> ast.Node:
    """Deep-copy an AST (pragmas included)."""
    return copy.deepcopy(node)


def find_all(node: ast.Node, predicate: Callable[[ast.Node], bool]) -> List[ast.Node]:
    """All descendants (preorder, including ``node``) matching ``predicate``."""
    return [n for n in node.walk() if predicate(n)]


def names_used(node: ast.Node) -> List[str]:
    """All identifier names referenced anywhere under ``node`` (dedup, ordered)."""
    seen: List[str] = []
    for n in node.walk():
        if isinstance(n, ast.Name) and n.id not in seen:
            seen.append(n.id)
    return seen


def replace_statements(
    block: ast.Block, target: ast.Stmt, replacement: List[ast.Stmt]
) -> bool:
    """Replace ``target`` (by identity) with ``replacement`` statements in the
    first enclosing statement list under ``block``.  Returns True on success."""

    def rec(node: ast.Node) -> bool:
        for name in node._fields:
            value = getattr(node, name)
            if isinstance(value, list):
                for i, item in enumerate(value):
                    if item is target:
                        value[i: i + 1] = replacement
                        return True
                    if isinstance(item, ast.Node) and rec(item):
                        return True
            elif isinstance(value, ast.Node):
                if value is target:
                    setattr(node, name, ast.Block(replacement, target.line))
                    return True
                if rec(value):
                    return True
        return False

    return rec(block)


def parent_map(root: ast.Node) -> dict:
    """Map each node (by id) to its parent node."""
    parents = {}
    for node in root.walk():
        for child in node.children():
            parents[id(child)] = node
    return parents


def enclosing_loops(root: ast.Node, target: ast.Node) -> List[ast.Node]:
    """Loop statements (For/While) enclosing ``target`` under ``root``,
    outermost first."""
    parents = parent_map(root)
    chain: List[ast.Node] = []
    node: Optional[ast.Node] = parents.get(id(target))
    while node is not None:
        if isinstance(node, (ast.For, ast.While)):
            chain.append(node)
        node = parents.get(id(node))
    chain.reverse()
    return chain
