"""Tokenizer for the mini-C language.

A single master regex scans the source.  ``#pragma`` lines are captured as
one :data:`PRAGMA` token each (their payload is re-tokenized later by
:mod:`repro.lang.pragma`); other ``#`` lines (``#include``, ``#define`` of
simple constants) are skipped or recorded, keeping benchmark sources close
to their C originals.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple

from repro.errors import LexError

KEYWORDS = frozenset(
    """
    int long float double void
    if else for while return break continue
    """.split()
)

# Longest-first so multi-char operators win.
_OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "<<", ">>",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|", "^",
    "(", ")", "[", "]", "{", "}", ";", ",", "?", ":", ".",
]

_TOKEN_SPEC = [
    # Pragmas run to end of line, honouring backslash-newline continuations.
    ("PRAGMA", r"\#\s*pragma(?:\\\n|[^\n])*"),
    ("HASHLINE", r"\#[^\n]*"),
    ("COMMENT", r"//[^\n]*|/\*(?:[^*]|\*(?!/))*\*/"),
    ("FLOAT", r"(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?[fF]?|\d+[eE][+-]?\d+[fF]?"),
    ("INT", r"0[xX][0-9a-fA-F]+|\d+[uUlL]*"),
    ("STRING", r'"(?:[^"\\\n]|\\.)*"'),
    ("CHAR", r"'(?:[^'\\\n]|\\.)'"),
    ("ID", r"[A-Za-z_]\w*"),
    ("OP", "|".join(re.escape(op) for op in _OPERATORS)),
    ("NEWLINE", r"\n"),
    ("WS", r"[ \t\r]+"),
    ("BACKSLASH_NL", r"\\\n"),
    ("MISMATCH", r"."),
]

_MASTER = re.compile("|".join(f"(?P<{name}>{pat})" for name, pat in _TOKEN_SPEC))


class Token(NamedTuple):
    kind: str  # one of: PRAGMA INT FLOAT STRING ID KEYWORD OP EOF
    text: str
    line: int
    col: int

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    """Tokenize mini-C source into a list ending with an EOF token."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    for m in _MASTER.finditer(source):
        kind = m.lastgroup
        text = m.group()
        col = m.start() - line_start + 1
        if kind in ("WS", "BACKSLASH_NL"):
            line += text.count("\n")
            if "\n" in text:
                line_start = m.start() + text.rindex("\n") + 1
            continue
        if kind == "NEWLINE":
            line += 1
            line_start = m.end()
            continue
        if kind == "COMMENT":
            line += text.count("\n")
            if "\n" in text:
                line_start = m.start() + text.rindex("\n") + 1
            continue
        if kind == "HASHLINE":
            continue  # #include / #define lines are ignored
        if kind == "MISMATCH":
            raise LexError(f"unexpected character {text!r}", line, col)
        if kind == "ID" and text in KEYWORDS:
            kind = "KEYWORD"
        tokens.append(Token(kind, text, line, col))
        if "\n" in text:  # pragma continuations span lines
            line += text.count("\n")
            line_start = m.start() + text.rindex("\n") + 1
    tokens.append(Token("EOF", "", line, 1))
    return tokens


def parse_int_literal(text: str) -> int:
    """Parse a C integer literal (hex or decimal, suffixes stripped)."""
    text = text.rstrip("uUlL")
    return int(text, 16) if text.lower().startswith("0x") else int(text, 10)


def parse_float_literal(text: str) -> float:
    """Parse a C float literal, stripping the f/F suffix."""
    return float(text.rstrip("fF"))


def is_float_single(text: str) -> bool:
    """True if the literal carries an ``f`` suffix (C ``float``)."""
    return text.endswith(("f", "F"))
