"""Expression evaluation with C semantics.

Shared by the host interpreter and the device VM.  The evaluator is generic
over an *environment* object providing name resolution and stores:

    env.load(name)                 -> value (scalar, or numpy array for
                                      arrays/pointers)
    env.store(name, value)         -> None (scalar assignment / rebinding)
    env.call(func, args)           -> value (builtin dispatch)

Array element access goes through the numpy array returned by ``load`` so
float32 truncation happens naturally on store.  Integer division and modulo
follow C (truncation toward zero), not Python (floor).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Sequence

import numpy as np

from repro.errors import InterpError
from repro.lang import ast
from repro.lang.ctypes import Scalar


def c_div(a, b):
    """C semantics: integer operands truncate toward zero."""
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        if b == 0:
            raise InterpError("integer division by zero")
        q = abs(int(a)) // abs(int(b))
        return q if (a >= 0) == (b >= 0) else -q
    return a / b

def c_mod(a, b):
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        if b == 0:
            raise InterpError("integer modulo by zero")
        return int(a) - c_div(a, b) * int(b)
    return math.fmod(a, b)


_BINOPS: Dict[str, Callable] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": c_div,
    "%": c_mod,
    "<": lambda a, b: int(a < b),
    ">": lambda a, b: int(a > b),
    "<=": lambda a, b: int(a <= b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "&": lambda a, b: int(a) & int(b),
    "|": lambda a, b: int(a) | int(b),
    "^": lambda a, b: int(a) ^ int(b),
    "<<": lambda a, b: int(a) << int(b),
    ">>": lambda a, b: int(a) >> int(b),
}


def evaluate(expr: ast.Expr, env) -> object:
    """Evaluate an expression against an environment."""
    kind = type(expr)
    if kind is ast.IntLit:
        return expr.value
    if kind is ast.FloatLit:
        return expr.value
    if kind is ast.StrLit:
        return expr.value
    if kind is ast.Name:
        return env.load(expr.id)
    if kind is ast.Subscript:
        array, indices = _resolve_subscript(expr, env)
        try:
            value = array[indices]
        except (IndexError, TypeError) as exc:
            raise InterpError(f"bad subscript on line {expr.line}: {exc}") from exc
        return value.item() if isinstance(value, np.generic) else value
    if kind is ast.Call:
        args = [evaluate(a, env) for a in expr.args]
        return env.call(expr.func, args)
    if kind is ast.Unary:
        return _eval_unary(expr, env)
    if kind is ast.Binary:
        op = expr.op
        if op == "&&":
            return int(bool(evaluate(expr.left, env)) and bool(evaluate(expr.right, env)))
        if op == "||":
            return int(bool(evaluate(expr.left, env)) or bool(evaluate(expr.right, env)))
        left = evaluate(expr.left, env)
        right = evaluate(expr.right, env)
        try:
            return _BINOPS[op](left, right)
        except KeyError:
            raise InterpError(f"unknown operator {op!r}")
    if kind is ast.Ternary:
        if evaluate(expr.cond, env):
            return evaluate(expr.then, env)
        return evaluate(expr.other, env)
    if kind is ast.Cast:
        value = evaluate(expr.operand, env)
        ctype = expr.ctype
        if isinstance(ctype, Scalar):
            if ctype.is_integer:
                return int(value)
            return ctype.dtype(value).item()
        return value
    raise InterpError(f"cannot evaluate {type(expr).__name__}")


def _eval_unary(expr: ast.Unary, env):
    op = expr.op
    if op in ("++", "--", "p++", "p--"):
        old = evaluate(expr.operand, env)
        delta = 1 if "+" in op else -1
        assign(expr.operand, old + delta, env)
        return old if op in ("++", "--") else old + delta
    value = evaluate(expr.operand, env)
    if op == "-":
        return -value
    if op == "!":
        return int(not value)
    if op == "~":
        return ~int(value)
    if op == "*":
        # Deref: pointers are numpy arrays; *p means p[0].
        if isinstance(value, np.ndarray):
            return value.flat[0].item()
        raise InterpError("dereference of non-pointer value")
    if op == "&":
        # Address-of an array/lvalue yields the backing array.
        base = ast.base_name(expr.operand)
        if base is not None:
            return env.load(base)
        raise InterpError("cannot take address of expression")
    raise InterpError(f"unknown unary operator {op!r}")


def _resolve_subscript(expr: ast.Subscript, env):
    """Return (numpy array, index tuple) for possibly-nested subscripts."""
    indices = []
    node: ast.Expr = expr
    while isinstance(node, ast.Subscript):
        indices.append(int(evaluate(node.index, env)))
        node = node.base
    indices.reverse()
    array = evaluate(node, env)
    if not isinstance(array, np.ndarray):
        raise InterpError(
            f"subscript of non-array value ({ast.base_name(expr)!r}) on line {expr.line}"
        )
    return array, tuple(indices)


def assign(target: ast.Expr, value, env) -> None:
    """Store ``value`` into an lvalue."""
    if isinstance(target, ast.Name):
        env.store(target.id, value)
        return
    if isinstance(target, ast.Subscript):
        array, indices = _resolve_subscript(target, env)
        try:
            array[indices] = value
        except (IndexError, TypeError, ValueError) as exc:
            raise InterpError(f"bad store on line {target.line}: {exc}") from exc
        return
    if isinstance(target, ast.Unary) and target.op == "*":
        pointee = evaluate(target.operand, env)
        if isinstance(pointee, np.ndarray):
            pointee.flat[0] = value
            return
        raise InterpError("store through non-pointer value")
    raise InterpError(f"cannot assign to {type(target).__name__}")


def exec_simple(stmt: ast.Stmt, env) -> None:
    """Execute one simple statement (Assign / VarDecl / ExprStmt)."""
    if isinstance(stmt, ast.Assign):
        value = evaluate(stmt.value, env)
        if stmt.op:
            old = evaluate(stmt.target, env)
            value = _BINOPS[stmt.op](old, value)
        assign(stmt.target, value, env)
    elif isinstance(stmt, ast.VarDecl):
        if stmt.init is not None:
            env.declare(stmt.name, stmt.ctype, evaluate(stmt.init, env))
        else:
            env.declare(stmt.name, stmt.ctype, None)
    elif isinstance(stmt, ast.ExprStmt):
        evaluate(stmt.expr, env)
    else:
        raise InterpError(f"not a simple statement: {type(stmt).__name__}")


class Builtins:
    """Default math builtins shared by host and device."""

    TABLE: Dict[str, Callable] = {
        "sqrt": math.sqrt,
        "fabs": abs,
        "abs": lambda x: abs(int(x)),
        "exp": math.exp,
        "log": math.log,
        "pow": math.pow,
        "sin": math.sin,
        "cos": math.cos,
        "floor": math.floor,
        "ceil": math.ceil,
        "fmax": max,
        "fmin": min,
        "max": max,
        "min": min,
        "sqrtf": lambda x: np.float32(math.sqrt(np.float32(x))).item(),
        "expf": lambda x: np.float32(math.exp(np.float32(x))).item(),
        "fabsf": lambda x: np.float32(abs(np.float32(x))).item(),
    }

    @classmethod
    def call(cls, name: str, args: Sequence) -> object:
        try:
            fn = cls.TABLE[name]
        except KeyError:
            raise InterpError(f"unknown builtin function {name!r}")
        return fn(*args)
