"""Expression evaluation with C semantics.

Shared by the host interpreter and the device VM.  The evaluator is generic
over an *environment* object providing name resolution and stores:

    env.load(name)                 -> value (scalar, or numpy array for
                                      arrays/pointers)
    env.store(name, value)         -> None (scalar assignment / rebinding)
    env.call(func, args)           -> value (builtin dispatch)

Array element access goes through the numpy array returned by ``load`` so
float32 truncation happens naturally on store.  Integer division and modulo
follow C (truncation toward zero), not Python (floor).

Expressions and simple statements are *compiled once* per AST node into
Python closures (:func:`compile_expr` / :func:`compile_stmt`) and the
closure is reused on every subsequent evaluation — the host interpreter and
the device stepper both go through this cache, which removes the per-visit
type dispatch that dominated interpretation cost.  The cache is keyed by
node identity in a :class:`weakref.WeakKeyDictionary`, so entries die with
the AST they belong to and never leak between programs.  Compiler passes
clone nodes they rewrite (they never mutate expression fields in place), so
a cached closure can never go stale.
"""

from __future__ import annotations

import math
import threading
import weakref
from collections import deque
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.errors import InterpError
from repro.lang import ast
from repro.lang.ctypes import Scalar


def c_div(a, b):
    """C semantics: integer operands truncate toward zero."""
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        if b == 0:
            raise InterpError("integer division by zero")
        q = abs(int(a)) // abs(int(b))
        return q if (a >= 0) == (b >= 0) else -q
    return a / b

def c_mod(a, b):
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        if b == 0:
            raise InterpError("integer modulo by zero")
        return int(a) - c_div(a, b) * int(b)
    return math.fmod(a, b)


_BINOPS: Dict[str, Callable] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": c_div,
    "%": c_mod,
    "<": lambda a, b: int(a < b),
    ">": lambda a, b: int(a > b),
    "<=": lambda a, b: int(a <= b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "&": lambda a, b: int(a) & int(b),
    "|": lambda a, b: int(a) | int(b),
    "^": lambda a, b: int(a) ^ int(b),
    "<<": lambda a, b: int(a) << int(b),
    ">>": lambda a, b: int(a) >> int(b),
}


# ---------------------------------------------------------------------------
# Compiled-expression cache
# ---------------------------------------------------------------------------
#
# Closures are weakly keyed by AST node, so in a short-lived process entries
# simply die with their program.  A long-lived daemon changes the picture:
# its shared parse cache pins many ASTs alive, so the weak tables would grow
# without limit.  Each table therefore carries an *entry cap*: when an
# insert pushes a table past its cap, the oldest inserts are evicted (and
# counted) until it fits.  Eviction order is insertion order, not
# least-recently-used, by design — a closure lookup sits on the interpreter's
# per-statement hot path (the very path PR 1's closure cache made fast), and
# maintaining recency there would tax every statement executed.  A closure's
# useful life tracks its program's, so insertion order is an excellent
# proxy.  Evicting a live node's closure is always safe: the next lookup
# recompiles it.

DEFAULT_CLOSURE_CACHE_MAX = 65536

_EXPR_CACHE: "weakref.WeakKeyDictionary[ast.Expr, Callable]" = weakref.WeakKeyDictionary()
_STMT_CACHE: "weakref.WeakKeyDictionary[ast.Stmt, Callable]" = weakref.WeakKeyDictionary()
_STORE_CACHE: "weakref.WeakKeyDictionary[ast.Expr, Callable]" = weakref.WeakKeyDictionary()
_CACHE_STATS = {"expr_hits": 0, "expr_misses": 0, "stmt_hits": 0,
                "stmt_misses": 0, "expr_evictions": 0, "stmt_evictions": 0,
                "store_evictions": 0}
_CACHE_MAX = {"max_entries": DEFAULT_CLOSURE_CACHE_MAX}
# Insertion-order rings of weakrefs (dead refs are skipped at evict time).
_EXPR_ORDER: "deque[weakref.ref]" = deque()
_STMT_ORDER: "deque[weakref.ref]" = deque()
_STORE_ORDER: "deque[weakref.ref]" = deque()
# Guards the miss/insert path only; the hit path stays lock-free (CPython
# dict reads are atomic, and a racing double-compile is benign — both
# closures are equivalent and one wins).
_INSERT_LOCK = threading.Lock()


def expr_cache_stats() -> Dict[str, int]:
    """Hit/miss/eviction counters plus current cache sizes (diagnostics)."""
    stats = dict(_CACHE_STATS)
    stats["expr_entries"] = len(_EXPR_CACHE)
    stats["stmt_entries"] = len(_STMT_CACHE)
    stats["max_entries"] = _CACHE_MAX["max_entries"]
    return stats


def set_closure_cache_limit(max_entries: Optional[int]) -> int:
    """Set the per-table entry cap (None restores the default); returns the
    previous cap.  The daemon exposes this as a serving knob."""
    previous = _CACHE_MAX["max_entries"]
    _CACHE_MAX["max_entries"] = (DEFAULT_CLOSURE_CACHE_MAX
                                 if max_entries is None else max_entries)
    return previous


def clear_expr_cache() -> None:
    """Drop every cached closure (tests; normally unnecessary — entries are
    weakly keyed and die with their AST)."""
    _EXPR_CACHE.clear()
    _STMT_CACHE.clear()
    _STORE_CACHE.clear()
    _EXPR_ORDER.clear()
    _STMT_ORDER.clear()
    _STORE_ORDER.clear()
    for key in _CACHE_STATS:
        _CACHE_STATS[key] = 0


def _insert_bounded(cache, order, node, fn, evict_counter: str) -> None:
    """Insert under the entry cap, evicting oldest inserts on overflow."""
    with _INSERT_LOCK:
        cache[node] = fn
        try:
            order.append(weakref.ref(node))
        except TypeError:
            return  # unweakrefable key: the weak table rejected it anyway
        cap = _CACHE_MAX["max_entries"]
        if len(order) > max(2 * cap, 1024):
            # Entries that died with their AST leave dead refs behind in the
            # ring; compact so the ring stays O(cap) even when the weak
            # tables never overflow.
            live = [ref for ref in order if ref() is not None]
            order.clear()
            order.extend(live)
        while len(cache) > cap and order:
            ref = order.popleft()
            old = ref()
            if old is None or old is node:
                # Dead node (entry already gone) — or the cap is so small
                # the brand-new entry is the only one left; keep it.
                if old is node:
                    order.append(ref)
                    break
                continue
            if cache.pop(old, None) is not None:
                _CACHE_STATS[evict_counter] += 1


def compile_expr(expr: ast.Expr) -> Callable:
    """Closure for ``expr``: ``fn(env) -> value``.  Compiled once per node."""
    fn = _EXPR_CACHE.get(expr)
    if fn is None:
        _CACHE_STATS["expr_misses"] += 1
        fn = _compile_expr(expr)
        _insert_bounded(_EXPR_CACHE, _EXPR_ORDER, expr, fn, "expr_evictions")
    else:
        _CACHE_STATS["expr_hits"] += 1
    return fn


def compile_store(target: ast.Expr) -> Callable:
    """Closure for an lvalue: ``fn(value, env) -> None``."""
    fn = _STORE_CACHE.get(target)
    if fn is None:
        fn = _compile_store(target)
        _insert_bounded(_STORE_CACHE, _STORE_ORDER, target, fn,
                        "store_evictions")
    return fn


def compile_stmt(stmt: ast.Stmt) -> Callable:
    """Closure for a simple statement (Assign / VarDecl / ExprStmt):
    ``fn(env) -> None``."""
    fn = _STMT_CACHE.get(stmt)
    if fn is None:
        _CACHE_STATS["stmt_misses"] += 1
        fn = _compile_stmt(stmt)
        _insert_bounded(_STMT_CACHE, _STMT_ORDER, stmt, fn, "stmt_evictions")
    else:
        _CACHE_STATS["stmt_hits"] += 1
    return fn


def evaluate(expr: ast.Expr, env) -> object:
    """Evaluate an expression against an environment."""
    return compile_expr(expr)(env)


def assign(target: ast.Expr, value, env) -> None:
    """Store ``value`` into an lvalue."""
    compile_store(target)(value, env)


def exec_simple(stmt: ast.Stmt, env) -> None:
    """Execute one simple statement (Assign / VarDecl / ExprStmt)."""
    compile_stmt(stmt)(env)


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------

def _compile_expr(expr: ast.Expr) -> Callable:
    kind = type(expr)
    if kind in (ast.IntLit, ast.FloatLit, ast.StrLit):
        value = expr.value
        return lambda env: value
    if kind is ast.Name:
        name = expr.id
        return lambda env: env.load(name)
    if kind is ast.Subscript:
        return _compile_subscript_load(expr)
    if kind is ast.Call:
        func = expr.func
        arg_fns = [compile_expr(a) for a in expr.args]
        return lambda env: env.call(func, [fn(env) for fn in arg_fns])
    if kind is ast.Unary:
        return _compile_unary(expr)
    if kind is ast.Binary:
        return _compile_binary(expr)
    if kind is ast.Ternary:
        cond = compile_expr(expr.cond)
        then = compile_expr(expr.then)
        other = compile_expr(expr.other)
        return lambda env: then(env) if cond(env) else other(env)
    if kind is ast.Cast:
        operand = compile_expr(expr.operand)
        ctype = expr.ctype
        if isinstance(ctype, Scalar):
            if ctype.is_integer:
                return lambda env: int(operand(env))
            dtype = ctype.dtype
            return lambda env: dtype(operand(env)).item()
        return operand
    raise InterpError(f"cannot evaluate {kind.__name__}")


def _compile_binary(expr: ast.Binary) -> Callable:
    op = expr.op
    left = compile_expr(expr.left)
    right = compile_expr(expr.right)
    if op == "&&":
        return lambda env: int(bool(left(env)) and bool(right(env)))
    if op == "||":
        return lambda env: int(bool(left(env)) or bool(right(env)))
    try:
        fn = _BINOPS[op]
    except KeyError:
        raise InterpError(f"unknown operator {op!r}")
    return lambda env: fn(left(env), right(env))


def _compile_unary(expr: ast.Unary) -> Callable:
    op = expr.op
    if op in ("++", "--", "p++", "p--"):
        operand = compile_expr(expr.operand)
        store = compile_store(expr.operand)
        delta = 1 if "+" in op else -1
        if op in ("++", "--"):
            def pre(env):
                old = operand(env)
                store(old + delta, env)
                return old
            return pre

        def post(env):
            new = operand(env) + delta
            store(new, env)
            return new
        return post
    operand = compile_expr(expr.operand)
    if op == "-":
        return lambda env: -operand(env)
    if op == "!":
        return lambda env: int(not operand(env))
    if op == "~":
        return lambda env: ~int(operand(env))
    if op == "*":
        def deref(env):
            # Deref: pointers are numpy arrays; *p means p[0].
            value = operand(env)
            if isinstance(value, np.ndarray):
                return value.flat[0].item()
            raise InterpError("dereference of non-pointer value")
        return deref
    if op == "&":
        base = ast.base_name(expr.operand)
        if base is not None:
            name = base

            def addr(env):
                # Address-of an array/lvalue yields the backing array.  The
                # operand is still evaluated (so &a[i] bounds-checks a[i]).
                operand(env)
                return env.load(name)
            return addr

        def bad_addr(env):
            operand(env)
            raise InterpError("cannot take address of expression")
        return bad_addr
    raise InterpError(f"unknown unary operator {op!r}")


def _subscript_parts(expr: ast.Subscript):
    """Base-expression closure plus index closures in *evaluation* order
    (outermost subscript first, matching the historical resolver; the
    computed indices are reversed before use)."""
    index_fns = []
    node: ast.Expr = expr
    while isinstance(node, ast.Subscript):
        index_fns.append(compile_expr(node.index))
        node = node.base
    return compile_expr(node), index_fns


def _compile_subscript_load(expr: ast.Subscript) -> Callable:
    base, index_fns = _subscript_parts(expr)
    line = expr.line
    root = ast.base_name(expr)

    if len(index_fns) == 1:
        index = index_fns[0]

        def load1(env):
            i = int(index(env))
            array = base(env)
            if not isinstance(array, np.ndarray):
                raise InterpError(
                    f"subscript of non-array value ({root!r}) on line {line}"
                )
            try:
                value = array[i]
            except (IndexError, TypeError) as exc:
                raise InterpError(f"bad subscript on line {line}: {exc}") from exc
            return value.item() if isinstance(value, np.generic) else value
        return load1

    def load(env):
        indices = [int(fn(env)) for fn in index_fns]
        indices.reverse()
        array = base(env)
        if not isinstance(array, np.ndarray):
            raise InterpError(
                f"subscript of non-array value ({root!r}) on line {line}"
            )
        try:
            value = array[tuple(indices)]
        except (IndexError, TypeError) as exc:
            raise InterpError(f"bad subscript on line {line}: {exc}") from exc
        return value.item() if isinstance(value, np.generic) else value
    return load


def _resolve_subscript(expr: ast.Subscript, env):
    """Return (numpy array, index tuple) for possibly-nested subscripts."""
    base, index_fns = _subscript_parts(expr)
    indices = [int(fn(env)) for fn in index_fns]
    indices.reverse()
    array = base(env)
    if not isinstance(array, np.ndarray):
        raise InterpError(
            f"subscript of non-array value ({ast.base_name(expr)!r}) on line {expr.line}"
        )
    return array, tuple(indices)


# ---------------------------------------------------------------------------
# Store (lvalue) compilation
# ---------------------------------------------------------------------------

def _compile_store(target: ast.Expr) -> Callable:
    if isinstance(target, ast.Name):
        name = target.id
        return lambda value, env: env.store(name, value)
    if isinstance(target, ast.Subscript):
        base, index_fns = _subscript_parts(target)
        line = target.line
        root = ast.base_name(target)

        if len(index_fns) == 1:
            index = index_fns[0]

            def store1(value, env):
                i = int(index(env))
                array = base(env)
                if not isinstance(array, np.ndarray):
                    raise InterpError(
                        f"subscript of non-array value ({root!r}) on line {line}"
                    )
                try:
                    array[i] = value
                except (IndexError, TypeError, ValueError) as exc:
                    raise InterpError(f"bad store on line {line}: {exc}") from exc
            return store1

        def store(value, env):
            indices = [int(fn(env)) for fn in index_fns]
            indices.reverse()
            array = base(env)
            if not isinstance(array, np.ndarray):
                raise InterpError(
                    f"subscript of non-array value ({root!r}) on line {line}"
                )
            try:
                array[tuple(indices)] = value
            except (IndexError, TypeError, ValueError) as exc:
                raise InterpError(f"bad store on line {line}: {exc}") from exc
        return store
    if isinstance(target, ast.Unary) and target.op == "*":
        pointee_fn = compile_expr(target.operand)

        def store_deref(value, env):
            pointee = pointee_fn(env)
            if isinstance(pointee, np.ndarray):
                pointee.flat[0] = value
                return
            raise InterpError("store through non-pointer value")
        return store_deref

    def bad(value, env):
        raise InterpError(f"cannot assign to {type(target).__name__}")
    return bad


# ---------------------------------------------------------------------------
# Simple-statement compilation
# ---------------------------------------------------------------------------

def _compile_stmt(stmt: ast.Stmt) -> Callable:
    if isinstance(stmt, ast.Assign):
        value_fn = compile_expr(stmt.value)
        store = compile_store(stmt.target)
        if stmt.op:
            old_fn = compile_expr(stmt.target)
            op_fn = _BINOPS[stmt.op]

            def aug(env):
                value = value_fn(env)
                store(op_fn(old_fn(env), value), env)
            return aug
        return lambda env: store(value_fn(env), env)
    if isinstance(stmt, ast.VarDecl):
        name = stmt.name
        ctype = stmt.ctype
        if stmt.init is not None:
            init_fn = compile_expr(stmt.init)
            return lambda env: env.declare(name, ctype, init_fn(env))
        return lambda env: env.declare(name, ctype, None)
    if isinstance(stmt, ast.ExprStmt):
        expr_fn = compile_expr(stmt.expr)

        def run(env):
            expr_fn(env)
        return run

    def bad(env):
        raise InterpError(f"not a simple statement: {type(stmt).__name__}")
    return bad


class Builtins:
    """Default math builtins shared by host and device."""

    TABLE: Dict[str, Callable] = {
        "sqrt": math.sqrt,
        "fabs": abs,
        "abs": lambda x: abs(int(x)),
        "exp": math.exp,
        "log": math.log,
        "pow": math.pow,
        "sin": math.sin,
        "cos": math.cos,
        "floor": math.floor,
        "ceil": math.ceil,
        "fmax": max,
        "fmin": min,
        "max": max,
        "min": min,
        "sqrtf": lambda x: np.float32(math.sqrt(np.float32(x))).item(),
        "expf": lambda x: np.float32(math.exp(np.float32(x))).item(),
        "fabsf": lambda x: np.float32(abs(np.float32(x))).item(),
    }

    @classmethod
    def call(cls, name: str, args: Sequence) -> object:
        try:
            fn = cls.TABLE[name]
        except KeyError:
            raise InterpError(f"unknown builtin function {name!r}")
        return fn(*args)
