"""Parser for ``#pragma`` lines.

Two namespaces are understood:

* ``acc`` — the OpenACC 1.0 directive set used by the benchmarks;
* ``repro`` — the paper's §III-C extensions (``bound``, ``assert``) plus
  tool-control directives used in tests.

The pragma payload is re-tokenized with the mini-C lexer; clause argument
expressions reuse the main expression parser.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.acc.directives import (
    ALL_ACC_DIRECTIVES,
    Clause,
    Directive,
    REDUCTION_OPS,
    VAR_LIST_CLAUSES,
    VarRef,
)
from repro.errors import PragmaError
from repro.lang.lexer import Token, tokenize

_PRAGMA_RE = re.compile(r"\#\s*pragma\s+(\w+)\s*(.*)", re.S)

# Clauses that may appear with no parenthesized argument.
_BARE_OK = frozenset({"gang", "worker", "vector", "seq", "independent", "async", "wait"})

_REPRO_DIRECTIVES = frozenset({"bound", "assert"})


class _ClauseStream:
    """Token cursor over a pragma payload."""

    def __init__(self, text: str, line: int):
        # Re-tokenize payload; lexer line numbers restart at 1, so shift.
        self.tokens = [t for t in tokenize(text) if t.kind != "EOF"]
        self.tokens.append(Token("EOF", "", 1, len(text) + 1))
        self.pos = 0
        self.line = line

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.peek()
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if tok.kind != kind or (text is not None and tok.text != text):
            raise PragmaError(
                f"expected {text or kind!r} in pragma, found {tok.text!r}", self.line, tok.col
            )
        return self.next()

    @property
    def eof(self) -> bool:
        return self.peek().kind == "EOF"

    def balanced_text(self) -> str:
        """Consume tokens up to the matching ')' and return their raw text."""
        depth = 0
        parts: List[str] = []
        while True:
            tok = self.peek()
            if tok.kind == "EOF":
                raise PragmaError("unbalanced parentheses in pragma", self.line)
            if tok.kind == "OP" and tok.text == "(":
                depth += 1
            elif tok.kind == "OP" and tok.text == ")":
                if depth == 0:
                    return " ".join(parts)
                depth -= 1
            parts.append(tok.text)
            self.next()


def parse_pragma(text: str, line: int = 0) -> Directive:
    """Parse a full ``#pragma ...`` line into a :class:`Directive`."""
    m = _PRAGMA_RE.match(text)
    if not m:
        raise PragmaError(f"malformed pragma line: {text!r}", line)
    namespace, payload = m.group(1), m.group(2)
    if namespace == "acc":
        return _parse_acc(payload, line)
    if namespace == "repro":
        return _parse_repro(payload, line)
    raise PragmaError(f"unknown pragma namespace {namespace!r}", line)


def _parse_acc(payload: str, line: int) -> Directive:
    cs = _ClauseStream(payload, line)
    name_tok = cs.expect("ID")
    name = name_tok.text
    # Combined directives: "kernels loop", "parallel loop", "enter data".
    if name in ("kernels", "parallel") and cs.peek().kind == "ID" and cs.peek().text == "loop":
        cs.next()
        name = f"{name} loop"
    if name in ("enter", "exit") and cs.peek().kind == "ID" and cs.peek().text == "data":
        cs.next()
        name = f"{name} data"
    if name not in ALL_ACC_DIRECTIVES:
        raise PragmaError(f"unknown acc directive {name!r}", line)
    directive = Directive(name, line=line)
    if name == "wait" and cs.accept("OP", "("):
        expr = _parse_clause_expr(cs, line)
        cs.expect("OP", ")")
        directive.add_clause(Clause("wait", [expr]))
    while not cs.eof:
        directive.add_clause(_parse_clause(cs, line))
    return directive


def _parse_repro(payload: str, line: int) -> Directive:
    cs = _ClauseStream(payload, line)
    name = cs.expect("ID").text
    if name not in _REPRO_DIRECTIVES:
        raise PragmaError(f"unknown repro directive {name!r}", line)
    directive = Directive(name, namespace="repro", line=line)
    cs.expect("OP", "(")
    if name == "bound":
        var = cs.expect("ID").text
        cs.expect("OP", ",")
        lo = _parse_clause_expr(cs, line)
        cs.expect("OP", ",")
        hi = _parse_clause_expr(cs, line)
        directive.add_clause(Clause("bound", [VarRef(var), lo, hi]))
    else:  # assert
        expr = _parse_clause_expr(cs, line)
        directive.add_clause(Clause("assert", [expr]))
    cs.expect("OP", ")")
    return directive


def _parse_clause(cs: _ClauseStream, line: int) -> Clause:
    tok = cs.peek()
    if tok.kind not in ("ID", "KEYWORD"):
        raise PragmaError(f"expected clause name, found {tok.text!r}", line, tok.col)
    cs.next()
    name = tok.text
    if not cs.accept("OP", "("):
        if name in _BARE_OK:
            return Clause(name)
        raise PragmaError(f"clause {name!r} requires arguments", line, tok.col)
    if name == "reduction":
        clause = _parse_reduction(cs, line)
    elif name in VAR_LIST_CLAUSES:
        clause = Clause(name, _parse_var_list(cs, line))
    else:
        args = [_parse_clause_expr(cs, line)]
        clause = Clause(name, args)
    cs.expect("OP", ")")
    return clause


def _parse_reduction(cs: _ClauseStream, line: int) -> Clause:
    op_tok = cs.peek()
    if op_tok.kind == "ID" and op_tok.text in ("max", "min"):
        op = op_tok.text
        cs.next()
    elif op_tok.kind == "OP" and op_tok.text in REDUCTION_OPS:
        op = op_tok.text
        cs.next()
    else:
        raise PragmaError(f"bad reduction operator {op_tok.text!r}", line, op_tok.col)
    cs.expect("OP", ":")
    return Clause("reduction", _parse_var_list(cs, line), op=op)


def _parse_var_list(cs: _ClauseStream, line: int) -> List[VarRef]:
    out: List[VarRef] = []
    while True:
        name = cs.expect("ID").text
        section = None
        if cs.accept("OP", "["):
            start = _parse_clause_expr(cs, line, stop={":"})
            cs.expect("OP", ":")
            length = _parse_clause_expr(cs, line, stop={"]"})
            cs.expect("OP", "]")
            section = (start, length)
        out.append(VarRef(name, section))
        if not cs.accept("OP", ","):
            break
    return out


def _parse_clause_expr(cs: _ClauseStream, line: int, stop: Optional[set] = None):
    """Parse one expression from the clause stream, stopping at the clause's
    closing ')' (tracked by nesting), a top-level ',', or any ``stop`` op."""
    from repro.lang.parser import parse_expression  # local: import cycle

    stop = stop or set()
    depth = 0
    parts: List[str] = []
    while True:
        tok = cs.peek()
        if tok.kind == "EOF":
            break
        if tok.kind == "OP":
            if tok.text == "(":
                depth += 1
            elif tok.text == ")":
                if depth == 0:
                    break
                depth -= 1
            elif depth == 0 and (tok.text == "," or tok.text in stop):
                break
        parts.append(tok.text)
        cs.next()
    text = " ".join(parts)
    if not text:
        raise PragmaError("empty expression in pragma clause", line)
    try:
        return parse_expression(text)
    except Exception as exc:  # re-raise with pragma context
        raise PragmaError(f"bad expression {text!r} in pragma: {exc}", line) from exc
