"""Evaluation experiments: one module per table/figure of the paper (§IV).

Each module exposes ``run(size=..., seed=...)`` returning structured rows
and a ``main()`` that renders the same rows the paper reports.  The
pytest-benchmark targets under ``benchmarks/`` call the same ``run``
functions, so the regenerated numbers and the benchmarked code paths are
identical.
"""
