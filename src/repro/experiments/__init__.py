"""Evaluation experiments: one module per table/figure of the paper (§IV).

Each module exposes ``compute_row(bench, size, seed)`` (one benchmark's
result, picklable), ``run(size=..., seed=..., jobs=...)`` returning
structured rows, ``table(...)`` returning ``(title, headers, rows)``, and
a ``main()`` that renders the same rows the paper reports.  ``jobs > 1``
fans the per-benchmark work across worker processes through
:mod:`repro.experiments.scheduler` with deterministic row ordering.  The
pytest-benchmark targets under ``benchmarks/`` call the same ``run``
functions, so the regenerated numbers and the benchmarked code paths are
identical.
"""
