"""Figure 4 — memory-transfer-verification overhead.

Run each *manually optimized* benchmark twice — plain, and instrumented
with the §III-B coherence checks — and report the overhead percentage.
With the first-access / kernel-boundary / loop-hoisting placement
optimizations the check count is small and the paper reports overhead
within a few percent (negative values in the paper are PCIe timing noise;
the model is deterministic, so our numbers are small and non-negative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.bench import all_names, get
from repro.experiments import scheduler
from repro.experiments.harness import render_table, run_variant
from repro.verify.memverify import MemVerifier

HEADERS = ["Benchmark", "Overhead (%)", "Dynamic check calls", "Inserted check sites"]


@dataclass
class Fig4Row:
    benchmark: str
    base_time: float
    verified_time: float
    overhead_pct: float
    check_calls: int
    inserted_checks: int


def compute_row(name: str, size: str = "small", seed: int = 0,
                ctx=None) -> Fig4Row:
    """One benchmark's Figure-4 row (picklable; scheduler worker entry)."""
    bench = get(name)
    base = run_variant(bench, "optimized", size, seed, ctx=ctx)
    base_time = base.runtime.profiler.total()
    verifier = MemVerifier(
        bench.compile("optimized", ctx=ctx), params=bench.params(size, seed),
        ctx=ctx,
    )
    report = verifier.run()
    verified_time = verifier.runtime.profiler.total()
    return Fig4Row(
        benchmark=name,
        base_time=base_time,
        verified_time=verified_time,
        overhead_pct=100.0 * (verified_time - base_time) / base_time,
        check_calls=report.check_calls,
        inserted_checks=report.inserted_checks,
    )


def run(size: str = "small", seed: int = 0, jobs: int = 1,
        ctx=None) -> List[Fig4Row]:
    grid = scheduler.row_grid(__name__, all_names(), size, seed)
    return scheduler.raise_failures(scheduler.run_jobs(grid, jobs, ctx=ctx))


def table(size: str = "small", seed: int = 0, jobs: int = 1,
          ctx=None) -> Tuple[str, List[str], List[Sequence]]:
    rows = run(size, seed, jobs=jobs, ctx=ctx)
    return (
        f"Figure 4 — memory-transfer-verification overhead (size={size})",
        HEADERS,
        [[r.benchmark, r.overhead_pct, r.check_calls, r.inserted_checks]
         for r in rows],
    )


def main(size: str = "small", seed: int = 0, jobs: int = 1,
         ctx=None) -> str:
    title, headers, rows = table(size, seed, jobs=jobs, ctx=ctx)
    rendered = render_table(headers, rows, title=title)
    print(rendered)
    return rendered


if __name__ == "__main__":
    main()
