"""Figure 4 — memory-transfer-verification overhead.

Run each *manually optimized* benchmark twice — plain, and instrumented
with the §III-B coherence checks — and report the overhead percentage.
With the first-access / kernel-boundary / loop-hoisting placement
optimizations the check count is small and the paper reports overhead
within a few percent (negative values in the paper are PCIe timing noise;
the model is deterministic, so our numbers are small and non-negative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.bench import all_names, get
from repro.experiments.harness import render_table, run_variant
from repro.verify.memverify import MemVerifier


@dataclass
class Fig4Row:
    benchmark: str
    base_time: float
    verified_time: float
    overhead_pct: float
    check_calls: int
    inserted_checks: int


def run(size: str = "small", seed: int = 0) -> List[Fig4Row]:
    rows: List[Fig4Row] = []
    for name in all_names():
        bench = get(name)
        base = run_variant(bench, "optimized", size, seed)
        base_time = base.runtime.profiler.total()
        verifier = MemVerifier(bench.compile("optimized"), params=bench.params(size, seed))
        report = verifier.run()
        verified_time = verifier.runtime.profiler.total()
        rows.append(
            Fig4Row(
                benchmark=name,
                base_time=base_time,
                verified_time=verified_time,
                overhead_pct=100.0 * (verified_time - base_time) / base_time,
                check_calls=report.check_calls,
                inserted_checks=report.inserted_checks,
            )
        )
    return rows


def main(size: str = "small", seed: int = 0) -> str:
    rows = run(size, seed)
    table = render_table(
        ["Benchmark", "Overhead (%)", "Dynamic check calls", "Inserted check sites"],
        [[r.benchmark, r.overhead_pct, r.check_calls, r.inserted_checks] for r in rows],
        title=f"Figure 4 — memory-transfer-verification overhead (size={size})",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
