"""Figure 1 — OpenACC default memory management vs fully optimized.

For every benchmark, run the *naive* variant (manual memory management
stripped; the default scheme copies everything accessed in before each
kernel and everything modified back after) and the *manually optimized*
variant, and report total modeled execution time and total transferred
bytes, both normalized to the optimized run.  The paper's log-scale bars
span roughly one to five decimal orders; the reproduction's shape claim is
that every benchmark is >= 1x on both axes and the iteration-heavy codes
are one or more orders of magnitude worse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.bench import all_names, get
from repro.experiments import scheduler
from repro.experiments.harness import (
    RunOutcome,
    ctx_for_devices,
    render_table,
    run_variant,
    run_variant_isolated,
)
from repro.runtime.chaos import FaultPlan

HEADERS = [
    "Benchmark",
    "Norm. total execution time",
    "Norm. total transferred data size",
]


@dataclass
class Fig1Row:
    benchmark: str
    norm_time: float          # naive time / optimized time
    norm_bytes: float         # naive bytes / optimized bytes
    naive_bytes: int
    optimized_bytes: int
    naive_time: float
    optimized_time: float


def compute_row(name: str, size: str = "small", seed: int = 0,
                ctx=None, devices: int = 1) -> Fig1Row:
    """One benchmark's Figure-1 row (picklable; scheduler worker entry).
    ``devices > 1`` runs both variants sharded across that many simulated
    GPUs (raises ShardingConflictError for unshardeable benchmarks)."""
    ctx = ctx_for_devices(ctx, devices)
    bench = get(name)
    opt = run_variant(bench, "optimized", size, seed, ctx=ctx)
    naive = run_variant(bench, "naive", size, seed, ctx=ctx)
    opt_time = opt.runtime.profiler.total()
    naive_time = naive.runtime.profiler.total()
    opt_bytes = max(1, opt.runtime.device.total_transferred_bytes())
    naive_bytes = naive.runtime.device.total_transferred_bytes()
    return Fig1Row(
        benchmark=name,
        norm_time=naive_time / opt_time,
        norm_bytes=naive_bytes / opt_bytes,
        naive_bytes=naive_bytes,
        optimized_bytes=opt_bytes,
        naive_time=naive_time,
        optimized_time=opt_time,
    )


def run(size: str = "small", seed: int = 0, jobs: int = 1,
        ctx=None) -> List[Fig1Row]:
    grid = scheduler.row_grid(__name__, all_names(), size, seed)
    return scheduler.raise_failures(scheduler.run_jobs(grid, jobs, ctx=ctx))


def run_isolated(
    size: str = "small",
    seed: int = 0,
    chaos: Optional[FaultPlan] = None,
    timeout_s: Optional[float] = 120.0,
    jobs: int = 1,
    ctx=None,
) -> List[RunOutcome]:
    """Fault-tolerant sweep: every benchmark runs in isolation (crash
    capture + wall-clock timeout).  A failed benchmark is reported and the
    sweep continues.  With a chaos plan the sweep stays sequential — a
    shared plan's fault budget must span the whole figure, which cannot
    cross process boundaries."""
    if chaos is not None:
        outcomes: List[RunOutcome] = []
        for name in all_names():
            bench = get(name)
            for variant in ("optimized", "naive"):
                outcomes.append(
                    run_variant_isolated(bench, variant, size, seed,
                                         chaos=chaos, timeout_s=timeout_s,
                                         ctx=ctx)
                )
        return outcomes
    grid = scheduler.variant_grid(all_names(), ("optimized", "naive"),
                                  size, seed, timeout_s)
    return scheduler.run_jobs(grid, jobs, ctx=ctx)


def table(size: str = "small", seed: int = 0, jobs: int = 1,
          ctx=None, devices: Sequence[int] = (1,)
          ) -> Tuple[str, List[str], List[Sequence]]:
    devices = tuple(devices)
    if devices == (1,):
        rows = run(size, seed, jobs=jobs, ctx=ctx)
        return (
            f"Figure 1 — default vs optimized memory management (size={size})",
            HEADERS,
            [[r.benchmark, r.norm_time, r.norm_bytes] for r in rows],
        )
    # Multi-device sweep: one row per (benchmark, device count).  A
    # benchmark whose kernels cannot shard at that count reports
    # "conflict" instead of failing the whole figure.
    out: List[Sequence] = []
    for count in devices:
        grid = scheduler.row_grid(__name__, all_names(), size, seed,
                                  devices=count)
        for name, res in zip(all_names(),
                             scheduler.run_jobs(grid, jobs, ctx=ctx)):
            if isinstance(res, scheduler.JobFailure):
                if res.error_type == "ShardingConflictError":
                    out.append([name, count, "conflict", "conflict"])
                    continue
                scheduler.raise_failures([res])
            out.append([res.benchmark, count, res.norm_time, res.norm_bytes])
    return (
        f"Figure 1 — default vs optimized memory management "
        f"(size={size}, devices={'/'.join(map(str, devices))})",
        [HEADERS[0], "Devices"] + HEADERS[1:],
        out,
    )


def main(size: str = "small", seed: int = 0,
         chaos: Optional[FaultPlan] = None, jobs: int = 1,
         ctx=None) -> str:
    if chaos is not None:
        outcomes = run_isolated(size, seed, chaos=chaos, ctx=ctx)
        failed = [o for o in outcomes if not o.ok]
        rendered = render_table(
            ["Benchmark", "Variant", "Status", "Detail"],
            [[o.bench, o.variant, "ok" if o.ok else "FAILED",
              "" if o.ok else f"[{o.error_stage}] {o.error_type}"]
             for o in outcomes],
            title=(f"Figure 1 under fault injection (size={size}, "
                   f"{len(failed)}/{len(outcomes)} runs failed)"),
        )
        print(rendered)
        print(chaos.summary())
        return rendered
    title, headers, rows = table(size, seed, jobs=jobs, ctx=ctx)
    rendered = render_table(headers, rows, title=title)
    print(rendered)
    return rendered


if __name__ == "__main__":
    main()
