"""Declarative experiment scheduling: (benchmark x variant/row) job grids.

An experiment sweep is a grid of small, picklable job descriptions —
:class:`VariantJob` (run one benchmark variant through
:func:`~repro.experiments.harness.run_variant_isolated`) or
:class:`RowJob` (compute one experiment row via the experiment module's
``compute_row``).  :func:`run_jobs` executes a grid either inline
(``jobs<=1``) or across a ``ProcessPoolExecutor`` (``--jobs N`` on the
CLI), always preserving input order, so a parallel sweep produces rows
byte-identical to the sequential one.

Parallel workers run the exact same job-execution function as the inline
path; only the process boundary differs.  A caller-supplied
:class:`~repro.toolchain.ToolchainContext` does not cross it wholesale —
workers build their own context — but its *result-bearing* configuration
(``sampling``, ``device_config``) is re-applied on the worker side, so a
sampled or delta-transfer sweep stays byte-identical between ``--jobs 1``
and ``--jobs N``.  One thing never crosses: a shared
:class:`~repro.runtime.chaos.FaultPlan` budget — chaos sweeps must stay
sequential (``jobs=1``) so one plan's fault budget spans the whole figure.
"""

from __future__ import annotations

import functools
import importlib
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class VariantJob:
    """One isolated benchmark-variant run."""

    bench: str
    variant: str
    size: str = "small"
    seed: int = 0
    timeout_s: Optional[float] = None


@dataclass(frozen=True)
class RowJob:
    """One experiment-row computation.

    ``experiment`` is an importable module path exposing
    ``compute_row(bench, size, seed, ctx=None, **extra)``; ``extra`` is a
    sorted tuple of keyword items so the job stays hashable/picklable.
    """

    experiment: str
    bench: str
    size: str = "small"
    seed: int = 0
    extra: Tuple[Tuple[str, object], ...] = ()


@dataclass
class JobFailure:
    """A row job that raised: the exception, flattened into strings so it
    survives the process boundary regardless of the original type."""

    job: object
    error_type: str
    error: str


class SchedulerError(ReproError):
    """At least one job in a grid failed."""


def variant_grid(
    benches: Sequence[str],
    variants: Sequence[str],
    size: str = "small",
    seed: int = 0,
    timeout_s: Optional[float] = None,
) -> List[VariantJob]:
    """The full (benchmark x variant) cross product, benchmark-major."""
    return [
        VariantJob(bench, variant, size, seed, timeout_s)
        for bench in benches
        for variant in variants
    ]


def row_grid(
    experiment: str,
    benches: Sequence[str],
    size: str = "small",
    seed: int = 0,
    **extra,
) -> List[RowJob]:
    """One :class:`RowJob` per benchmark for ``experiment``."""
    items = tuple(sorted(extra.items()))
    return [RowJob(experiment, bench, size, seed, items) for bench in benches]


def _execute(job, ctx=None):
    """Run one job.  Module-level (picklable) and exception-safe: failures
    come back as values, never raise across the pool."""
    try:
        if isinstance(job, VariantJob):
            from repro.bench import get
            from repro.experiments.harness import run_variant_isolated

            outcome = run_variant_isolated(
                get(job.bench), job.variant, job.size, job.seed,
                timeout_s=job.timeout_s, ctx=ctx,
            )
            return outcome.stripped()
        if isinstance(job, RowJob):
            module = importlib.import_module(job.experiment)
            return module.compute_row(
                job.bench, job.size, job.seed, ctx=ctx, **dict(job.extra)
            )
        raise TypeError(f"unknown job type {type(job).__name__}")
    except Exception as err:
        detail = traceback.format_exc(limit=8).splitlines()[-1].strip()
        return JobFailure(job=job, error_type=type(err).__name__,
                          error=f"{err} | {detail}")


def _execute_in_worker(config, job):
    """Pool-side job execution: rebuild a context carrying the sweep's
    result-bearing configuration (picklable ``(sampling, device_config,
    trace_context)``) before running the job.  The trace context carries the
    parent run's identity across the process boundary, so a multi-process
    sweep stitches into one coherent trace."""
    ctx = None
    if config is not None:
        from repro.toolchain import ToolchainContext

        sampling, device_config, trace_context = config
        ctx = ToolchainContext(device_config=device_config)
        ctx.sampling = sampling
        ctx.trace_context = trace_context
    return _execute(job, ctx)


def run_jobs(jobs: Sequence, jobs_n: int = 1, ctx=None) -> List:
    """Execute a job grid; results come back in input order.

    ``jobs_n <= 1`` runs inline in this process (and honours ``ctx``);
    anything larger fans out over a process pool, shipping ``ctx.sampling``
    and ``ctx.device_config`` to each worker.  Either way the result list
    lines up index-for-index with ``jobs``, which is what makes ``--jobs N``
    output identical to ``--jobs 1``.
    """
    jobs = list(jobs)
    if jobs_n is None or jobs_n <= 1 or len(jobs) <= 1:
        return [_execute(job, ctx) for job in jobs]
    config = None
    if ctx is not None:
        sampling = getattr(ctx, "sampling", None)
        device_config = getattr(ctx, "device_config", None)
        trace_context = getattr(ctx, "trace_context", None)
        if (sampling is not None or device_config is not None
                or trace_context is not None):
            config = (sampling, device_config, trace_context)
    worker = functools.partial(_execute_in_worker, config)
    with ProcessPoolExecutor(max_workers=min(jobs_n, len(jobs))) as pool:
        return list(pool.map(worker, jobs))


def raise_failures(results: Sequence) -> List:
    """Pass results through, raising :class:`SchedulerError` if any job
    came back as a :class:`JobFailure`."""
    failures = [r for r in results if isinstance(r, JobFailure)]
    if failures:
        lines = [
            f"{f.job.experiment if isinstance(f.job, RowJob) else type(f.job).__name__}"
            f"[{getattr(f.job, 'bench', '?')}]: {f.error_type}: {f.error}"
            for f in failures
        ]
        raise SchedulerError(
            f"{len(failures)}/{len(results)} jobs failed:\n" + "\n".join(lines)
        )
    return list(results)
