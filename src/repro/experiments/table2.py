"""Table II — kernel-verification coverage of injected races.

Reproduces the §IV-B study: remove every ``private``/``reduction`` clause,
disable the automatic privatization and reduction recognitions, and verify
all kernels.  A kernel whose unrecognized reduction races (shared split
read-modify-write) produces an **active** error the comparison catches; a
kernel whose falsely-shared privatizable scalar is register-cached with a
dump-back races **latently** — the outputs match and verification stays
silent (exactly the paper's account).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.bench import all_names, get
from repro.compiler.driver import CompilerOptions, compile_ast
from repro.experiments import scheduler
from repro.experiments.harness import render_table
from repro.toolchain import default_context


@dataclass
class Table2Result:
    tested_kernels: int = 0
    kernels_with_private: int = 0
    kernels_with_reduction: int = 0
    active_errors_detected: int = 0
    latent_errors_undetected: int = 0
    false_positives: int = 0  # failures in kernels with neither fault class

    def add(self, other: "Table2Result") -> None:
        self.tested_kernels += other.tested_kernels
        self.kernels_with_private += other.kernels_with_private
        self.kernels_with_reduction += other.kernels_with_reduction
        self.active_errors_detected += other.active_errors_detected
        self.latent_errors_undetected += other.latent_errors_undetected
        self.false_positives += other.false_positives


def compute_row(name: str, size: str = "small", seed: int = 0,
                ctx=None) -> Table2Result:
    """One benchmark's Table-II tally (picklable; scheduler worker entry).
    The full table is the element-wise sum over all benchmarks."""
    from repro.verify.kernelverify import KernelVerifier

    ctx = ctx or default_context()
    fault_options = CompilerOptions(
        auto_privatize=False, auto_reduction=False, strict_validation=False
    )
    result = Table2Result()
    bench = get(name)
    clean = bench.compile("optimized", ctx=ctx)
    result.tested_kernels = len(clean.kernels)
    private_kernels = {
        r.name for r in clean.regions.compute
        if r.directive.clause("private") or r.directive.clause("firstprivate")
    }
    reduction_kernels = {
        r.name for r in clean.regions.compute if r.directive.clause("reduction")
    }
    result.kernels_with_private = len(private_kernels)
    result.kernels_with_reduction = len(reduction_kernels)

    faulty_ast = ctx.passes.rewrite(
        "fault.drop_reduction",
        ctx.passes.rewrite("fault.drop_private", clean.program),
    )
    faulty = compile_ast(faulty_ast, fault_options, ctx=ctx)
    report = KernelVerifier(faulty, params=bench.params(size, seed),
                            ctx=ctx).run()
    failed = set(report.failed_kernels())

    result.active_errors_detected = len(failed & reduction_kernels)
    result.latent_errors_undetected = len(private_kernels - failed)
    result.false_positives = len(failed - reduction_kernels - private_kernels)
    return result


def run(size: str = "small", seed: int = 0, jobs: int = 1,
        ctx=None) -> Table2Result:
    grid = scheduler.row_grid(__name__, all_names(), size, seed)
    partials = scheduler.raise_failures(scheduler.run_jobs(grid, jobs, ctx=ctx))
    total = Table2Result()
    for partial in partials:
        total.add(partial)
    return total


def _rows(r: Table2Result) -> List[Sequence]:
    return [
        ["Number of tested kernels", r.tested_kernels, 46],
        ["Number of kernels containing private data", r.kernels_with_private, 16],
        ["Number of kernels containing reduction", r.kernels_with_reduction, 4],
        ["Number of kernels incurring active errors", r.active_errors_detected, 4],
        ["Number of kernels incurring latent errors", r.latent_errors_undetected, 16],
    ]


def table(size: str = "small", seed: int = 0, jobs: int = 1,
          ctx=None) -> Tuple[str, List[str], List[Sequence]]:
    r = run(size, seed, jobs=jobs, ctx=ctx)
    return (
        f"Table II — kernel verification of injected races (size={size})",
        ["Description", "Count", "Paper"],
        _rows(r),
    )


def main(size: str = "small", seed: int = 0, jobs: int = 1,
         ctx=None) -> str:
    r = run(size, seed, jobs=jobs, ctx=ctx)
    rendered = render_table(
        ["Description", "Count", "Paper"],
        _rows(r),
        title=f"Table II — kernel verification of injected races (size={size})",
    )
    print(rendered)
    if r.false_positives:
        print(f"WARNING: {r.false_positives} unexpected kernel failures")
    return rendered


if __name__ == "__main__":
    main()
