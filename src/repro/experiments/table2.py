"""Table II — kernel-verification coverage of injected races.

Reproduces the §IV-B study: remove every ``private``/``reduction`` clause,
disable the automatic privatization and reduction recognitions, and verify
all kernels.  A kernel whose unrecognized reduction races (shared split
read-modify-write) produces an **active** error the comparison catches; a
kernel whose falsely-shared privatizable scalar is register-cached with a
dump-back races **latently** — the outputs match and verification stays
silent (exactly the paper's account).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench import all_names, get
from repro.compiler.driver import CompilerOptions, compile_ast
from repro.compiler.faults import drop_private_clauses, drop_reduction_clauses
from repro.experiments.harness import render_table
from repro.verify.kernelverify import KernelVerifier


@dataclass
class Table2Result:
    tested_kernels: int = 0
    kernels_with_private: int = 0
    kernels_with_reduction: int = 0
    active_errors_detected: int = 0
    latent_errors_undetected: int = 0
    false_positives: int = 0  # failures in kernels with neither fault class


def run(size: str = "small", seed: int = 0) -> Table2Result:
    result = Table2Result()
    fault_options = CompilerOptions(
        auto_privatize=False, auto_reduction=False, strict_validation=False
    )
    for name in all_names():
        bench = get(name)
        clean = bench.compile("optimized")
        result.tested_kernels += len(clean.kernels)
        private_kernels = {
            r.name for r in clean.regions.compute
            if r.directive.clause("private") or r.directive.clause("firstprivate")
        }
        reduction_kernels = {
            r.name for r in clean.regions.compute if r.directive.clause("reduction")
        }
        result.kernels_with_private += len(private_kernels)
        result.kernels_with_reduction += len(reduction_kernels)

        faulty_ast = drop_reduction_clauses(drop_private_clauses(clean.program))
        faulty = compile_ast(faulty_ast, fault_options)
        report = KernelVerifier(faulty, params=bench.params(size, seed)).run()
        failed = set(report.failed_kernels())

        result.active_errors_detected += len(failed & reduction_kernels)
        result.latent_errors_undetected += len(private_kernels - failed)
        result.false_positives += len(failed - reduction_kernels - private_kernels)
    return result


def main(size: str = "small", seed: int = 0) -> str:
    r = run(size, seed)
    table = render_table(
        ["Description", "Count", "Paper"],
        [
            ["Number of tested kernels", r.tested_kernels, 46],
            ["Number of kernels containing private data", r.kernels_with_private, 16],
            ["Number of kernels containing reduction", r.kernels_with_reduction, 4],
            ["Number of kernels incurring active errors", r.active_errors_detected, 4],
            ["Number of kernels incurring latent errors", r.latent_errors_undetected, 16],
        ],
        title=f"Table II — kernel verification of injected races (size={size})",
    )
    print(table)
    if r.false_positives:
        print(f"WARNING: {r.false_positives} unexpected kernel failures")
    return table


if __name__ == "__main__":
    main()
