"""Table III — interactive memory-transfer verification and optimization.

Starting from each benchmark's *unoptimized* variant, the scripted
programmer iterates the Figure-2 loop until the verifier reports nothing
actionable.  Reported per benchmark:

* **total iterations** — verification rounds until convergence (paper: 2-4);
* **incorrect iterations** — rounds whose applied suggestion corrupted the
  program and was reverted (paper: BACKPROP 1, LUD 3, others 0 — wrong
  may-dead verdicts under partial writes/aliasing);
* **uncaught redundancy** — shared variables for which the tool-optimized
  program still transfers more bytes than the manually optimized version
  (paper: CFD 1 — a whole-array transfer whose useful payload is one
  element, invisible to array-granularity coherence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.bench import all_names, get
from repro.compiler.driver import CompilerOptions, compile_ast
from repro.experiments import scheduler
from repro.experiments.harness import ctx_for_devices, render_table
from repro.interp import run_compiled
from repro.lang.parser import parse_program
from repro.verify.interactive import InteractiveOptimizer

PAPER = {
    "BACKPROP": (3, 1, 0),
    "BFS": (3, 0, 0),
    "CFD": (4, 0, 1),
    "CG": (2, 0, 0),
    "EP": (2, 0, 0),
    "HOTSPOT": (2, 0, 0),
    "JACOBI": (3, 0, 0),
    "KMEANS": (2, 0, 0),
    "LUD": (4, 3, 0),
    "NW": (2, 0, 0),
    "SPMUL": (3, 0, 0),
    "SRAD": (2, 0, 0),
}

HEADERS = [
    "Benchmark",
    "# total iterations",
    "# incorrect iterations",
    "# uncaught redundancy",
    "tool bytes",
    "manual bytes",
    "(paper T/I/U)",
]


@dataclass
class Table3Row:
    benchmark: str
    total_iterations: int
    incorrect_iterations: int
    uncaught_redundancy: int
    final_bytes: int
    manual_bytes: int


def _bytes_per_var(interp) -> Dict[str, int]:
    """Total transferred bytes per variable for one run."""
    out: Dict[str, int] = {}
    device_events = interp.runtime.device.events
    for event in device_events:
        if event.kind in ("h2d", "d2h"):
            out[event.name] = out.get(event.name, 0) + event.nbytes
    return out


def compute_row(name: str, size: str = "small", seed: int = 0,
                ctx=None, max_rounds: int = 12,
                devices: int = 1) -> Table3Row:
    """One benchmark's Table-III row (picklable; scheduler worker entry).
    ``devices > 1`` drives the whole Figure-2 loop — verification rounds
    included — on that many simulated GPUs (raises ShardingConflictError
    for unshardeable benchmarks)."""
    ctx = ctx_for_devices(ctx, devices)
    options = CompilerOptions(strict_validation=False)
    bench = get(name)
    params = bench.params(size, seed)
    trace = InteractiveOptimizer(
        parse_program(bench.unoptimized_source),
        params=params,
        max_rounds=max_rounds,
        outputs=bench.outputs,
        ctx=ctx,
    ).run()

    final_run = run_compiled(
        compile_ast(trace.final_program, options, ctx=ctx), params=params,
        ctx=ctx,
    )
    manual_run = run_compiled(
        bench.compile("optimized", options, ctx=ctx), params=params, ctx=ctx
    )
    final_bytes = _bytes_per_var(final_run)
    manual_bytes = _bytes_per_var(manual_run)
    uncaught = sum(
        1 for var, nbytes in final_bytes.items()
        if nbytes > manual_bytes.get(var, 0)
    )
    return Table3Row(
        benchmark=name,
        total_iterations=trace.total_iterations,
        incorrect_iterations=trace.incorrect_iterations,
        uncaught_redundancy=uncaught,
        final_bytes=sum(final_bytes.values()),
        manual_bytes=sum(manual_bytes.values()),
    )


def run(size: str = "small", seed: int = 0, max_rounds: int = 12,
        jobs: int = 1, ctx=None) -> List[Table3Row]:
    grid = scheduler.row_grid(__name__, all_names(), size, seed,
                              max_rounds=max_rounds)
    return scheduler.raise_failures(scheduler.run_jobs(grid, jobs, ctx=ctx))


def _row_cells(r: Table3Row) -> List[object]:
    return [
        r.benchmark,
        r.total_iterations,
        r.incorrect_iterations,
        r.uncaught_redundancy,
        r.final_bytes,
        r.manual_bytes,
        "/".join(map(str, PAPER[r.benchmark])),
    ]


def table(size: str = "small", seed: int = 0, jobs: int = 1,
          ctx=None, devices: Sequence[int] = (1,)
          ) -> Tuple[str, List[str], List[Sequence]]:
    devices = tuple(devices)
    if devices == (1,):
        rows = run(size, seed, jobs=jobs, ctx=ctx)
        return (
            f"Table III — interactive memory-transfer optimization (size={size})",
            HEADERS,
            [_row_cells(r) for r in rows],
        )
    # Multi-device sweep: one row per (benchmark, device count), with
    # unshardeable benchmarks marked "conflict" rather than aborting.
    out: List[Sequence] = []
    for count in devices:
        grid = scheduler.row_grid(__name__, all_names(), size, seed,
                                  max_rounds=12, devices=count)
        for name, res in zip(all_names(),
                             scheduler.run_jobs(grid, jobs, ctx=ctx)):
            if isinstance(res, scheduler.JobFailure):
                if res.error_type == "ShardingConflictError":
                    out.append([name, count, "conflict", "-", "-", "-", "-",
                                "/".join(map(str, PAPER[name]))])
                    continue
                scheduler.raise_failures([res])
            cells = _row_cells(res)
            out.append([cells[0], count] + cells[1:])
    return (
        f"Table III — interactive memory-transfer optimization "
        f"(size={size}, devices={'/'.join(map(str, devices))})",
        [HEADERS[0], "Devices"] + HEADERS[1:],
        out,
    )


def main(size: str = "small", seed: int = 0, jobs: int = 1,
         ctx=None) -> str:
    title, headers, rows = table(size, seed, jobs=jobs, ctx=ctx)
    rendered = render_table(headers, rows, title=title)
    print(rendered)
    return rendered


if __name__ == "__main__":
    main()
