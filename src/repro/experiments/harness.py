"""Shared experiment plumbing: run helpers, isolation, and table rendering.

Chaos defaulting is context-based: experiments that build their runtimes
deep inside :func:`run_variant` pick up ``ctx.default_chaos`` from the
:class:`~repro.toolchain.ToolchainContext` they were handed (or the process
default context) without threading a plan through every figure module.  A
shared plan is shared on purpose — a single plan carries its fault budget
across a whole sweep.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.bench.suite import Benchmark
from repro.compiler.driver import CompilerOptions, compile_ast
from repro.errors import ReproError, error_stage
from repro.interp import run_compiled, run_sequential
from repro.interp.interp import Interp
from repro.runtime.accrt import AccRuntime
from repro.runtime.chaos import FaultPlan, FaultSpec
from repro.runtime.profiler import (
    CTR_SAMPLE_SKIPPED_ITERATIONS,
    CTR_SAMPLE_SKIPPED_LAUNCHES,
)
from repro.toolchain import ToolchainContext, default_context

VALID_VARIANTS = ("optimized", "unoptimized", "naive", "sequential")


def ctx_for_devices(ctx: Optional[ToolchainContext], devices: int
                    ) -> Optional[ToolchainContext]:
    """A context whose device_config requests ``devices`` simulated GPUs.

    ``devices <= 1`` returns ``ctx`` unchanged (single-device sweeps stay
    byte-identical).  Otherwise the context is shallow-copied — caches,
    metrics and tracer stay shared — with only ``device_config`` replaced,
    so one figure can mix device counts row by row without multi-device
    config leaking into the rest of the sweep."""
    if devices is None or devices <= 1:
        return ctx
    import copy
    import dataclasses

    from repro.device.device import DeviceConfig

    base = ctx or default_context()
    clone = copy.copy(base)
    cfg = getattr(base, "device_config", None)
    clone.device_config = (dataclasses.replace(cfg, devices=devices)
                           if cfg is not None
                           else DeviceConfig(devices=devices))
    return clone


def set_default_chaos(plan: Optional[FaultPlan]) -> None:
    """Deprecated shim: install (or clear, with None) the default fault
    plan on the process-default context.  Use
    ``ToolchainContext(default_chaos=plan)`` (or assign
    ``ctx.default_chaos``) and thread the context instead."""
    warnings.warn(
        "set_default_chaos() is deprecated; set default_chaos on a "
        "ToolchainContext and pass it via the ctx parameter",
        DeprecationWarning,
        stacklevel=2,
    )
    default_context().default_chaos = plan


def run_variant(
    bench: Benchmark,
    variant: str,
    size: str = "small",
    seed: int = 0,
    options: Optional[CompilerOptions] = None,
    chaos: Union[FaultPlan, FaultSpec, None] = None,
    ctx: Optional[ToolchainContext] = None,
) -> Interp:
    """Execute one benchmark variant; returns the interpreter (profiler,
    device, env attached).

    ``variant`` is 'optimized', 'unoptimized', 'naive' (default-scheme), or
    'sequential'.  ``chaos`` is a FaultSpec (fresh plan per run) or a
    FaultPlan (shared budget across runs), defaulting to
    ``ctx.default_chaos``; sequential runs never touch the device, so chaos
    does not apply to them.
    """
    if variant not in VALID_VARIANTS:
        raise ValueError(
            f"unknown variant {variant!r}; valid variants: "
            + ", ".join(VALID_VARIANTS)
        )
    ctx = ctx or default_context()
    params = bench.params(size, seed)
    if variant == "sequential":
        compiled = bench.compile("optimized", options, ctx=ctx)
        return run_sequential(compiled, params=params, ctx=ctx)
    if variant == "naive":
        compiled = compile_ast(
            bench.naive_program(ctx=ctx),
            (options or CompilerOptions()).copy(strict_validation=False),
            ctx=ctx,
        )
    else:
        compiled = bench.compile(variant, options, ctx=ctx)
    plan = ctx.resolve_chaos(chaos)
    runtime = AccRuntime(chaos=plan, ctx=ctx) if plan is not None else None
    return run_compiled(compiled, params=params, runtime=runtime, ctx=ctx)


@dataclass
class RunOutcome:
    """Structured result of one isolated benchmark run."""

    bench: str
    variant: str
    ok: bool
    interp: Optional[Interp] = None
    error_type: str = ""
    error_stage: str = ""
    error: str = ""
    wall_seconds: float = 0.0
    # Profiler-derived summary, filled on success.  Lives on the outcome
    # (not just the interp) so it survives ``stripped()`` across the
    # scheduler's process boundary — which is what keeps sampled sweeps
    # byte-identical between --jobs 1 and --jobs N.
    modeled_seconds: float = 0.0
    transferred_bytes: int = 0
    skipped_launches: int = 0
    skipped_iterations: int = 0
    sample: Optional[dict] = None
    # Recovery trail (PR 7): filled whenever the run's context carried a
    # CheckpointConfig, on success AND failure paths alike.
    resumed: bool = False
    checkpoints_saved: int = 0
    rollbacks: int = 0
    replayed_iterations: int = 0

    def describe(self) -> str:
        if self.ok:
            return f"{self.bench}/{self.variant}: ok"
        return (f"{self.bench}/{self.variant}: FAILED "
                f"[{self.error_stage}] {self.error_type}: {self.error}")

    def stripped(self) -> "RunOutcome":
        """A copy without the attached interpreter: picklable, so isolated
        outcomes can cross the scheduler's process boundary."""
        return RunOutcome(
            bench=self.bench, variant=self.variant, ok=self.ok, interp=None,
            error_type=self.error_type, error_stage=self.error_stage,
            error=self.error, wall_seconds=self.wall_seconds,
            modeled_seconds=self.modeled_seconds,
            transferred_bytes=self.transferred_bytes,
            skipped_launches=self.skipped_launches,
            skipped_iterations=self.skipped_iterations,
            sample=self.sample,
            resumed=self.resumed,
            checkpoints_saved=self.checkpoints_saved,
            rollbacks=self.rollbacks,
            replayed_iterations=self.replayed_iterations,
        )


def _fill_recovery(outcome: RunOutcome, ctx: ToolchainContext) -> None:
    """Copy the checkpoint manager's trail onto the outcome (all exit
    paths: the trail of a crashed run is exactly what a post-mortem needs)."""
    runtime = getattr(ctx, "last_runtime", None)
    ckpt = getattr(runtime, "checkpointer", None) if runtime is not None else None
    if ckpt is None:
        return
    outcome.resumed = bool(ckpt.resumed)
    outcome.checkpoints_saved = ckpt.saves
    outcome.rollbacks = ckpt.rollbacks
    outcome.replayed_iterations = ckpt.replayed_iterations


def _write_outcome_report(ctx: ToolchainContext, outcome: RunOutcome,
                          error: Optional[BaseException],
                          report_path: str) -> None:
    """Persist a RunReport for this isolated run.  Writes on *every* exit
    path — clean, typed error, crash, and watchdog/SIGALRM timeout — so a
    killed sweep still leaves its recovery counters behind as an artifact."""
    import json

    from repro.obs.report import build_report

    report = build_report(
        ctx,
        command=f"harness:{outcome.bench}/{outcome.variant}",
        program=outcome.bench,
        error=error,
        extra={"outcome": {
            "ok": outcome.ok,
            "error_type": outcome.error_type,
            "error_stage": outcome.error_stage,
            "resumed": outcome.resumed,
            "checkpoints_saved": outcome.checkpoints_saved,
            "rollbacks": outcome.rollbacks,
            "replayed_iterations": outcome.replayed_iterations,
        }},
    )
    try:
        with open(report_path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True, default=repr)
            handle.write("\n")
    except OSError as err:
        warnings.warn(f"cannot write run report {report_path!r}: {err}",
                      stacklevel=2)


def _guarded_attempt(
    bench: Benchmark,
    variant: str,
    size: str,
    seed: int,
    options: Optional[CompilerOptions],
    chaos: Union[FaultPlan, FaultSpec, None],
    timeout_s: Optional[float],
    ctx: ToolchainContext,
) -> Tuple[RunOutcome, Optional[BaseException]]:
    """One guarded execution; returns (outcome, caught error or None)."""
    use_alarm = (
        timeout_s is not None and timeout_s > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"benchmark {bench.name!r} variant {variant!r} exceeded "
            f"{timeout_s:g}s wall-clock budget"
        )

    old_handler = None
    start = time.perf_counter()
    try:
        if use_alarm:
            old_handler = signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, timeout_s)
        interp = run_variant(bench, variant, size=size, seed=seed,
                             options=options, chaos=chaos, ctx=ctx)
        profiler = interp.runtime.profiler
        sampler = getattr(interp, "sampler", None)
        return RunOutcome(
            bench.name, variant, True, interp=interp,
            wall_seconds=time.perf_counter() - start,
            modeled_seconds=profiler.total(),
            transferred_bytes=interp.runtime.device.total_transferred_bytes(),
            skipped_launches=int(profiler.counters.get(
                CTR_SAMPLE_SKIPPED_LAUNCHES, 0)),
            skipped_iterations=int(profiler.counters.get(
                CTR_SAMPLE_SKIPPED_ITERATIONS, 0)),
            sample=sampler.report() if sampler is not None else None,
        ), None
    except TimeoutError as err:
        return RunOutcome(bench.name, variant, False,
                          error_type="TimeoutError", error_stage="timeout",
                          error=str(err),
                          wall_seconds=time.perf_counter() - start), err
    except ReproError as err:
        return RunOutcome(bench.name, variant, False,
                          error_type=type(err).__name__,
                          error_stage=error_stage(err), error=str(err),
                          wall_seconds=time.perf_counter() - start), err
    except Exception as err:
        detail = traceback.format_exc(limit=8)
        return RunOutcome(bench.name, variant, False,
                          error_type=type(err).__name__,
                          error_stage="internal",
                          error=f"{err} | {detail.splitlines()[-1].strip()}",
                          wall_seconds=time.perf_counter() - start), err
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)


def run_variant_isolated(
    bench: Benchmark,
    variant: str,
    size: str = "small",
    seed: int = 0,
    options: Optional[CompilerOptions] = None,
    chaos: Union[FaultPlan, FaultSpec, None] = None,
    timeout_s: Optional[float] = None,
    ctx: Optional[ToolchainContext] = None,
    report_path: Optional[str] = None,
) -> RunOutcome:
    """Run one variant, capturing crashes and enforcing a wall-clock timeout.

    Never raises: a failure (typed toolchain error, unexpected crash, or
    timeout) comes back as a ``RunOutcome`` with ``ok=False`` so a sweep can
    keep going.  The timeout uses SIGALRM and is only armed on the main
    thread of a POSIX process; elsewhere the run is simply unguarded.

    Crash recovery: when the context's :class:`CheckpointConfig` writes
    on-disk snapshots and the run died abnormally (timeout / unexpected
    crash — not a typed toolchain error, which would just recur), one resume
    attempt is made from the last snapshot.  ``report_path`` writes a
    RunReport on every exit path, recovery counters included.
    """
    ctx = ctx or default_context()
    outcome, error = _guarded_attempt(bench, variant, size, seed, options,
                                      chaos, timeout_s, ctx)
    _fill_recovery(outcome, ctx)

    ckpt_cfg = getattr(ctx, "checkpoint", None)
    if (not outcome.ok
            and ckpt_cfg is not None
            and ckpt_cfg.dir is not None
            and outcome.error_stage in ("timeout", "internal")):
        snap_path = ckpt_cfg.snapshot_path()
        if snap_path is not None and os.path.exists(snap_path):
            ctx.checkpoint = ckpt_cfg.for_resume(snap_path)
            try:
                resumed_outcome, resumed_error = _guarded_attempt(
                    bench, variant, size, seed, options, chaos, timeout_s, ctx)
            finally:
                ctx.checkpoint = ckpt_cfg
            if resumed_outcome.ok:
                # Wall clock spans both attempts; everything else describes
                # the successful resumed execution.
                resumed_outcome.wall_seconds += outcome.wall_seconds
                outcome, error = resumed_outcome, resumed_error
                _fill_recovery(outcome, ctx)

    if report_path is not None:
        _write_outcome_report(ctx, outcome, error, report_path)
    return outcome


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    floatfmt: str = "{:.3g}",
) -> str:
    """Plain-text table (the experiments print these)."""

    def fmt(value) -> str:
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in text_rows)) if text_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in text_rows:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def rows_to_dicts(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> List[Dict]:
    return [dict(zip(headers, row)) for row in rows]
