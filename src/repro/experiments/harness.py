"""Shared experiment plumbing: run helpers and text-table rendering."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.suite import Benchmark
from repro.compiler.driver import CompilerOptions, compile_ast
from repro.interp import run_compiled, run_sequential
from repro.interp.interp import Interp


def run_variant(
    bench: Benchmark,
    variant: str,
    size: str = "small",
    seed: int = 0,
    options: Optional[CompilerOptions] = None,
) -> Interp:
    """Execute one benchmark variant; returns the interpreter (profiler,
    device, env attached).

    ``variant`` is 'optimized', 'unoptimized', 'naive' (default-scheme), or
    'sequential'.
    """
    params = bench.params(size, seed)
    if variant == "sequential":
        compiled = bench.compile("optimized", options)
        return run_sequential(compiled, params=params)
    if variant == "naive":
        compiled = compile_ast(
            bench.naive_program(),
            (options or CompilerOptions()).copy(strict_validation=False),
        )
    else:
        compiled = bench.compile(variant, options)
    return run_compiled(compiled, params=params)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    floatfmt: str = "{:.3g}",
) -> str:
    """Plain-text table (the experiments print these)."""

    def fmt(value) -> str:
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in text_rows)) if text_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in text_rows:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def rows_to_dicts(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> List[Dict]:
    return [dict(zip(headers, row)) for row in rows]
