"""Figure 3 — execution-time breakdown of kernel verification.

Verify *all* kernels of each benchmark (§III-A) and break the modeled
execution time into the paper's categories — GPU Mem Free, GPU Mem Alloc,
Mem Transfer, Async-Wait, Result-Comp, CPU Time — normalized to the
sequential CPU execution time.  The paper's shape: verification costs a few
x the sequential run, dominated by Result-Comp and Mem Transfer (every
kernel re-ships reference data and compares every output element).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.bench import all_names, get
from repro.experiments import scheduler
from repro.experiments.harness import render_table, run_variant
from repro.runtime.profiler import (
    CAT_ASYNC_WAIT,
    CAT_CPU,
    CAT_MEM_ALLOC,
    CAT_MEM_FREE,
    CAT_RESULT_COMP,
    CAT_TRANSFER,
)
from repro.verify.kernelverify import KernelVerifier

CATEGORIES = (
    CAT_MEM_FREE,
    CAT_MEM_ALLOC,
    CAT_TRANSFER,
    CAT_ASYNC_WAIT,
    CAT_RESULT_COMP,
    CAT_CPU,
)


@dataclass
class Fig3Row:
    benchmark: str
    normalized: Dict[str, float]   # category -> time / sequential CPU time
    total_normalized: float
    all_passed: bool


def compute_row(name: str, size: str = "small", seed: int = 0,
                ctx=None) -> Fig3Row:
    """One benchmark's Figure-3 row (picklable; scheduler worker entry)."""
    bench = get(name)
    seq = run_variant(bench, "sequential", size, seed, ctx=ctx)
    baseline = seq.runtime.profiler.total()
    verifier = KernelVerifier(
        bench.compile("optimized", ctx=ctx), params=bench.params(size, seed),
        ctx=ctx,
    )
    report = verifier.run()
    profiler = verifier.runtime.profiler
    normalized = {cat: profiler.totals.get(cat, 0.0) / baseline for cat in CATEGORIES}
    return Fig3Row(
        benchmark=name,
        normalized=normalized,
        total_normalized=profiler.total() / baseline,
        all_passed=report.all_passed,
    )


def run(size: str = "small", seed: int = 0, jobs: int = 1,
        ctx=None) -> List[Fig3Row]:
    grid = scheduler.row_grid(__name__, all_names(), size, seed)
    return scheduler.raise_failures(scheduler.run_jobs(grid, jobs, ctx=ctx))


def table(size: str = "small", seed: int = 0, jobs: int = 1,
          ctx=None) -> Tuple[str, List[str], List[Sequence]]:
    rows = run(size, seed, jobs=jobs, ctx=ctx)
    return (
        f"Figure 3 — kernel-verification time breakdown, normalized to sequential CPU (size={size})",
        ["Benchmark", *CATEGORIES, "Total"],
        [
            [r.benchmark, *(r.normalized[c] for c in CATEGORIES), r.total_normalized]
            for r in rows
        ],
    )


def main(size: str = "small", seed: int = 0, jobs: int = 1,
         ctx=None) -> str:
    title, headers, rows = table(size, seed, jobs=jobs, ctx=ctx)
    rendered = render_table(headers, rows, title=title)
    print(rendered)
    return rendered


if __name__ == "__main__":
    main()
