"""Command-line interface.

The tools a downstream user would actually run, mirroring the paper's
workflow (Figure 2):

    python -m repro compile prog.c               # kernel summary + warnings
    python -m repro run prog.c -p N=64           # execute, show device stats
    python -m repro verify prog.c -p N=64 \\
        --options "errorMargin=1e-6,kernels=main_kernel0"   # §III-A
    python -m repro memcheck prog.c -p N=64      # §III-B findings/suggestions
    python -m repro optimize prog.c -p N=64 --outputs a,r -o prog_opt.c
    python -m repro experiments table3 --size small --jobs 4 --json out.json

Program parameters (`-p NAME=VALUE`) bind symbolic array dimensions and
scalar inputs; arrays must be initialized by the program itself when run
from the CLI.

Every invocation builds one fresh :class:`~repro.toolchain.ToolchainContext`
and threads it through the whole pipeline; ``--time-passes`` prints its
per-pass timing table and ``--dump-after=<pass>`` dumps that pass's output.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from repro.compiler import CompilerOptions, compile_source
from repro.errors import ReproError, error_stage
from repro.interp import run_compiled, run_sequential
from repro.lang import parse_program, to_source
from repro.toolchain import ToolchainContext


def _context(args) -> ToolchainContext:
    """One fresh context per CLI invocation, configured from the common
    observability flags."""
    ctx = ToolchainContext(device_config=_device_config(args))
    if (getattr(args, "trace", None) or getattr(args, "trace_jsonl", None)
            or getattr(args, "report", None)
            or getattr(args, "trace_enabled", False)):
        from repro.obs import TraceContext, Tracer

        ctx.tracer = Tracer()
        # A traced CLI run mints its own identity, so its exports and
        # RunReport carry the same trace_id a service request would.
        ctx.trace_context = TraceContext.mint()
        ctx.tracer.trace_context = ctx.trace_context
    if getattr(args, "sample", False):
        from repro.sampling import SamplingConfig

        tolerance = getattr(args, "sample_tolerance", None)
        ctx.sampling = (SamplingConfig(tolerance=tolerance)
                        if tolerance is not None else SamplingConfig())
    every = getattr(args, "checkpoint_every", None)
    ckpt_dir = getattr(args, "checkpoint_dir", None)
    resume = getattr(args, "resume", None)
    if every is not None or ckpt_dir is not None or resume is not None:
        from repro.runtime.checkpoint import CheckpointConfig

        if every is not None and every <= 0:
            raise SystemExit("bad --checkpoint-every: must be a positive "
                             "iteration count")
        if ckpt_dir is not None and every is None and resume is None:
            raise SystemExit("--checkpoint-dir needs --checkpoint-every N "
                             "(or --resume PATH)")
        kwargs = {"every": every or 0, "dir": ckpt_dir, "resume_path": resume}
        max_rollbacks = getattr(args, "max_rollbacks", None)
        if max_rollbacks is not None:
            kwargs["max_rollbacks"] = max_rollbacks
        ctx.checkpoint = CheckpointConfig(**kwargs)
    max_retries = getattr(args, "max_retries", None)
    if max_retries is not None:
        if max_retries < 0:
            raise SystemExit("bad --max-retries: must be >= 0")
        ctx.max_retries = max_retries
    backoff_base = getattr(args, "backoff_base", None)
    if backoff_base is not None:
        if backoff_base < 0:
            raise SystemExit("bad --backoff-base: must be >= 0 seconds")
        ctx.backoff_base = backoff_base
    dump_after = getattr(args, "dump_after", None)
    if dump_after is not None:
        from repro.compiler.passes import pass_names

        if dump_after not in pass_names():
            raise SystemExit(
                f"bad --dump-after: unknown pass {dump_after!r} "
                f"(choose from: {', '.join(pass_names())})"
            )
        ctx.dump_after = dump_after
    return ctx


def _device_config(args):
    """Build a DeviceConfig from --delta-transfers/--merge-gap/--devices
    (None when no flag was given: the stock whole-array single device).
    ``experiments`` threads --devices through the figure modules instead of
    the context, so unshardeable benchmarks in the same sweep still run."""
    delta = getattr(args, "delta_transfers", False)
    gap = getattr(args, "merge_gap", None)
    devices = getattr(args, "devices", None)
    if devices is not None and devices < 1:
        raise SystemExit("bad --devices: must be >= 1")
    if getattr(args, "command", None) == "experiments":
        devices = None
    if not delta and gap is None and (devices is None or devices == 1):
        return None
    from repro.device.device import DeviceConfig

    return DeviceConfig(delta_transfers=delta, transfer_merge_gap_bytes=gap,
                        devices=devices or 1)


def _chaos_plan(args):
    """Build a FaultPlan from --chaos-seed/--chaos-spec (None when neither
    flag was given)."""
    seed = getattr(args, "chaos_seed", None)
    spec_text = getattr(args, "chaos_spec", None)
    if seed is None and spec_text is None:
        return None
    from repro.runtime.chaos import FaultPlan, FaultSpec

    seed = 0 if seed is None else seed
    try:
        spec = (FaultSpec.parse(spec_text, seed=seed) if spec_text
                else FaultSpec.default(seed=seed))
    except ValueError as err:
        raise SystemExit(f"bad --chaos-spec: {err}")
    return FaultPlan(spec)


def _write_observability(args, ctx: ToolchainContext, error=None) -> None:
    """Write the --trace/--trace-jsonl/--report artifacts (also on the
    error path, so a failed run's report carries its typed error — and,
    for ConvergenceError, the per-iteration convergence history)."""
    trace_path = getattr(args, "trace", None)
    jsonl_path = getattr(args, "trace_jsonl", None)
    report_path = getattr(args, "report", None)
    if not (trace_path or jsonl_path or report_path):
        return
    if trace_path:
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(ctx.tracer, trace_path)
        sys.stderr.write(f"-- chrome trace written to {trace_path}\n")
    if jsonl_path:
        from repro.obs.export import write_jsonl

        write_jsonl(ctx.tracer, jsonl_path)
        sys.stderr.write(f"-- jsonl trace written to {jsonl_path}\n")
    if report_path:
        import json

        from repro.obs.report import build_report

        report = build_report(
            ctx,
            command=getattr(args, "command", None),
            program=getattr(args, "file", None),
            params=_parse_params(getattr(args, "param", None)),
            error=error,
        )
        with open(report_path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True, default=repr)
            handle.write("\n")
        sys.stderr.write(f"-- run report written to {report_path}\n")


def _parse_params(pairs: Optional[List[str]]) -> Dict[str, object]:
    params: Dict[str, object] = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"bad -p value {pair!r}: expected NAME=VALUE")
        name, value = pair.split("=", 1)
        try:
            params[name] = int(value)
        except ValueError:
            try:
                params[name] = float(value)
            except ValueError:
                raise SystemExit(f"bad -p value {pair!r}: VALUE must be numeric")
    return params


def _load(path: str, args, ctx: ToolchainContext) -> "CompiledProgram":
    with open(path) as handle:
        source = handle.read()
    options = CompilerOptions(
        auto_privatize=not getattr(args, "no_auto_privatize", False),
        auto_reduction=not getattr(args, "no_auto_reduction", False),
    )
    return compile_source(source, options, ctx=ctx)


def cmd_compile(args, ctx: ToolchainContext) -> int:
    from repro.compiler.passes import summarize_kernel

    compiled = _load(args.file, args, ctx)
    print(f"{len(compiled.kernels)} kernel(s):")
    for name, plan in compiled.kernels.items():
        print(f"  {summarize_kernel(name, plan)}")
    for warning in compiled.warnings:
        print(f"warning: {warning}")
    if args.show_source:
        print()
        print(compiled.to_source())
    if args.cache_stats:
        from repro.compiler import compile_cache_stats
        from repro.lang.semantics import expr_cache_stats

        print("\n-- compile caches")
        for key, value in compile_cache_stats(ctx).items():
            print(f"   {key:15s} {value}")
        print("-- semantics closure caches")
        for key, value in expr_cache_stats().items():
            print(f"   {key:15s} {value}")
    return 0


def cmd_run(args, ctx: ToolchainContext) -> int:
    if getattr(args, "sample", False) and args.compare_sequential:
        raise SystemExit(
            "--sample is incompatible with --compare-sequential: sampled "
            "runs extrapolate skipped iterations, so program outputs are "
            "not faithful")
    compiled = _load(args.file, args, ctx)
    params = _parse_params(args.param)
    plan = _chaos_plan(args)
    runtime = None
    if plan is not None:
        from repro.runtime.accrt import AccRuntime

        runtime = AccRuntime(chaos=plan, ctx=ctx)
    run = run_compiled(compiled, params=params, runtime=runtime, ctx=ctx)
    for line in run.env.stdout:
        sys.stdout.write(line)
    profiler = run.runtime.profiler
    device = run.runtime.device
    if plan is not None:
        print(f"\n-- {plan.summary()}")
    print(f"\n-- modeled time: {profiler.total() * 1e3:.3f} ms")
    print(f"-- transfers: {len(run.runtime.transfer_log)} "
          f"({device.total_transferred_bytes()} bytes)")
    if getattr(run.runtime, "ndevices", 1) > 1:
        devset = run.runtime.devset
        print(f"-- devices: {devset.ndevices} "
              f"(d2d: {devset.d2d_copies} copies, {devset.bytes_d2d} bytes)")
        for d in range(devset.ndevices):
            print(f"   dev{d}: sent {devset.d2d_sent[d]:10d}  "
                  f"recv {devset.d2d_recv[d]:10d}")
    for cat, seconds in profiler.breakdown().items():
        if seconds:
            print(f"   {cat:15s} {seconds * 1e6:12.1f} us")
    ckpt = getattr(run, "ckpt", None)
    if ckpt is not None:
        line = (f"-- recovery: {ckpt.saves} checkpoint(s), "
                f"{ckpt.rollbacks} rollback(s), "
                f"{ckpt.replayed_iterations} replayed iteration(s)")
        if ckpt.resumed:
            line += " [resumed from snapshot]"
        if ckpt.last_disk_path:
            line += f"\n   last snapshot: {ckpt.last_disk_path}"
        print(line)
    sampler = getattr(run, "sampler", None)
    if sampler is not None:
        report = sampler.report()
        print(f"-- sampling: {report['skipped_iterations']} iterations / "
              f"{report['skipped_launches']} launches extrapolated "
              f"({report['extrapolated_seconds'] * 1e3:.3f} ms modeled), "
              f"error bound {report['error_bound']:g}")
        for loop in report["loops"]:
            if not loop["skipped"]:
                continue
            print(f"   loop {loop['loop']}: measured {loop['measured']}, "
                  f"skipped {loop['skipped']}, "
                  f"{len(loop['groups'])} cluster(s)")
    if args.compare_sequential:
        seq = run_sequential(compiled, params=params, ctx=ctx)
        # The report should describe the accelerated run, not the
        # sequential reference that just registered itself.
        ctx.last_runtime = run.runtime
        import numpy as np

        bad = []
        for decl in compiled.program.decls:
            a, b = seq.env.load(decl.name), run.env.load(decl.name)
            same = (
                np.allclose(a, b, rtol=1e-6, atol=1e-9)
                if isinstance(a, np.ndarray)
                else np.isclose(float(a), float(b), rtol=1e-6, atol=1e-9)
            )
            if not same:
                bad.append(decl.name)
        print(f"-- sequential comparison: {'MISMATCH in ' + str(bad) if bad else 'OK'}")
        return 1 if bad else 0
    return 0


def cmd_profile(args, ctx: ToolchainContext) -> int:
    from repro.runtime.profiler import (
        CTR_BYTES_D2D,
        CTR_BYTES_D2H,
        CTR_BYTES_H2D,
        CTR_BYTES_SAVED,
    )

    compiled = _load(args.file, args, ctx)
    run = run_compiled(compiled, params=_parse_params(args.param), ctx=ctx)
    runtime = run.runtime
    profiler = runtime.profiler
    counters = profiler.counters

    # Aggregate the transfer log per (var, site, route).  Grouping by the
    # full src->dst route (not just direction) keeps a d2d halo exchange
    # between dev1 and dev2 distinct from one between dev0 and dev1 — the
    # old (var, site, direction) key folded every route together, which is
    # exactly what made multi-device traffic unreadable.
    sites: Dict[tuple, Dict[str, int]] = {}
    for rec in runtime.transfer_log:
        entry = sites.setdefault(
            (rec.var, rec.site, rec.src_device, rec.dst_device),
            {"count": 0, "bytes": 0, "saved": 0, "batches": 0,
             "direction": rec.direction},
        )
        entry["count"] += 1
        entry["bytes"] += rec.nbytes
        entry["saved"] += rec.nbytes_saved
        entry["batches"] += rec.batches

    if args.format == "json":
        # Machine-readable profile: the RunReport schema plus the per-site
        # transfer aggregation.
        import json

        from repro.obs.report import build_report

        report = build_report(
            ctx, command="profile", program=args.file,
            params=_parse_params(args.param),
            extra={"transfer_sites": [
                {"var": var, "site": site, "src_device": src,
                 "dst_device": dst, "route": f"{src}->{dst}", **entry}
                for (var, site, src, dst), entry in sorted(sites.items())
            ]},
        )
        print(json.dumps(report, indent=2, sort_keys=True, default=repr))
        return 0

    print(f"-- modeled time: {profiler.total() * 1e3:.3f} ms")
    print(f"-- transfers: {len(runtime.transfer_log)} "
          f"({runtime.device.total_transferred_bytes()} bytes)")
    print(f"   h2d bytes  {counters.get(CTR_BYTES_H2D, 0):12d}")
    print(f"   d2h bytes  {counters.get(CTR_BYTES_D2H, 0):12d}")
    if getattr(runtime, "ndevices", 1) > 1:
        print(f"   d2d bytes  {counters.get(CTR_BYTES_D2D, 0):12d}")
    print(f"   saved      {counters.get(CTR_BYTES_SAVED, 0):12d}")
    for cat, seconds in profiler.breakdown().items():
        if seconds:
            print(f"   {cat:15s} {seconds * 1e6:12.1f} us")

    top = sorted(sites.items(), key=lambda kv: (-kv[1]["bytes"], kv[0]))
    top = top[: args.top_transfers]
    if top:
        print(f"\n-- top {len(top)} transfer sites by bytes moved")
        header = (f"   {'var':12s} {'site':20s} {'dir':4s} {'route':12s} "
                  f"{'count':>6s} {'batches':>8s} {'bytes':>10s} {'saved':>10s}")
        print(header)
        print("   " + "-" * (len(header) - 3))
        for (var, site, src, dst), entry in top:
            print(f"   {var:12s} {site:20s} {entry['direction']:4s} "
                  f"{src + '->' + dst:12s} {entry['count']:6d} "
                  f"{entry['batches']:8d} {entry['bytes']:10d} {entry['saved']:10d}")
    return 0


def cmd_trace(args, ctx: ToolchainContext) -> int:
    """Execute one program with tracing on and render the span timeline."""
    import json

    from repro.obs.export import chrome_trace_events, render_tree, to_jsonl_lines

    compiled = _load(args.file, args, ctx)
    plan = _chaos_plan(args)
    runtime = None
    if plan is not None:
        from repro.runtime.accrt import AccRuntime

        runtime = AccRuntime(chaos=plan, ctx=ctx)
    run = run_compiled(compiled, params=_parse_params(args.param),
                       runtime=runtime, ctx=ctx)
    ctx.last_runtime = run.runtime
    tracer = ctx.tracer
    if args.format == "tree":
        text = render_tree(tracer)
    elif args.format == "chrome":
        text = json.dumps(
            {"traceEvents": chrome_trace_events(tracer),
             "displayTimeUnit": "ms"},
            indent=None, separators=(",", ":"),
        )
    else:
        text = "\n".join(to_jsonl_lines(tracer))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"{args.format} trace written to {args.output}")
    else:
        print(text)
    return 0


def cmd_verify(args, ctx: ToolchainContext) -> int:
    from repro.verify.kernelverify import KernelVerifier, VerificationOptions

    compiled = _load(args.file, args, ctx)
    options = (
        VerificationOptions.from_string(args.options)
        if args.options
        else VerificationOptions()
    )
    report = KernelVerifier(
        compiled, params=_parse_params(args.param), options=options, ctx=ctx
    ).run()
    print(report.summary())
    return 0 if report.all_passed else 1


def cmd_memcheck(args, ctx: ToolchainContext) -> int:
    from repro.verify.memverify import MemVerifier

    compiled = _load(args.file, args, ctx)
    report = MemVerifier(compiled, params=_parse_params(args.param), ctx=ctx).run()
    print(report.summary())
    print(f"\n{report.inserted_checks} check sites, "
          f"{report.check_calls} dynamic coherence checks")
    if args.show_instrumented:
        print()
        print(report.instrumented_source)
    return 0 if not report.errors else 1


def cmd_optimize(args, ctx: ToolchainContext) -> int:
    from repro.verify.interactive import InteractiveOptimizer

    with open(args.file) as handle:
        program = parse_program(handle.read())
    outputs = args.outputs.split(",") if args.outputs else None
    trace = InteractiveOptimizer(
        program, params=_parse_params(args.param), outputs=outputs, ctx=ctx
    ).run()
    print(trace.summary())
    optimized = to_source(trace.final_program)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(optimized)
        print(f"optimized program written to {args.output}")
    else:
        print()
        print(optimized)
    print(f"final transfers: {trace.final_transfer_count} "
          f"({trace.final_transfer_bytes} bytes)")
    return 0


def cmd_chaos(args, ctx: ToolchainContext) -> int:
    """Dry-run a FaultSpec: walk the deterministic draw sequence over a
    synthetic probe pattern and print which draws would fire.  No program
    runs — this answers "what would --chaos-seed S --chaos-spec X inject?"
    before committing to a sweep."""
    from repro.runtime.chaos import KINDS_AT, FaultPlan, FaultSpec

    try:
        spec = (FaultSpec.parse(args.spec, seed=args.seed,
                                max_faults=args.max_faults)
                if args.spec
                else FaultSpec.default(seed=args.seed,
                                       max_faults=args.max_faults))
    except ValueError as err:
        raise SystemExit(f"bad --spec: {err}")
    points = [p.strip() for p in args.points.split(",") if p.strip()]
    bad = [p for p in points if p not in KINDS_AT]
    if not points or bad:
        raise SystemExit(
            f"bad --points: unknown injection point(s) "
            f"{', '.join(bad) or '(empty)'}; valid points: "
            + ", ".join(KINDS_AT))

    plan = FaultPlan(spec)
    rates = ", ".join(f"{k}={r:g}" for k, r in sorted(spec.rates.items()))
    print(f"-- chaos dry-run: seed={spec.seed} rates=[{rates}]"
          + (f" max_faults={spec.max_faults}" if spec.max_faults is not None
             else ""))
    print(f"-- probing {args.draws} draw(s) over pattern: {', '.join(points)}")
    for i in range(args.draws):
        point = points[i % len(points)]
        fault = plan.draw(point, site=f"dryrun[{i}]")
        if fault is not None:
            extra = ""
            if fault.kind == "queue.stall":
                extra = f" stall={fault.stall_seconds * 1e6:.0f}us"
            print(f"   draw {i:4d} {point:8s} -> FIRES {fault.kind}"
                  f" (seq {fault.seq}){extra}")
        elif args.verbose:
            print(f"   draw {i:4d} {point:8s} -> clean")
        if plan.exhausted:
            print(f"   draw {i:4d} -- fault budget exhausted")
            break
    print(f"-- {plan.summary()}")
    return 0


def cmd_experiments(args, ctx: ToolchainContext) -> int:
    import importlib

    from repro.experiments.harness import render_table, rows_to_dicts

    names = (
        ["fig1", "fig3", "fig4", "table2", "table3"]
        if args.which == "all"
        else [args.which]
    )
    plan = _chaos_plan(args)
    jobs = args.jobs
    if plan is not None and jobs > 1:
        # A shared plan's fault budget cannot span worker processes.
        print("note: chaos sweeps run sequentially; ignoring --jobs")
        jobs = 1
    if plan is not None and args.json:
        raise SystemExit("--json is not supported together with fault injection")

    devices = getattr(args, "devices", None) or 1
    multidev_capable = {"fig1", "table3"}
    if devices > 1:
        unsupported = [n for n in names if n not in multidev_capable]
        if unsupported:
            print(f"note: --devices applies to fig1/table3 only; "
                  f"{', '.join(unsupported)} run single-device")

    if plan is None:
        collected: Dict[str, List[Dict]] = {}
        for name in names:
            module = importlib.import_module(f"repro.experiments.{name}")
            kwargs = {}
            if devices > 1 and name in multidev_capable:
                kwargs["devices"] = (1, devices)
            title, headers, rows = module.table(size=args.size, jobs=jobs,
                                                ctx=ctx, **kwargs)
            print(render_table(headers, rows, title=title))
            print()
            collected[name] = rows_to_dicts(headers, rows)
        if args.json:
            import json

            with open(args.json, "w") as handle:
                json.dump(collected, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"rows written to {args.json}")
        return 0
    # One shared plan on this invocation's context: the fault budget spans
    # every experiment in the list.  fig1 takes it directly (isolated
    # sweep); the rest pick it up through ctx.default_chaos.
    ctx.default_chaos = plan
    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        if name == "fig1":
            module.main(size=args.size, chaos=plan, ctx=ctx)
        else:
            module.main(size=args.size, ctx=ctx)
        print()
    print(plan.summary())
    return 0


def _parse_address(text: str):
    """``host:port`` → tuple, anything else → unix-socket path.  An
    existing path wins even if it contains a colon."""
    if ":" in text and not os.path.exists(text):
        host, _, port = text.rpartition(":")
        try:
            return (host or "127.0.0.1", int(port))
        except ValueError:
            pass
    return text


def cmd_serve(args, ctx: ToolchainContext) -> int:
    from repro.service import ServiceConfig, ToolchainDaemon

    if not args.socket and args.port is None:
        raise SystemExit("repro serve needs --socket PATH or --port N")
    config = ServiceConfig(socket=args.socket, host=args.host, port=args.port,
                           workers=args.workers, cache_dir=args.cache_dir,
                           cache_disk_bytes=args.cache_disk_bytes,
                           report_dir=args.report_dir,
                           spool_dir=args.spool_dir,
                           metrics_addr=args.metrics_addr,
                           chaos_seed=getattr(args, "chaos_seed", None),
                           chaos_spec=getattr(args, "chaos_spec", None))
    if args.cache_mem_entries is not None:
        config.cache_mem_entries = args.cache_mem_entries
    if args.cache_mem_bytes is not None:
        config.cache_mem_bytes = args.cache_mem_bytes
    daemon = ToolchainDaemon(config)
    # Announce on stderr: the daemon routes stdout through the per-request
    # capture layer for its whole lifetime.
    sys.stderr.write(f"repro-serve: listening on {config.address()} "
                     f"({config.workers} workers, disk cache "
                     f"{config.cache_dir or 'off'})\n")
    if config.metrics_addr:
        sys.stderr.write(f"repro-serve: Prometheus metrics on "
                         f"http://{config.metrics_addr}/metrics\n")
    if config.chaos_seed is not None or config.chaos_spec:
        sys.stderr.write("repro-serve: operator fault injection armed "
                         f"(seed={config.chaos_seed or 0}, "
                         f"spec={config.chaos_spec or 'default'})\n")
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        stats = daemon.stats()
        sys.stderr.write(f"repro-serve: exiting after {stats['requests']} "
                         f"request(s), {stats['errors']} error(s)\n")
    return 0


def _render_top(snap: Dict) -> str:
    """The ``repro top`` table: one telemetry snapshot rendered for humans."""
    lines: List[str] = []
    util = snap.get("utilization", 0.0) or 0.0
    lines.append(
        f"repro top — uptime {snap.get('uptime_s', 0.0):8.1f}s   "
        f"workers {snap.get('workers', 0)}   util {100.0 * util:5.1f}%   "
        f"inflight {snap.get('inflight', 0)}   queue {snap.get('queue_depth', 0)}"
    )
    lines.append(
        f"requests {snap.get('requests', 0)} "
        f"({snap.get('errors', 0)} error(s))   "
        f"window {snap.get('window_s', 0.0):g}s"
    )
    verbs = snap.get("verbs") or {}
    if verbs:
        lines.append("")
        header = (f"  {'verb':10s} {'count':>6s} {'rate/s':>8s} "
                  f"{'p50 ms':>9s} {'p95 ms':>9s} {'p99 ms':>9s} {'max ms':>9s}")
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for verb, stats in sorted(verbs.items()):
            lines.append(
                f"  {verb:10s} {stats.get('count', 0):6d} "
                f"{stats.get('rate_rps', 0.0):8.2f} "
                f"{stats.get('p50_ms', 0.0):9.3f} "
                f"{stats.get('p95_ms', 0.0):9.3f} "
                f"{stats.get('p99_ms', 0.0):9.3f} "
                f"{stats.get('max_ms', 0.0):9.3f}"
            )
    cache = snap.get("cache") or {}
    if cache:
        lines.append("")
        lines.append(f"  {'cache':10s} {'hits':>8s} {'misses':>8s} {'ratio':>8s}")
        for tier in ("mem", "disk"):
            stats = cache.get(tier)
            if stats is None:
                continue
            ratio = stats.get("hit_ratio")
            lines.append(
                f"  {tier:10s} {stats.get('hits', 0):8d} "
                f"{stats.get('misses', 0):8d} "
                + (f"{ratio:8.1%}" if ratio is not None else f"{'--':>8s}")
            )
    devices = snap.get("devices") or {}
    if devices:
        lines.append("")
        d2d = snap.get("d2d") or {}
        tail = (f"   d2d {d2d.get('bytes', 0)} bytes / "
                f"{d2d.get('copies', 0)} copies")
        imbalance = snap.get("shard_imbalance")
        if imbalance is not None:
            tail += f"   imbalance {imbalance:.2f}x"
        lines.append(f"  {'device':10s} {'busy s':>12s} {'requests':>9s}{tail}")
        for dev, stats in sorted(devices.items(), key=lambda kv: int(kv[0])):
            lines.append(f"  dev{dev:7s} {stats.get('busy_s', 0.0):12.6f} "
                         f"{stats.get('requests', 0):9d}")
    flight = snap.get("flight") or {}
    if flight:
        lines.append("")
        lines.append(f"  flight recorder: {flight.get('entries', 0)}"
                     f"/{flight.get('capacity', 0)} entries "
                     f"({flight.get('dropped', 0)} dropped)")
    return "\n".join(lines)


def cmd_stats(args, ctx: ToolchainContext) -> int:
    """One-shot daemon statistics: JSON telemetry or Prometheus text."""
    import json

    from repro.service.client import connect

    with connect(_parse_address(args.connect)) as client:
        if args.prom:
            sys.stdout.write(client.prometheus())
            return 0
        response = client.request("stats", flight=bool(args.flight))
    if not response.get("ok"):
        print(json.dumps(response, indent=2, sort_keys=True, default=repr))
        return 2
    doc = {"telemetry": response.get("telemetry")}
    if args.flight:
        doc["flight"] = response.get("flight")
    print(json.dumps(doc, indent=2, sort_keys=True, default=repr))
    return 0


def cmd_top(args, ctx: ToolchainContext) -> int:
    """Attach to a running daemon and refresh a live statistics table."""
    import time

    from repro.service.client import connect

    address = _parse_address(args.connect)
    try:
        while True:
            with connect(address) as client:
                snap = client.telemetry()
            text = _render_top(snap)
            if args.once:
                print(text)
                return 0
            # Clear + home keeps the table in place between refreshes.
            sys.stdout.write("\x1b[2J\x1b[H" + text + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def cmd_cache(args, ctx: ToolchainContext) -> int:
    import json

    action = args.action
    if args.connect:
        from repro.service.client import connect

        with connect(_parse_address(args.connect)) as client:
            if action == "stats":
                response = client.request("cache.stats")
            elif action == "clear":
                response = client.request("cache.clear", tier=args.tier)
            else:
                if not args.files:
                    raise SystemExit("repro cache warm needs program files")
                response = client.request(
                    "cache.warm",
                    files=[os.path.abspath(f) for f in args.files])
        print(json.dumps(response, indent=2, sort_keys=True, default=repr))
        return 0 if response.get("ok") else 2
    if not args.cache_dir:
        raise SystemExit("repro cache needs --connect ADDR (live daemon) "
                         "or --cache-dir DIR (on-disk tier)")
    from repro.service.cache import DiskTier, ServiceCache

    disk = DiskTier(args.cache_dir)
    if action == "stats":
        print(json.dumps({"disk": disk.stats()}, indent=2, sort_keys=True))
        return 0
    if action == "clear":
        if args.tier == "mem":
            raise SystemExit("offline mode has no memory tier; use --connect")
        removed = disk.clear()
        print(f"removed {removed} disk entrie(s) from {args.cache_dir}")
        return 0
    if not args.files:
        raise SystemExit("repro cache warm needs program files")
    cache = ServiceCache(ctx.caches, disk)
    for path in args.files:
        with open(path) as handle:
            source = handle.read()
        tier = cache.warm(source, CompilerOptions(), ctx)
        print(f"{path}: {tier}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OpenARC-reproduction toolchain (Lee, Li & Vetter, IPDPS 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_observability(p):
        p.add_argument("--time-passes", action="store_true",
                       help="print the per-pass timing/cache table on exit")
        p.add_argument("--dump-after", metavar="PASS",
                       help="dump the named pass's output each time it runs")
        p.add_argument("--trace", metavar="FILE",
                       help="record a span trace and write it as Chrome-trace "
                            "JSON (load in chrome://tracing or Perfetto)")
        p.add_argument("--trace-jsonl", metavar="FILE",
                       help="record a span trace and write it as a JSONL "
                            "event stream")
        p.add_argument("--report", metavar="FILE",
                       help="write a structured RunReport JSON (spans, "
                            "metrics, findings, byte totals; written even "
                            "when the run fails)")

    def add_common(p, params=True):
        p.add_argument("file", help="mini-C source file with #pragma acc")
        if params:
            p.add_argument("-p", "--param", action="append", metavar="NAME=VALUE",
                           help="program parameter (repeatable)")
        p.add_argument("--no-auto-privatize", action="store_true")
        p.add_argument("--no-auto-reduction", action="store_true")
        add_observability(p)

    p = sub.add_parser("compile", help="compile and show the kernel summary")
    add_common(p, params=False)
    p.add_argument("--show-source", action="store_true")
    p.add_argument("--cache-stats", action="store_true",
                   help="print compile-cache and semantics closure-cache counters")
    p.set_defaults(func=cmd_compile)

    def add_chaos(p):
        p.add_argument("--chaos-seed", type=int, metavar="N",
                       help="enable deterministic fault injection with this seed")
        p.add_argument("--chaos-spec", metavar="KIND=RATE,...",
                       help='fault kinds and rates, e.g. "alloc=0.05,transfer.corrupt=0.1" '
                            "(implies --chaos-seed 0 when the seed is omitted)")

    def add_devices(p):
        p.add_argument("--devices", type=int, metavar="N",
                       help="shard statically race-free gang loops across "
                            "N simulated GPUs with modeled peer-to-peer "
                            "halo exchange (default: 1; program outputs "
                            "are bit-identical to a single device)")

    def add_transfer(p):
        p.add_argument("--delta-transfers", action="store_true",
                       help="move only dirty intervals across the modeled "
                            "PCIe link instead of whole arrays")
        p.add_argument("--merge-gap", type=int, metavar="BYTES",
                       help="coalesce dirty intervals closer than this many "
                            "bytes into one batch (default: the cost model's "
                            "latency/bandwidth break-even)")

    def add_sampling(p):
        p.add_argument("--sample", action="store_true",
                       help="phase-sampled execution: measure a few "
                            "iterations of each stable host loop and "
                            "extrapolate the rest (modeled time/bytes stay "
                            "within the declared error bound; program "
                            "outputs are not faithful)")
        p.add_argument("--sample-tolerance", type=float, metavar="R",
                       help="relative near-cluster tolerance / declared "
                            "error bound (default 0.05)")

    def add_recovery(p):
        p.add_argument("--checkpoint-every", type=int, metavar="N",
                       help="snapshot the complete execution state every N "
                            "iterations of the outermost counted loop; "
                            "faults that exhaust their retries roll back "
                            "and replay instead of aborting")
        p.add_argument("--checkpoint-dir", metavar="DIR",
                       help="also persist each snapshot atomically to "
                            "DIR/<tag>.ckpt so a killed run can resume")
        p.add_argument("--max-rollbacks", type=int, metavar="K",
                       help="fault-budget circuit breaker: abort with a "
                            "typed error after K rollbacks (default: 5)")
        p.add_argument("--resume", metavar="PATH",
                       help="resume from an on-disk checkpoint written by "
                            "--checkpoint-dir (bit-identical continuation)")
        p.add_argument("--max-retries", type=int, metavar="N",
                       help="transient-fault retry ceiling per operation "
                            "(default: 3)")
        p.add_argument("--backoff-base", type=float, metavar="SECONDS",
                       help="modeled exponential-backoff base between "
                            "retries (default: the cost model's)")

    p = sub.add_parser("run", help="execute on the simulated GPU")
    add_common(p)
    p.add_argument("--compare-sequential", action="store_true",
                   help="also run sequentially and compare all globals "
                        "(device-scratch arrays never copied out will "
                        "legitimately differ)")
    add_chaos(p)
    add_transfer(p)
    add_devices(p)
    add_sampling(p)
    add_recovery(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("profile", help="transfer-byte profile of one run")
    add_common(p)
    p.add_argument("--top-transfers", type=int, default=5, metavar="N",
                   help="list the N largest transfer sites by bytes moved "
                        "(default: 5)")
    p.add_argument("--format", default="text", choices=["text", "json"],
                   help="output format: human text (default) or the "
                        "RunReport JSON schema plus per-site aggregation")
    add_transfer(p)
    add_devices(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("trace", help="execute with tracing on and render the "
                                     "span timeline")
    add_common(p)
    p.add_argument("--format", default="tree",
                   choices=["tree", "chrome", "jsonl"],
                   help="rendering: human tree (default), Chrome-trace "
                        "JSON, or JSONL event stream")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the rendering here instead of stdout")
    add_chaos(p)
    add_transfer(p)
    add_devices(p)
    p.set_defaults(func=cmd_trace, trace_enabled=True)

    p = sub.add_parser("verify", help="kernel verification (paper §III-A)")
    add_common(p)
    p.add_argument("--options", metavar="STRING",
                   help='e.g. "complement=0,kernels=main_kernel0,errorMargin=1e-6"')
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("memcheck", help="memory-transfer verification (paper §III-B)")
    add_common(p)
    p.add_argument("--show-instrumented", action="store_true")
    # Sampling preserves the distinct finding set (CI-enforced), so sampled
    # memcheck reaches the same conclusions faster on iterative programs.
    add_sampling(p)
    add_devices(p)
    p.set_defaults(func=cmd_memcheck)

    p = sub.add_parser("optimize", help="interactive transfer optimization (Figure 2)")
    add_common(p)
    p.add_argument("--outputs", metavar="A,B,...",
                   help="observable output variables the edits must preserve")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the optimized program here")
    p.set_defaults(func=cmd_optimize)

    p = sub.add_parser("chaos", help="dry-run a fault-injection spec (no "
                                     "program executes)")
    p.add_argument("--seed", type=int, default=0, metavar="N",
                   help="rng seed for the draw sequence (default: 0)")
    p.add_argument("--spec", metavar="KIND=RATE,...",
                   help="fault kinds and rates (default: the built-in "
                        "default campaign)")
    p.add_argument("--max-faults", type=int, metavar="N",
                   help="total fault budget for the plan")
    p.add_argument("--draws", type=int, default=50, metavar="N",
                   help="how many injection-point draws to probe (default: 50)")
    p.add_argument("--points", default="alloc,transfer,transfer,launch,queue",
                   metavar="P1,P2,...",
                   help="cyclic probe pattern of injection points "
                        "(default: alloc,transfer,transfer,launch,queue — "
                        "roughly one data region + kernel per cycle)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="also print draws that do not fire")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("serve", help="long-lived toolchain daemon serving "
                                     "NDJSON requests over a socket")
    p.add_argument("--socket", metavar="PATH",
                   help="listen on this unix-domain socket")
    p.add_argument("--host", default="127.0.0.1", metavar="HOST",
                   help="TCP bind host (with --port; default: 127.0.0.1)")
    p.add_argument("--port", type=int, metavar="N", help="TCP bind port")
    p.add_argument("--workers", type=int, default=4, metavar="N",
                   help="request-handler thread pool size (default: 4)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="persistent pass-cache directory (off when omitted: "
                        "memory tier only)")
    p.add_argument("--cache-mem-entries", type=int, metavar="N",
                   help="per-cache entry cap for the shared memory tier "
                        "(default: 512)")
    p.add_argument("--cache-mem-bytes", type=int, metavar="BYTES",
                   help="per-cache byte budget for the shared memory tier "
                        "(default: 256 MiB)")
    p.add_argument("--cache-disk-bytes", type=int, metavar="BYTES",
                   help="byte budget for the disk tier (oldest entries "
                        "evicted; default: unbounded)")
    p.add_argument("--report-dir", metavar="DIR",
                   help="write one RunReport JSON per request here "
                        "(crash paths included)")
    p.add_argument("--spool-dir", metavar="DIR",
                   help="where inline 'source' programs are spooled "
                        "(default: a fresh temp dir)")
    p.add_argument("--metrics-addr", metavar="HOST:PORT",
                   help="also serve the Prometheus text exposition over "
                        "HTTP at this address (e.g. 127.0.0.1:9100)")
    add_chaos(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("stats", help="one-shot statistics of a running daemon")
    p.add_argument("--connect", required=True, metavar="ADDR",
                   help="daemon address (unix-socket path or host:port)")
    p.add_argument("--prom", action="store_true",
                   help="print the Prometheus text exposition instead of JSON")
    p.add_argument("--flight", action="store_true",
                   help="include the daemon-lifetime flight-recorder tail")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("top", help="live statistics table of a running daemon")
    p.add_argument("--connect", required=True, metavar="ADDR",
                   help="daemon address (unix-socket path or host:port)")
    p.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                   help="refresh period (default: 2.0)")
    p.add_argument("--once", action="store_true",
                   help="print one snapshot and exit (no screen clearing)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("cache", help="inspect, clear, or warm the service "
                                     "pass cache")
    p.add_argument("action", choices=["stats", "clear", "warm"])
    p.add_argument("files", nargs="*",
                   help="programs to warm (action warm)")
    p.add_argument("--connect", metavar="ADDR",
                   help="operate on a live daemon (unix-socket path or "
                        "host:port)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="operate on an on-disk tier directly (no daemon)")
    p.add_argument("--tier", default="all", choices=["mem", "disk", "all"],
                   help="which tier to clear (default: all)")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser("experiments", help="regenerate the paper's tables/figures")
    p.add_argument("which", choices=["fig1", "fig3", "fig4", "table2", "table3", "all"])
    p.add_argument("--size", default="small", choices=["tiny", "small", "large"])
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="run benchmarks across N worker processes "
                        "(rows are identical to --jobs 1)")
    p.add_argument("--json", metavar="FILE",
                   help="also write every experiment's rows as JSON")
    add_chaos(p)
    add_sampling(p)
    add_devices(p)
    add_observability(p)
    p.set_defaults(func=cmd_experiments)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    ctx = _context(args)
    try:
        code = args.func(args, ctx)
    except ReproError as err:
        # One structured line instead of a traceback: the failing stage and
        # the message (source errors already carry their line:col).
        sys.stderr.write(f"repro: error [{error_stage(err)}]: {err}\n")
        # The trace/report artifacts are written for failed runs too: the
        # report embeds the typed error (and ConvergenceError's history).
        _write_observability(args, ctx, error=err)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    _write_observability(args, ctx)
    if getattr(args, "time_passes", False):
        print()
        print(ctx.pass_stats.report())
    return code


if __name__ == "__main__":
    raise SystemExit(main())
