"""Command-line interface.

The tools a downstream user would actually run, mirroring the paper's
workflow (Figure 2):

    python -m repro compile prog.c               # kernel summary + warnings
    python -m repro run prog.c -p N=64           # execute, show device stats
    python -m repro verify prog.c -p N=64 \\
        --options "errorMargin=1e-6,kernels=main_kernel0"   # §III-A
    python -m repro memcheck prog.c -p N=64      # §III-B findings/suggestions
    python -m repro optimize prog.c -p N=64 --outputs a,r -o prog_opt.c
    python -m repro experiments table3 --size small

Program parameters (`-p NAME=VALUE`) bind symbolic array dimensions and
scalar inputs; arrays must be initialized by the program itself when run
from the CLI.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.compiler import CompilerOptions, compile_source
from repro.errors import ReproError, error_stage
from repro.interp import run_compiled, run_sequential
from repro.lang import parse_program, to_source


def _chaos_plan(args):
    """Build a FaultPlan from --chaos-seed/--chaos-spec (None when neither
    flag was given)."""
    seed = getattr(args, "chaos_seed", None)
    spec_text = getattr(args, "chaos_spec", None)
    if seed is None and spec_text is None:
        return None
    from repro.runtime.chaos import FaultPlan, FaultSpec

    seed = 0 if seed is None else seed
    try:
        spec = (FaultSpec.parse(spec_text, seed=seed) if spec_text
                else FaultSpec.default(seed=seed))
    except ValueError as err:
        raise SystemExit(f"bad --chaos-spec: {err}")
    return FaultPlan(spec)


def _parse_params(pairs: Optional[List[str]]) -> Dict[str, object]:
    params: Dict[str, object] = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"bad -p value {pair!r}: expected NAME=VALUE")
        name, value = pair.split("=", 1)
        try:
            params[name] = int(value)
        except ValueError:
            try:
                params[name] = float(value)
            except ValueError:
                raise SystemExit(f"bad -p value {pair!r}: VALUE must be numeric")
    return params


def _load(path: str, args) -> "CompiledProgram":
    with open(path) as handle:
        source = handle.read()
    options = CompilerOptions(
        auto_privatize=not getattr(args, "no_auto_privatize", False),
        auto_reduction=not getattr(args, "no_auto_reduction", False),
    )
    return compile_source(source, options)


def cmd_compile(args) -> int:
    compiled = _load(args.file, args)
    print(f"{len(compiled.kernels)} kernel(s):")
    for name, plan in compiled.kernels.items():
        bits = [f"arrays={plan.arrays}", f"scalars={plan.scalars}"]
        if plan.private_decls:
            bits.append(f"private={sorted(plan.private_decls)}")
        if plan.firstprivate:
            bits.append(f"firstprivate={plan.firstprivate}")
        if plan.reductions:
            bits.append(f"reduction={[(v, op) for v, op, _ in plan.reductions]}")
        if plan.cached_vars or plan.split_vars:
            bits.append(f"RACY shared={plan.cached_vars + plan.split_vars}")
        print(f"  {name}: {' '.join(bits)}")
    for warning in compiled.warnings:
        print(f"warning: {warning}")
    if args.show_source:
        print()
        print(compiled.to_source())
    return 0


def cmd_run(args) -> int:
    compiled = _load(args.file, args)
    params = _parse_params(args.param)
    plan = _chaos_plan(args)
    runtime = None
    if plan is not None:
        from repro.runtime.accrt import AccRuntime

        runtime = AccRuntime(chaos=plan)
    run = run_compiled(compiled, params=params, runtime=runtime)
    for line in run.env.stdout:
        sys.stdout.write(line)
    profiler = run.runtime.profiler
    device = run.runtime.device
    if plan is not None:
        print(f"\n-- {plan.summary()}")
    print(f"\n-- modeled time: {profiler.total() * 1e3:.3f} ms")
    print(f"-- transfers: {len(run.runtime.transfer_log)} "
          f"({device.total_transferred_bytes()} bytes)")
    for cat, seconds in profiler.breakdown().items():
        if seconds:
            print(f"   {cat:15s} {seconds * 1e6:12.1f} us")
    if args.compare_sequential:
        seq = run_sequential(compiled, params=params)
        import numpy as np

        bad = []
        for decl in compiled.program.decls:
            a, b = seq.env.load(decl.name), run.env.load(decl.name)
            same = (
                np.allclose(a, b, rtol=1e-6, atol=1e-9)
                if isinstance(a, np.ndarray)
                else np.isclose(float(a), float(b), rtol=1e-6, atol=1e-9)
            )
            if not same:
                bad.append(decl.name)
        print(f"-- sequential comparison: {'MISMATCH in ' + str(bad) if bad else 'OK'}")
        return 1 if bad else 0
    return 0


def cmd_verify(args) -> int:
    from repro.verify.kernelverify import KernelVerifier, VerificationOptions

    compiled = _load(args.file, args)
    options = (
        VerificationOptions.from_string(args.options)
        if args.options
        else VerificationOptions()
    )
    report = KernelVerifier(
        compiled, params=_parse_params(args.param), options=options
    ).run()
    print(report.summary())
    return 0 if report.all_passed else 1


def cmd_memcheck(args) -> int:
    from repro.verify.memverify import MemVerifier

    compiled = _load(args.file, args)
    report = MemVerifier(compiled, params=_parse_params(args.param)).run()
    print(report.summary())
    print(f"\n{report.inserted_checks} check sites, "
          f"{report.check_calls} dynamic coherence checks")
    if args.show_instrumented:
        print()
        print(report.instrumented_source)
    return 0 if not report.errors else 1


def cmd_optimize(args) -> int:
    from repro.verify.interactive import InteractiveOptimizer

    with open(args.file) as handle:
        program = parse_program(handle.read())
    outputs = args.outputs.split(",") if args.outputs else None
    trace = InteractiveOptimizer(
        program, params=_parse_params(args.param), outputs=outputs
    ).run()
    print(trace.summary())
    optimized = to_source(trace.final_program)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(optimized)
        print(f"optimized program written to {args.output}")
    else:
        print()
        print(optimized)
    print(f"final transfers: {trace.final_transfer_count} "
          f"({trace.final_transfer_bytes} bytes)")
    return 0


def cmd_experiments(args) -> int:
    import importlib

    names = (
        ["fig1", "fig3", "fig4", "table2", "table3"]
        if args.which == "all"
        else [args.which]
    )
    plan = _chaos_plan(args)
    if plan is None:
        for name in names:
            module = importlib.import_module(f"repro.experiments.{name}")
            module.main(size=args.size)
            print()
        return 0
    # One shared plan: the fault budget spans every experiment in the list.
    # fig1 takes it directly (isolated sweep); the rest pick it up through
    # the harness default.
    from repro.experiments import harness

    harness.set_default_chaos(plan)
    try:
        for name in names:
            module = importlib.import_module(f"repro.experiments.{name}")
            if name == "fig1":
                module.main(size=args.size, chaos=plan)
            else:
                module.main(size=args.size)
            print()
    finally:
        harness.set_default_chaos(None)
    print(plan.summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OpenARC-reproduction toolchain (Lee, Li & Vetter, IPDPS 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, params=True):
        p.add_argument("file", help="mini-C source file with #pragma acc")
        if params:
            p.add_argument("-p", "--param", action="append", metavar="NAME=VALUE",
                           help="program parameter (repeatable)")
        p.add_argument("--no-auto-privatize", action="store_true")
        p.add_argument("--no-auto-reduction", action="store_true")

    p = sub.add_parser("compile", help="compile and show the kernel summary")
    add_common(p, params=False)
    p.add_argument("--show-source", action="store_true")
    p.set_defaults(func=cmd_compile)

    def add_chaos(p):
        p.add_argument("--chaos-seed", type=int, metavar="N",
                       help="enable deterministic fault injection with this seed")
        p.add_argument("--chaos-spec", metavar="KIND=RATE,...",
                       help='fault kinds and rates, e.g. "alloc=0.05,transfer.corrupt=0.1" '
                            "(implies --chaos-seed 0 when the seed is omitted)")

    p = sub.add_parser("run", help="execute on the simulated GPU")
    add_common(p)
    p.add_argument("--compare-sequential", action="store_true",
                   help="also run sequentially and compare all globals "
                        "(device-scratch arrays never copied out will "
                        "legitimately differ)")
    add_chaos(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("verify", help="kernel verification (paper §III-A)")
    add_common(p)
    p.add_argument("--options", metavar="STRING",
                   help='e.g. "complement=0,kernels=main_kernel0,errorMargin=1e-6"')
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("memcheck", help="memory-transfer verification (paper §III-B)")
    add_common(p)
    p.add_argument("--show-instrumented", action="store_true")
    p.set_defaults(func=cmd_memcheck)

    p = sub.add_parser("optimize", help="interactive transfer optimization (Figure 2)")
    add_common(p)
    p.add_argument("--outputs", metavar="A,B,...",
                   help="observable output variables the edits must preserve")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the optimized program here")
    p.set_defaults(func=cmd_optimize)

    p = sub.add_parser("experiments", help="regenerate the paper's tables/figures")
    p.add_argument("which", choices=["fig1", "fig3", "fig4", "table2", "table3", "all"])
    p.add_argument("--size", default="small", choices=["tiny", "small", "large"])
    add_chaos(p)
    p.set_defaults(func=cmd_experiments)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as err:
        # One structured line instead of a traceback: the failing stage and
        # the message (source errors already carry their line:col).
        sys.stderr.write(f"repro: error [{error_stage(err)}]: {err}\n")
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
