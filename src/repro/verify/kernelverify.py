"""GPU kernel verification (§III-A).

One verification run executes the transformed program: every *target*
kernel launches asynchronously against reference CPU data (memory-transfer
demotion), its outputs land in temporary CPU space, the sequential reference
executes concurrently, and the two are compared under the user's policy.
Because non-target regions run sequentially and kernel outputs never touch
host state, errors cannot propagate between kernels — all kernels verify in
a single pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.compiler.demotion import demote_for_verification
from repro.compiler.driver import CompiledProgram, compile_ast
from repro.compiler.resultcomp import insert_result_comparison
from repro.device.engine import Schedule
from repro.errors import VerificationError
from repro.interp.interp import Interp, VerifySession
from repro.runtime.accrt import AccRuntime
from repro.verify.comparison import ComparisonPolicy, ComparisonResult, compare_arrays, compare_scalars
from repro.verify.knowledge import (
    AssertEnv,
    collect_asserts,
    collect_bounds,
    evaluate_assertion,
)


@dataclass
class VerificationOptions:
    """The paper's ``verificationOptions`` configuration string, parsed."""

    kernels: Optional[List[str]] = None  # None -> all kernels
    complement: bool = False             # True -> all EXCEPT `kernels`
    policy: ComparisonPolicy = field(default_factory=ComparisonPolicy)
    schedule: Optional[Schedule] = None

    @classmethod
    def from_string(cls, text: str) -> "VerificationOptions":
        """Parse e.g. ``complement=0,kernels=main_kernel0+main_kernel2,
        errorMargin=1e-6,minValueToCheck=1e-32``."""
        opts = cls()
        if text.startswith("verificationOptions="):
            text = text[len("verificationOptions="):]
        for item in filter(None, text.split(",")):
            if "=" not in item:
                raise VerificationError(f"bad verification option {item!r}")
            key, value = item.split("=", 1)
            key = key.strip()
            if key == "complement":
                opts.complement = value.strip() not in ("0", "false", "")
            elif key == "kernels":
                opts.kernels = value.split("+")
            elif key == "errorMargin":
                opts.policy.error_margin = float(value)
            elif key == "relativeMargin":
                opts.policy.relative_margin = float(value)
            elif key == "minValueToCheck":
                opts.policy.min_value_to_check = float(value)
            else:
                raise VerificationError(f"unknown verification option {key!r}")
        return opts

    def select_targets(self, all_kernels: List[str]) -> Set[str]:
        if self.kernels is None:
            return set(all_kernels)
        named = set(self.kernels)
        unknown = named - set(all_kernels)
        if unknown:
            raise VerificationError(f"unknown kernels: {sorted(unknown)}")
        return set(all_kernels) - named if self.complement else named


@dataclass
class KernelResult:
    kernel: str
    comparisons: List[ComparisonResult] = field(default_factory=list)
    assertion_failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.assertion_failures and all(c.passed for c in self.comparisons)

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [f"[{status}] {self.kernel}"]
        lines.extend("  " + c.message() for c in self.comparisons)
        lines.extend(f"  assertion failed: {a}" for a in self.assertion_failures)
        return "\n".join(lines)


@dataclass
class VerificationReport:
    results: Dict[str, KernelResult] = field(default_factory=dict)

    @property
    def all_passed(self) -> bool:
        return all(r.passed for r in self.results.values())

    def failed_kernels(self) -> List[str]:
        return [name for name, r in self.results.items() if not r.passed]

    def summary(self) -> str:
        return "\n".join(r.summary() for r in self.results.values())


class _Session(VerifySession):
    """Temp-space owner + comparator; wired to the interpreter after both
    exist (the interpreter needs the session at construction)."""

    def __init__(self, policy: ComparisonPolicy, bounds, asserts, report: VerificationReport):
        self.base_policy = policy
        self.bounds = bounds
        self.asserts = asserts
        self.report = report
        self.interp: Optional[Interp] = None
        self._arrays: Dict[tuple, np.ndarray] = {}
        self._scalars: Dict[tuple, object] = {}

    # -- VerifySession interface ------------------------------------------
    def begin(self, kernel: str) -> None:
        self.report.results.setdefault(kernel, KernelResult(kernel))

    def redirect(self, kernel: str, var: str, host: np.ndarray) -> np.ndarray:
        temp = np.zeros_like(host)
        self._arrays[(kernel, var)] = temp
        return temp

    def redirect_scalar(self, kernel: str, var: str, value) -> None:
        self._scalars[(kernel, var)] = value

    def compare(self, kernel: str, var: str) -> None:
        env = self.interp.env
        policy = self._policy_for(kernel)
        with self.interp.runtime.tracer.span(
                "verify.compare", category="verify",
                kernel=kernel, var=var) as sp:
            result: Optional[ComparisonResult] = None
            if (kernel, var) in self._arrays:
                candidate = self._arrays[(kernel, var)]
                result = compare_arrays(var, env.array(var), candidate, policy)
            elif (kernel, var) in self._scalars:
                result = compare_scalars(var, float(env.load(var)),
                                         float(self._scalars[(kernel, var)]), policy)
            if result is not None:
                self.interp.runtime.charge_compare(result.checked)
                sp.set_attr("passed", result.passed)
                sp.set_attr("checked", result.checked)
                self.report.results[kernel].comparisons.append(result)

    def end(self, kernel: str) -> None:
        for expr in self.asserts.get(kernel, ()):
            gpu_arrays = {
                var: buf for (k, var), buf in self._arrays.items() if k == kernel
            }
            gpu_scalars = {
                var: val for (k, var), val in self._scalars.items() if k == kernel
            }
            env = AssertEnv(self.interp.env, gpu_arrays, gpu_scalars)
            if not evaluate_assertion(expr, env):
                from repro.lang.printer import expr_to_source

                self.report.results[kernel].assertion_failures.append(
                    expr_to_source(expr)
                )

    def _policy_for(self, kernel: str) -> ComparisonPolicy:
        bounds = self.bounds.get(kernel)
        if not bounds:
            return self.base_policy
        policy = ComparisonPolicy(
            error_margin=self.base_policy.error_margin,
            relative_margin=self.base_policy.relative_margin,
            min_value_to_check=self.base_policy.min_value_to_check,
            bounds={**self.base_policy.bounds, **bounds},
        )
        return policy


class KernelVerifier:
    """End-to-end §III-A harness."""

    def __init__(
        self,
        compiled: CompiledProgram,
        params: Optional[Dict[str, object]] = None,
        options: Optional[VerificationOptions] = None,
        runtime: Optional[AccRuntime] = None,
        ctx=None,
    ):
        from repro.toolchain import default_context

        self.compiled = compiled
        self.params = dict(params or {})
        self.options = options or VerificationOptions()
        self.runtime = runtime
        self.ctx = ctx or default_context()

    def transformed_program(self):
        """The demoted + comparison-instrumented AST (inspectable)."""
        targets = self.options.select_targets(self.compiled.kernel_names())
        demoted = self.ctx.passes.rewrite(
            "demotion",
            self.compiled.program, targets, self.compiled.options.main_function,
        )
        return self.ctx.passes.rewrite(
            "resultcomp",
            demoted, targets, self.compiled.options.main_function,
        ), targets

    def run(self) -> VerificationReport:
        with self.ctx.tracer.span("verify.kernels", category="verify") as sp:
            transformed, targets = self.transformed_program()
            sp.set_attr("targets", sorted(targets))
            vcompiled = compile_ast(
                transformed, self.compiled.options.copy(strict_validation=False),
                ctx=self.ctx,
            )
            report = VerificationReport()
            session = _Session(
                self.options.policy,
                collect_bounds(self.compiled),
                collect_asserts(self.compiled),
                report,
            )
            interp = Interp(
                vcompiled,
                runtime=self.runtime,
                params=self.params,
                schedule=self.options.schedule,
                verify=session,
                ctx=self.ctx,
            )
            session.interp = interp
            self.runtime = interp.runtime
            interp.run()
            for name in targets:
                report.results.setdefault(name, KernelResult(name))
            sp.set_attr("passed", report.all_passed)
            if not report.all_passed:
                sp.set_attr("failed_kernels", report.failed_kernels())
        return report


def verify_kernels(
    compiled: CompiledProgram,
    params: Optional[Dict[str, object]] = None,
    options: Optional[VerificationOptions] = None,
) -> VerificationReport:
    """Convenience wrapper: verify (all) kernels of a compiled program."""
    return KernelVerifier(compiled, params, options).run()
