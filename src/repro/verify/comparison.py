"""User-configurable result comparison (§III-A).

CPU and GPU cannot be compared bit-for-bit: float32 vs float64 rounding and
tree-order reductions produce legitimate differences.  The policy exposes
the paper's knobs:

* ``error_margin`` — absolute tolerance;
* ``relative_margin`` — additional |reference|-scaled tolerance;
* ``min_value_to_check`` — the paper's ``minValueToCheck``: elements whose
  reference magnitude is at or below the threshold are skipped;
* ``bounds`` — §III-C per-variable value bounds: a differing GPU value
  inside [lo, hi] is accepted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass
class ComparisonPolicy:
    error_margin: float = 1e-9
    relative_margin: float = 0.0
    min_value_to_check: Optional[float] = None
    bounds: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def tolerance(self, reference: np.ndarray) -> np.ndarray:
        return self.error_margin + self.relative_margin * np.abs(reference)


@dataclass
class ComparisonResult:
    var: str
    checked: int
    mismatches: int
    max_abs_diff: float
    first_mismatch: Optional[Tuple[int, ...]] = None

    @property
    def passed(self) -> bool:
        return self.mismatches == 0

    def message(self) -> str:
        if self.passed:
            return f"'{self.var}': OK ({self.checked} values compared)"
        where = f" first at index {self.first_mismatch}" if self.first_mismatch else ""
        return (
            f"'{self.var}': {self.mismatches}/{self.checked} values differ "
            f"(max |diff| = {self.max_abs_diff:.3e}){where}"
        )


def compare_arrays(
    var: str,
    reference: np.ndarray,
    candidate: np.ndarray,
    policy: Optional[ComparisonPolicy] = None,
) -> ComparisonResult:
    """Compare a GPU output array against the CPU reference."""
    policy = policy or ComparisonPolicy()
    ref = np.asarray(reference, dtype=np.float64)
    cand = np.asarray(candidate, dtype=np.float64)
    if ref.shape != cand.shape:
        return ComparisonResult(var, 0, max(ref.size, cand.size), float("inf"))
    diff = np.abs(ref - cand)
    bad = diff > policy.tolerance(ref)
    if policy.min_value_to_check is not None:
        bad &= np.abs(ref) > policy.min_value_to_check
    if var in policy.bounds:
        lo, hi = policy.bounds[var]
        bad &= ~((cand >= lo) & (cand <= hi))
    checked = int(ref.size)
    mismatches = int(np.count_nonzero(bad))
    max_diff = float(diff.max()) if diff.size else 0.0
    first = None
    if mismatches:
        first = tuple(int(i) for i in np.argwhere(bad)[0])
    return ComparisonResult(var, checked, mismatches, max_diff, first)


def compare_scalars(
    var: str,
    reference: float,
    candidate: float,
    policy: Optional[ComparisonPolicy] = None,
) -> ComparisonResult:
    policy = policy or ComparisonPolicy()
    return compare_arrays(var, np.asarray([reference]), np.asarray([candidate]), policy)
