"""Memory-transfer verification (§III-B): one offline profiling run.

Instruments the program (:mod:`repro.compiler.checkinsert`), executes it with
the coherence tracker attached, and reports the three §IV-C suggestion
classes: redundant-transfer information, missing/incorrect-transfer errors,
and may-redundant/may-missing warnings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compiler.checkinsert import InstrumentationResult
from repro.compiler.driver import CompiledProgram
from repro.device.engine import Schedule
from repro.interp.interp import Interp
from repro.runtime.accrt import AccRuntime
from repro.runtime.coherence import CoherenceTracker, Finding
from repro.verify.suggestions import Suggestion, derive_suggestions, format_report


@dataclass
class MemVerificationReport:
    findings: List[Finding]
    suggestions: List[Suggestion]
    universe: set
    check_calls: int
    transfer_counts: Dict[Tuple[str, str], int]
    site_directions: Dict[Tuple[str, str], str]  # (var, site) -> "h2d"/"d2h"
    instrumented_source: str
    inserted_checks: int
    # Byte accounting per transfer site: bytes moved across the run, and
    # bytes the coherence findings say were wasted there (redundant /
    # may-redundant transfers priced against the dirty-interval map).
    transfer_bytes: Dict[Tuple[str, str], int] = None
    wasted_bytes: Dict[Tuple[str, str], int] = None

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.is_error]

    @property
    def clean(self) -> bool:
        """No errors and nothing actionable.  (A partial write to a fresh
        device buffer produces a may-missing warning — unwritten elements
        hold no valid data — which is informational, not actionable.)"""
        return not self.errors and not self.suggestions

    def summary(self) -> str:
        return format_report(self.findings, self.suggestions)


class MemVerifier:
    """Runs one instrumented profiling execution."""

    def __init__(
        self,
        compiled: CompiledProgram,
        params: Optional[Dict[str, object]] = None,
        schedule: Optional[Schedule] = None,
        optimize_placement: bool = True,
        ctx=None,
    ):
        from repro.toolchain import default_context

        self.compiled = compiled
        self.params = dict(params or {})
        self.schedule = schedule
        self.optimize_placement = optimize_placement
        self.instrumentation: Optional[InstrumentationResult] = None
        self.runtime: Optional[AccRuntime] = None
        self.ctx = ctx or default_context()

    def run(self) -> MemVerificationReport:
        with self.ctx.tracer.span("verify.mem", category="verify") as sp:
            instr = self.ctx.passes.rewrite(
                "checkinsert", self.compiled,
                optimize_placement=self.optimize_placement, ctx=self.ctx,
            )
            self.instrumentation = instr
            sp.set_attr("inserted_checks", len(instr.checks))
            tracker = CoherenceTracker()
            for var in instr.universe:
                tracker.register(var)
            runtime = AccRuntime(coherence=tracker, ctx=self.ctx)
            self.runtime = runtime
            interp = Interp(
                instr.compiled,
                runtime=runtime,
                params=self.params,
                schedule=self.schedule,
                ctx=self.ctx,
            )
            interp.run()
            sp.set_attr("findings", len(tracker.findings))
            sp.set_attr("check_calls", tracker.check_calls)

        transfer_counts: Dict[Tuple[str, str], int] = {}
        site_directions: Dict[Tuple[str, str], str] = {}
        transfer_bytes: Dict[Tuple[str, str], int] = {}
        for rec in runtime.transfer_log:
            key = (rec.var, rec.site)
            transfer_counts[key] = transfer_counts.get(key, 0) + 1
            site_directions[key] = rec.direction
            transfer_bytes[key] = transfer_bytes.get(key, 0) + rec.nbytes

        wasted_bytes: Dict[Tuple[str, str], int] = {}
        for f in tracker.findings:
            if f.nbytes_wasted:
                key = (f.var, f.site)
                wasted_bytes[key] = wasted_bytes.get(key, 0) + f.nbytes_wasted

        suggestions = derive_suggestions(
            tracker.findings, transfer_counts,
            transfer_bytes=transfer_bytes, wasted_bytes=wasted_bytes,
        )
        return MemVerificationReport(
            findings=list(tracker.findings),
            suggestions=suggestions,
            universe=set(instr.universe),
            check_calls=tracker.check_calls,
            transfer_counts=transfer_counts,
            site_directions=site_directions,
            instrumented_source=instr.compiled.to_source(),
            inserted_checks=len(instr.checks),
            transfer_bytes=transfer_bytes,
            wasted_bytes=wasted_bytes,
        )
