"""The Figure-2 interactive loop with a scripted programmer.

Each round:

1. run memory-transfer verification (one instrumented profiling execution);
2. the "programmer" edits the directive program per the suggestions —
   certain suggestions all at once, speculative (``may-*``) ones cautiously,
   one per round;
3. the edited program's output is validated against the sequential
   reference (the role kernel verification plays in the paper's §IV-C:
   catching corruption caused by a wrong suggestion); a broken edit is
   reverted, banned, and counted as an *incorrect iteration*;
4. repeat until a round yields no applicable suggestion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.acc.directives import Clause, Directive, VarRef
from repro.acc.regions import collect_regions
from repro.compiler.driver import CompilerOptions, compile_ast
from repro.errors import ConvergenceError
from repro.interp.interp import run_compiled, run_sequential
from repro.lang import ast
from repro.lang.ctypes import Array
from repro.lang.visitor import clone_tree
from repro.verify.comparison import ComparisonPolicy, compare_arrays, compare_scalars
from repro.verify.memverify import MemVerificationReport, MemVerifier
from repro.verify.suggestions import (
    DEFER_TRANSFER,
    DELETE_TRANSFER,
    INSERT_UPDATE_DEVICE,
    INSERT_UPDATE_HOST,
    Suggestion,
)

# Data-clause rewrites that drop one transfer direction.
_DROP_COPYIN = {
    "copy": "copyout",
    "copyin": "create",
    "present_or_copy": "present_or_copyout",
    "present_or_copyin": "present_or_create",
}
_DROP_COPYOUT = {
    "copy": "copyin",
    "copyout": "create",
    "present_or_copy": "present_or_copyin",
    "present_or_copyout": "present_or_create",
}


@dataclass
class IterationRecord:
    index: int
    findings: int
    suggestions: List[Suggestion]
    applied: List[Suggestion]
    reverted: bool
    report: MemVerificationReport

    def summary(self) -> str:
        state = "REVERTED" if self.reverted else ("clean" if not self.suggestions else "applied")
        return (
            f"iteration {self.index}: {self.findings} findings, "
            f"{len(self.applied)} edits ({state})"
        )


@dataclass
class OptimizationTrace:
    iterations: List[IterationRecord] = field(default_factory=list)
    incorrect_iterations: int = 0
    converged: bool = False
    final_program: Optional[ast.Program] = None
    final_transfer_count: int = 0
    final_transfer_bytes: int = 0

    @property
    def total_iterations(self) -> int:
        return len(self.iterations)

    def summary(self) -> str:
        lines = [r.summary() for r in self.iterations]
        lines.append(
            f"total={self.total_iterations} incorrect={self.incorrect_iterations} "
            f"converged={self.converged}"
        )
        return "\n".join(lines)


class InteractiveOptimizer:
    """Drives the verify-edit-rerun loop to a transfer-optimal program."""

    def __init__(
        self,
        program: ast.Program,
        params: Optional[Dict[str, object]] = None,
        options: Optional[CompilerOptions] = None,
        policy: Optional[ComparisonPolicy] = None,
        max_rounds: int = 12,
        outputs: Optional[List[str]] = None,
        ctx=None,
    ):
        from repro.toolchain import default_context

        self.original = program
        self.params = dict(params or {})
        self.options = (options or CompilerOptions()).copy(strict_validation=False)
        self.policy = policy or ComparisonPolicy(error_margin=1e-9, relative_margin=1e-6)
        self.max_rounds = max_rounds
        self.ctx = ctx or default_context()
        # Observable outputs the edits must preserve.  Default: every
        # global — but a copyout of *dead* data is exactly what the tool
        # removes, so callers should name the real outputs (a benchmark's
        # OUTPUTS list; what the original program prints/checks).
        self.outputs = outputs

    # ------------------------------------------------------------------
    def run(self) -> OptimizationTrace:
        # Two acceptance references: *optimization* edits must preserve the
        # original program's OpenACC behaviour; *repair* edits (inserting a
        # transfer the program was missing) are validated against the
        # sequential ground truth instead — the buggy original is exactly
        # what they are allowed to change.
        reference = run_compiled(
            compile_ast(clone_tree(self.original), self.options, ctx=self.ctx),
            params=self.params, ctx=self.ctx,
        )
        ground_truth = run_sequential(
            compile_ast(clone_tree(self.original), self.options, ctx=self.ctx),
            self.params, ctx=self.ctx,
        )
        trace = OptimizationTrace()
        current = clone_tree(self.original)
        banned: Set[Tuple[str, str, str]] = set()

        for index in range(1, self.max_rounds + 1):
            with self.ctx.tracer.span("optimize.iteration",
                                      category="optimize",
                                      iteration=index) as span:
                current, reference = self._round(
                    index, current, reference, ground_truth,
                    trace, banned, span,
                )
            if trace.converged:
                break
        else:
            history = [
                {
                    "iteration": r.index,
                    "findings": r.findings,
                    "suggestions": [s.key() for s in r.suggestions],
                    "applied": [s.key() for s in r.applied],
                    "reverted": r.reverted,
                }
                for r in trace.iterations
            ]
            self.ctx.tracer.event("optimize.no_convergence",
                                  rounds=self.max_rounds)
            raise ConvergenceError(
                f"no convergence within {self.max_rounds} verification rounds",
                history=history,
            )

        trace.final_program = current
        final_compiled = compile_ast(current, self.options, ctx=self.ctx)
        final_run = run_compiled(final_compiled, params=self.params, ctx=self.ctx)
        trace.final_transfer_count = len(final_run.runtime.transfer_log)
        trace.final_transfer_bytes = final_run.runtime.device.total_transferred_bytes()
        return trace

    def _round(self, index: int, current: ast.Program, reference,
               ground_truth, trace: OptimizationTrace,
               banned: Set[Tuple[str, str, str]], span):
        """One verify-edit-validate round (the body of the Figure-2 loop).
        Returns the possibly-updated ``(current, reference)`` pair; mutates
        ``trace`` and ``banned``; sets ``trace.converged`` when a round
        yields no applicable suggestion."""
        compiled = compile_ast(current, self.options, ctx=self.ctx)
        report = MemVerifier(compiled, self.params, ctx=self.ctx).run()
        usable = [s for s in report.suggestions if s.key() not in banned]
        certain = [s for s in usable if not s.speculative]
        speculative = [s for s in usable if s.speculative]
        span.set_attr("findings", len(report.findings))
        span.set_attr("suggestions", len(usable))

        if not usable:
            trace.iterations.append(IterationRecord(
                index, len(report.findings), [], [], False, report))
            trace.converged = True
            span.set_attr("converged", True)
            return current, reference

        batch = (
            _resolve_conflicts(certain, report.site_directions)
            if certain
            else _resolve_conflicts(speculative, report.site_directions)
        )
        span.set_attr("applied", [".".join(s.key()) for s in batch])
        repairing = any(s.action.startswith("insert-update") for s in batch)
        target_ref = ground_truth if repairing else reference
        edited = self._apply(clone_tree(current), batch)
        if edited is None or not self._outputs_match(edited, target_ref):
            if len(batch) > 1:
                # A careful programmer bisects the failing round: retry
                # the edits one by one, keep the good ones, ban the rest.
                # Every banned edit cost its own revert-and-rerun cycle,
                # so each counts as one incorrect iteration.
                current, newly_banned = self._retry_individually(
                    current, batch, target_ref
                )
                banned |= newly_banned
                trace.incorrect_iterations += len(newly_banned)
            else:
                banned |= {s.key() for s in batch}
                trace.incorrect_iterations += 1
            trace.iterations.append(IterationRecord(
                index, len(report.findings), usable, batch, True, report))
            span.set_attr("reverted", True)
            return current, reference
        current = edited
        if repairing:
            # The repaired program is the behaviour later edits preserve.
            reference = run_compiled(
                compile_ast(clone_tree(current), self.options, ctx=self.ctx),
                params=self.params, ctx=self.ctx,
            )
        trace.iterations.append(IterationRecord(
            index, len(report.findings), usable, batch, False, report))
        return current, reference

    def _retry_individually(self, current: ast.Program, batch: List[Suggestion],
                            reference) -> Tuple[ast.Program, Set[Tuple[str, str, str]]]:
        """Apply the failed round's edits cumulatively one at a time,
        banning each edit that corrupts the output."""
        banned: Set[Tuple[str, str, str]] = set()
        accepted = clone_tree(current)
        for suggestion in batch:
            trial = self._apply(clone_tree(accepted), [suggestion])
            if trial is not None and self._outputs_match(trial, reference):
                accepted = trial
            else:
                banned.add(suggestion.key())
        return accepted, banned

    # ------------------------------------------------------------------
    # Edit application
    # ------------------------------------------------------------------
    def _apply(self, program: ast.Program, batch: List[Suggestion]) -> Optional[ast.Program]:
        editor = _Editor(program, self.options.main_function)
        for suggestion in batch:
            if not editor.apply(suggestion):
                return None
        return program

    def _outputs_match(self, program: ast.Program, reference) -> bool:
        compiled = compile_ast(program, self.options, ctx=self.ctx)
        try:
            run = run_compiled(compiled, params=self.params, ctx=self.ctx)
        except Exception:
            return False
        for decl in compiled.program.decls:
            name = decl.name
            if self.outputs is not None and name not in self.outputs:
                continue
            if isinstance(decl.ctype, Array):
                result = compare_arrays(
                    name, reference.env.array(name), run.env.array(name), self.policy
                )
            else:
                result = compare_scalars(
                    name, float(reference.env.load(name)),
                    float(run.env.load(name)), self.policy,
                )
            if not result.passed:
                return False
        return True


def _resolve_conflicts(certain: List[Suggestion], directions: Dict) -> List[Suggestion]:
    """At most one transfer-removing edit per (variable, direction) per
    round.

    Two transfers of the same data in the same direction can each be
    redundant *given the other* (an in-loop update and the region's exit
    copyout); removing both in one batch removes the data path entirely.  A
    careful programmer deletes one and re-verifies — we keep the one backed
    by the most dynamic findings."""
    chosen: Dict[Tuple[str, str], Suggestion] = {}
    passthrough: List[Suggestion] = []
    for s in certain:
        if s.action not in (DELETE_TRANSFER, DEFER_TRANSFER):
            passthrough.append(s)
            continue
        direction = directions.get((s.var, s.site), "?")
        key = (s.var, direction)
        current = chosen.get(key)
        if current is None or s.occurrences > current.occurrences:
            chosen[key] = s
    return passthrough + list(chosen.values())


class _Editor:
    """Applies one suggestion to a (cloned) program AST."""

    def __init__(self, program: ast.Program, main_function: str):
        self.program = program
        self.func = program.func(main_function)
        self.regions = collect_regions(self.func)

    def apply(self, s: Suggestion) -> bool:
        if s.action == DELETE_TRANSFER:
            return self._delete_transfer(s)
        if s.action == DEFER_TRANSFER:
            return self._defer_transfer(s)
        if s.action == INSERT_UPDATE_HOST:
            return self._insert_update(s, "host")
        if s.action == INSERT_UPDATE_DEVICE:
            return self._insert_update(s, "device")
        return False

    # -- deletes -------------------------------------------------------------
    def _delete_transfer(self, s: Suggestion) -> bool:
        if s.site.startswith("update"):
            return self._drop_update_var(s.site, s.var, remove=True) is not None
        if ".enter(" in s.site or ".entry(" in s.site or ".default-in(" in s.site:
            return self._rewrite_clause(s, _DROP_COPYIN)
        if ".exit(" in s.site or ".default-out(" in s.site:
            return self._rewrite_clause(s, _DROP_COPYOUT)
        return False

    def _rewrite_clause(self, s: Suggestion, table: Dict[str, str]) -> bool:
        directive = self._directive_for_site(s.site)
        if directive is None:
            return False
        for clause in list(directive.clauses):
            if s.var not in clause.var_names() or clause.name not in table:
                continue
            refs = [a for a in clause.args if isinstance(a, VarRef)]
            keep = [r for r in refs if r.name != s.var]
            moved = [r for r in refs if r.name == s.var]
            clause.args = keep
            directive.add_clause(Clause(table[clause.name], moved))
            directive.clauses = [c for c in directive.clauses if c.args or c.name not in table.values()]
            self._merge_empty_clauses(directive)
            return True
        return False

    @staticmethod
    def _merge_empty_clauses(directive: Directive) -> None:
        directive.clauses = [
            c for c in directive.clauses
            if c.args or c.op is not None or c.name in ("gang", "worker", "vector", "seq", "independent", "async", "wait")
        ]

    def _directive_for_site(self, site: str) -> Optional[Directive]:
        """Resolve 'data@LINE....' or '<kernel>.entry/exit(...)' sites."""
        if site.startswith("data@"):
            line = int(site[len("data@"):].split(".", 1)[0])
            for region in self.regions.data:
                if region.directive.line == line:
                    return region.directive
            return None
        kernel_name = site.split(".", 1)[0]
        for region in self.regions.compute:
            if region.name == kernel_name:
                return region.directive
        return None

    # -- update edits ----------------------------------------------------------
    def _drop_update_var(self, update_name: str, var: str, remove: bool):
        """Remove var from the named update point; returns (stmt, direction)
        or None.  Deletes the directive when its clauses empty out."""
        for point in self.regions.updates:
            if point.name != update_name:
                continue
            direction = None
            for clause in point.directive.clauses_named("host", "self", "device"):
                if var in clause.var_names():
                    direction = "host" if clause.name in ("host", "self") else "device"
                    clause.args = [
                        a for a in clause.args
                        if not (isinstance(a, VarRef) and a.name == var)
                    ]
            point.directive.clauses = [
                c for c in point.directive.clauses
                if c.args or c.name not in ("host", "self", "device")
            ]
            if remove and not point.directive.clauses_named("host", "self", "device"):
                point.stmt.pragmas = [
                    p for p in point.stmt.pragmas if p is not point.directive
                ]
                if not point.stmt.pragmas and isinstance(point.stmt, ast.Block) \
                        and not point.stmt.body:
                    self._remove_stmt(point.stmt)
            return (point.stmt, direction)
        return None

    def _remove_stmt(self, target: ast.Stmt) -> bool:
        for node in self.func.body.walk():
            if isinstance(node, ast.Block):
                for i, stmt in enumerate(node.body):
                    if stmt is target:
                        del node.body[i]
                        return True
        return False

    def _defer_transfer(self, s: Suggestion) -> bool:
        if not s.site.startswith("update"):
            return False
        point = next((p for p in self.regions.updates if p.name == s.site), None)
        if point is None:
            return False
        from repro.lang.visitor import enclosing_loops

        # Locate the enclosing loop before the drop possibly removes the
        # (emptied) carrier statement from the tree.
        loops = enclosing_loops(self.func.body, point.stmt)
        if not loops:
            return False
        dropped = self._drop_update_var(s.site, s.var, remove=True)
        if dropped is None or dropped[1] is None:
            return False
        stmt, direction = dropped
        target_loop = loops[-1]  # innermost enclosing loop
        carrier = ast.Block([], stmt.line)
        carrier.pragmas = [
            Directive("update", [Clause(direction, [VarRef(s.var)])], line=stmt.line)
        ]
        return self._insert_after(target_loop, carrier)

    def _insert_update(self, s: Suggestion, direction: str) -> bool:
        if s.site.startswith("line "):
            line = int(s.site.split()[1])
            target = self._stmt_at_line(line)
        else:
            kernel_name = s.site.split(".", 1)[0]
            target = next(
                (r.stmt for r in self.regions.compute if r.name == kernel_name), None
            )
        if target is None:
            return False
        if not self._inside_covering_region(target, s.var):
            # The stale access happens after the device lifetime ended: an
            # update there would fault.  Upgrade the covering region's data
            # clause to move the data at the boundary instead.
            return self._upgrade_data_clause(s.var, direction)
        carrier = ast.Block([], target.line)
        carrier.pragmas = [
            Directive("update", [Clause(direction, [VarRef(s.var)])], line=target.line)
        ]
        return self._insert_before(target, carrier)

    def _inside_covering_region(self, stmt: ast.Stmt, var: str) -> bool:
        for region in self.regions.data:
            if any(v == var for _, v in region.directive.data_clause_vars()):
                if any(n is stmt for n in region.stmt.walk()):
                    return True
        return False

    # Clause upgrades that add the missing transfer direction.
    _ADD_COPYOUT = {
        "create": "copyout",
        "copyin": "copy",
        "present_or_create": "present_or_copyout",
        "present_or_copyin": "present_or_copy",
    }
    _ADD_COPYIN = {
        "create": "copyin",
        "copyout": "copy",
        "present_or_create": "present_or_copyin",
        "present_or_copyout": "present_or_copy",
    }

    def _upgrade_data_clause(self, var: str, direction: str) -> bool:
        table = self._ADD_COPYOUT if direction == "host" else self._ADD_COPYIN
        for region in self.regions.data:
            directive = region.directive
            for clause in list(directive.clauses):
                if var not in clause.var_names() or clause.name not in table:
                    continue
                refs = [a for a in clause.args if isinstance(a, VarRef)]
                keep = [r for r in refs if r.name != var]
                moved = [r for r in refs if r.name == var]
                clause.args = keep
                directive.add_clause(Clause(table[clause.name], moved))
                self._merge_empty_clauses(directive)
                return True
        return False

    def _stmt_at_line(self, line: int) -> Optional[ast.Stmt]:
        best = None
        for node in self.func.body.walk():
            if isinstance(node, ast.Stmt) and node.line == line:
                best = node
                break
        return best

    # -- list surgery ------------------------------------------------------------
    def _insert_before(self, target: ast.Stmt, new: ast.Stmt) -> bool:
        return self._insert(target, new, offset=0)

    def _insert_after(self, target: ast.Stmt, new: ast.Stmt) -> bool:
        return self._insert(target, new, offset=1)

    def _insert(self, target: ast.Stmt, new: ast.Stmt, offset: int) -> bool:
        for node in self.func.body.walk():
            if isinstance(node, ast.Block):
                for i, stmt in enumerate(node.body):
                    if stmt is target:
                        node.body.insert(i + offset, new)
                        return True
        return False
