"""Application knowledge-guided debugging (§III-C).

Two user-facing hooks, both expressed as ``#pragma repro`` directives on a
compute region:

* ``#pragma repro bound(v, lo, hi)`` — a GPU value of ``v`` that differs
  from the CPU reference but lies within [lo, hi] is accepted (suppresses
  false positives from acceptable nondeterminism);
* ``#pragma repro assert(expr)`` — an invariant evaluated against the GPU
  results right after the kernel (``checksum(a)`` sums an array); a false
  assertion fails the kernel without any CPU comparison — the paper's
  "program invariance-based automatic bug detection".
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.compiler.driver import CompiledProgram
from repro.errors import InterpError
from repro.lang import ast, semantics


def collect_bounds(compiled: CompiledProgram) -> Dict[str, Dict[str, Tuple[float, float]]]:
    """kernel name -> {var: (lo, hi)} from ``repro bound`` directives."""
    out: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for region in compiled.regions.compute:
        bounds: Dict[str, Tuple[float, float]] = {}
        for directive in region.stmt.pragmas:
            if directive.namespace == "repro" and directive.name == "bound":
                var_ref, lo, hi = directive.clause("bound").args
                bounds[var_ref.name] = (_const(lo), _const(hi))
        if bounds:
            out[region.name] = bounds
    return out


def collect_asserts(compiled: CompiledProgram) -> Dict[str, List[ast.Expr]]:
    """kernel name -> assertion expressions from ``repro assert``."""
    out: Dict[str, List[ast.Expr]] = {}
    for region in compiled.regions.compute:
        exprs = [
            directive.clause("assert").args[0]
            for directive in region.stmt.pragmas
            if directive.namespace == "repro" and directive.name == "assert"
        ]
        if exprs:
            out[region.name] = exprs
    return out


def _const(expr: ast.Expr) -> float:
    """Evaluate a literal (possibly negated) bound expression."""
    if isinstance(expr, (ast.IntLit, ast.FloatLit)):
        return float(expr.value)
    if isinstance(expr, ast.Unary) and expr.op == "-":
        return -_const(expr.operand)
    raise InterpError("bound() arguments must be numeric literals")


class AssertEnv:
    """Expression environment for assertion checking: GPU outputs shadow the
    host environment, and ``checksum`` is available."""

    def __init__(self, host_env, gpu_arrays: Dict[str, np.ndarray],
                 gpu_scalars: Dict[str, object]):
        self.host_env = host_env
        self.gpu_arrays = gpu_arrays
        self.gpu_scalars = gpu_scalars

    def load(self, name: str):
        if name in self.gpu_arrays:
            return self.gpu_arrays[name]
        if name in self.gpu_scalars:
            return self.gpu_scalars[name]
        return self.host_env.load(name)

    def store(self, name: str, value) -> None:
        raise InterpError("assertion expressions must not assign")

    def declare(self, name: str, ctype, value) -> None:
        raise InterpError("assertion expressions must not declare variables")

    def call(self, func: str, args):
        if func == "checksum":
            (value,) = args
            if isinstance(value, np.ndarray):
                return float(np.asarray(value, dtype=np.float64).sum())
            return float(value)
        return semantics.Builtins.call(func, args)


def evaluate_assertion(expr: ast.Expr, env: AssertEnv) -> bool:
    return bool(semantics.evaluate(expr, env))
