"""Interactive program debugging and optimization (§III).

* :mod:`kernelverify` — §III-A GPU kernel verification;
* :mod:`memverify`    — §III-B memory-transfer verification;
* :mod:`suggestions`  — turning coherence findings into user suggestions;
* :mod:`interactive`  — the Figure-2 iterative loop with a scripted
  programmer applying suggestions;
* :mod:`knowledge`    — §III-C application-knowledge-guided debugging.
"""

from repro.verify.comparison import ComparisonPolicy, compare_arrays, compare_scalars
from repro.verify.kernelverify import KernelVerifier, VerificationOptions
from repro.verify.memverify import MemVerifier
from repro.verify.interactive import InteractiveOptimizer

__all__ = [
    "ComparisonPolicy",
    "compare_arrays",
    "compare_scalars",
    "KernelVerifier",
    "VerificationOptions",
    "MemVerifier",
    "InteractiveOptimizer",
]
