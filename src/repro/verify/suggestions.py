"""Suggestion engine: coherence findings -> actionable directive edits.

Dynamic findings from one profiling run are aggregated per (kind, var,
site).  A transfer site that was redundant on *every* execution suggests
deleting the transfer; redundant on all-but-some iterations suggests
deferring it out of the enclosing loop; a missing transfer at a read site
suggests inserting an ``update`` right before it.  ``may-*`` findings
produce the same edits flagged ``speculative`` — the scripted programmer
applies them optimistically and the next verification round (or the
whole-program output check) catches the wrong ones, exactly the paper's
Table III dynamic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.runtime.coherence import (
    Finding,
    INCORRECT,
    MAY_INCORRECT,
    MAY_MISSING,
    MAY_REDUNDANT,
    MISSING,
    REDUNDANT,
)

# Edit kinds the scripted programmer knows how to apply.
DELETE_TRANSFER = "delete-transfer"
DEFER_TRANSFER = "defer-transfer"
INSERT_UPDATE_HOST = "insert-update-host"
INSERT_UPDATE_DEVICE = "insert-update-device"


@dataclass(frozen=True)
class Suggestion:
    action: str
    var: str
    site: str           # transfer site (update name / clause site) or "line N"
    speculative: bool   # derived from may-* findings only
    detail: str = ""
    occurrences: int = 0   # dynamic findings backing this suggestion
    est_saved_bytes: int = 0   # modeled bytes applying the edit would save

    def key(self) -> Tuple[str, str, str]:
        return (self.action, self.var, self.site)

    def message(self) -> str:
        spec = " (speculative)" if self.speculative else ""
        text = f"{self.action} {self.var} @ {self.site}{spec}: {self.detail}"
        if self.est_saved_bytes:
            text += f" [saves ~{self.est_saved_bytes} bytes]"
        return text


@dataclass
class SiteStats:
    total: int = 0
    redundant: int = 0
    may_redundant: int = 0
    incorrect: int = 0
    may_incorrect: int = 0


def aggregate_transfer_findings(
    findings: List[Finding], transfer_counts: Dict[Tuple[str, str], int]
) -> Dict[Tuple[str, str], SiteStats]:
    """Per (var, site): how many dynamic transfers and how many were bad.

    ``transfer_counts`` maps (var, site) -> number of dynamic transfers the
    run executed at that site (collected by the runtime)."""
    stats: Dict[Tuple[str, str], SiteStats] = {}
    for (var, site), count in transfer_counts.items():
        stats[(var, site)] = SiteStats(total=count)
    for f in findings:
        entry = stats.setdefault((f.var, f.site), SiteStats())
        if f.kind == REDUNDANT:
            entry.redundant += 1
        elif f.kind == MAY_REDUNDANT:
            entry.may_redundant += 1
        elif f.kind == INCORRECT:
            entry.incorrect += 1
        elif f.kind == MAY_INCORRECT:
            entry.may_incorrect += 1
    return stats


def derive_suggestions(
    findings: List[Finding],
    transfer_counts: Dict[Tuple[str, str], int],
    transfer_bytes: Optional[Dict[Tuple[str, str], int]] = None,
    wasted_bytes: Optional[Dict[Tuple[str, str], int]] = None,
) -> List[Suggestion]:
    """Turn one run's findings into directive-edit suggestions.

    ``transfer_bytes`` / ``wasted_bytes`` (per (var, site), both optional)
    price each edit: deleting an always-redundant transfer saves everything
    the site moved, deferring saves the wasted portion.  Suggestions are
    ranked by estimated savings (stable, so the unpriced order survives
    when no byte info is supplied)."""
    transfer_bytes = transfer_bytes or {}
    wasted_bytes = wasted_bytes or {}
    out: List[Suggestion] = []
    seen = set()

    def add(s: Suggestion) -> None:
        if s.key() not in seen:
            seen.add(s.key())
            out.append(s)

    stats = aggregate_transfer_findings(findings, transfer_counts)
    for (var, site), st in stats.items():
        bad = st.redundant + st.may_redundant
        if not bad and not st.incorrect and not st.may_incorrect:
            continue
        speculative = st.redundant == 0 and st.may_redundant > 0
        moved = transfer_bytes.get((var, site), 0)
        wasted = wasted_bytes.get((var, site), 0)
        if st.incorrect:
            add(Suggestion(
                DELETE_TRANSFER, var, site, False,
                f"transfer copies stale data ({st.incorrect}x): wrong placement",
                occurrences=st.incorrect,
            ))
            continue
        if bad >= st.total and st.total > 0:
            add(Suggestion(
                DELETE_TRANSFER, var, site, speculative,
                f"redundant on every execution ({bad}/{st.total})",
                occurrences=bad,
                est_saved_bytes=max(moved, wasted),
            ))
        elif bad:
            add(Suggestion(
                DEFER_TRANSFER, var, site, speculative,
                f"redundant on {bad}/{st.total} executions: move out of the loop",
                occurrences=bad,
                est_saved_bytes=wasted,
            ))

    for f in findings:
        if f.kind == MISSING:
            action = INSERT_UPDATE_HOST if f.site.startswith("line") else INSERT_UPDATE_DEVICE
            add(Suggestion(
                action, f.var, f.site, False,
                "stale data accessed: a transfer is missing before this point",
            ))
        elif f.kind == MAY_MISSING:
            # Partial write over stale data; not actionable automatically.
            pass
    # Biggest modeled savings first; Python's sort is stable, so suggestions
    # without byte pricing keep their discovery order.
    out.sort(key=lambda s: -s.est_saved_bytes)
    return out


def format_report(findings: List[Finding], suggestions: List[Suggestion]) -> str:
    """Human-readable report in the spirit of the paper's Listing 4."""
    lines = [f"- {f.message()}" for f in findings]
    if suggestions:
        lines.append("")
        lines.append("Suggestions:")
        lines.extend(f"  * {s.message()}" for s in suggestions)
    return "\n".join(lines) if lines else "(no findings)"
