"""Toolchain context: the explicit home of cross-cutting toolchain state.

Everything that used to live in scattered process globals — the
``compile_source`` memo, the experiment harness's default chaos plan —
belongs to a :class:`ToolchainContext`:

* **caches** — named, bounded result caches (the whole-pipeline compile
  memo, the parse cache, the per-pass analysis cache);
* **default_chaos** — the default :class:`~repro.runtime.chaos.FaultPlan`
  picked up by experiment runs that do not pass one explicitly;
* **pass_stats** — per-pass wall-clock timing, invocation and cache
  counters filled in by :class:`~repro.compiler.passes.PassManager`;
* **dump_after** — name of the pass whose output the CLI wants printed.

A context is cheap to construct; tools that want isolation (the CLI builds
one per invocation, scheduler workers one per process) make their own.
Library entry points take an optional ``ctx`` argument and fall back to the
process-wide :func:`default_context`, which exists purely so that the
historical module-level API (``compile_source(src)`` with no context)
keeps working.
"""

from __future__ import annotations

import sys
import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "BoundedCache",
    "CacheRegistry",
    "PassStats",
    "ToolchainContext",
    "default_context",
    "set_default_context",
]

# Entry bound shared by the named caches (the old ``_COMPILE_CACHE_MAX``).
DEFAULT_CACHE_MAX = 256


class BoundedCache:
    """An LRU dict with an entry bound, an optional byte budget, and
    hit/miss/eviction counters.

    Eviction is per-entry (least-recently-used first) so a long-lived
    process — the toolchain daemon in particular — degrades gracefully
    instead of dumping its whole working set on overflow.  Entry costs
    default to a shallow :func:`sys.getsizeof` estimate; callers that know
    the real footprint (the service's disk tier pickles entries anyway)
    pass ``cost=`` explicitly.  All operations are thread-safe: the daemon
    shares one registry across concurrent request handlers.
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_MAX,
                 max_bytes: Optional[int] = None):
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes_held = 0
        self.on_evict: Optional[Callable[[int], None]] = None
        self._lock = threading.RLock()
        self._data: "OrderedDict" = OrderedDict()
        self._costs: Dict = {}

    def get(self, key, default=None):
        with self._lock:
            entry = self._data.get(key, default)
            if entry is not default:
                self.hits += 1
                self._data.move_to_end(key)
            else:
                self.misses += 1
            return entry

    def peek(self, key, default=None):
        """Like :meth:`get` but touches neither counters nor LRU order."""
        with self._lock:
            return self._data.get(key, default)

    def put(self, key, value, cost: Optional[int] = None) -> None:
        if cost is None:
            cost = sys.getsizeof(value)
        with self._lock:
            if key in self._data:
                self.bytes_held -= self._costs.get(key, 0)
                del self._data[key]
            self._data[key] = value
            self._costs[key] = cost
            self.bytes_held += cost
            evicted = 0
            while len(self._data) > self.max_entries or (
                self.max_bytes is not None
                and self.bytes_held > self.max_bytes
                and len(self._data) > 1
            ):
                old_key, _ = self._data.popitem(last=False)
                self.bytes_held -= self._costs.pop(old_key, 0)
                evicted += 1
            self.evictions += evicted
        if evicted and self.on_evict is not None:
            self.on_evict(evicted)

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._costs.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.bytes_held = 0

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._data), "evictions": self.evictions,
                "bytes_held": self.bytes_held}


class CacheRegistry:
    """Named :class:`BoundedCache` instances, created on first use.

    ``fingerprints`` is the AST → source-hash side table the pass manager
    consults for analysis caching.  It lives on the registry — not on the
    manager — so that contexts *sharing* a registry (the daemon's request
    contexts share the server-wide one) also share fingerprint knowledge:
    a parse-cache tree resident from one request still gets analysis-level
    cache hits on the next.

    ``on_evict(name, n)``, when set, is called for every eviction in every
    cache created afterwards — the daemon wires it to the
    ``cache.tier.mem.evict`` counter.
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_MAX,
                 max_bytes: Optional[int] = None):
        self._caches: Dict[str, BoundedCache] = {}
        self._lock = threading.Lock()
        self.default_max_entries = max_entries
        self.default_max_bytes = max_bytes
        self.fingerprints: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self.on_evict: Optional[Callable[[str, int], None]] = None

    def get(self, name: str, max_entries: Optional[int] = None) -> BoundedCache:
        cache = self._caches.get(name)
        if cache is None:
            with self._lock:
                cache = self._caches.get(name)
                if cache is None:
                    cache = BoundedCache(
                        max_entries or self.default_max_entries,
                        max_bytes=self.default_max_bytes,
                    )
                    if self.on_evict is not None:
                        hook = self.on_evict
                        cache.on_evict = lambda n, _name=name: hook(_name, n)
                    self._caches[name] = cache
        return cache

    def names(self) -> List[str]:
        return sorted(self._caches)

    def stats(self) -> Dict[str, Dict[str, int]]:
        return {name: cache.stats() for name, cache in sorted(self._caches.items())}

    def clear(self) -> None:
        for cache in self._caches.values():
            cache.clear()


@dataclass
class PassRecord:
    """Aggregate counters for one named pass."""

    invocations: int = 0
    seconds: float = 0.0        # self time: nested pass time excluded
    cache_hits: int = 0
    cache_misses: int = 0


class PassStats:
    """Per-pass timing/invocation/cache accounting plus an entry-point
    total, so ``--time-passes`` can report both the breakdown and how much
    of the toolchain's wall-clock the breakdown accounts for."""

    def __init__(self):
        self.records: Dict[str, PassRecord] = {}
        self.total_seconds = 0.0   # wall-clock inside toolchain entry points
        self.entries = 0           # number of top-level entry invocations

    def record(self, name: str, seconds: float) -> None:
        rec = self.records.setdefault(name, PassRecord())
        rec.invocations += 1
        rec.seconds += seconds

    def record_cache(self, name: str, hit: bool) -> None:
        rec = self.records.setdefault(name, PassRecord())
        if hit:
            rec.cache_hits += 1
        else:
            rec.cache_misses += 1

    def record_total(self, seconds: float) -> None:
        self.entries += 1
        self.total_seconds += seconds

    def pass_seconds(self) -> float:
        return sum(rec.seconds for rec in self.records.values())

    def coverage(self) -> float:
        """Fraction of entry-point wall-clock attributed to named passes
        (1.0 when nothing ran: an empty report hides nothing)."""
        if self.total_seconds <= 0.0:
            return 1.0
        return min(1.0, self.pass_seconds() / self.total_seconds)

    def reset(self) -> None:
        self.records.clear()
        self.total_seconds = 0.0
        self.entries = 0

    def report(self) -> str:
        """The ``--time-passes`` table."""
        lines = ["=== pass timing ==="]
        header = f"{'pass':14s} {'runs':>5s} {'seconds':>10s} {'%':>6s} {'hits':>5s} {'miss':>5s}"
        lines.append(header)
        lines.append("-" * len(header))
        total = self.total_seconds or self.pass_seconds() or 1.0
        for name, rec in sorted(self.records.items(),
                                key=lambda kv: -kv[1].seconds):
            lines.append(
                f"{name:14s} {rec.invocations:5d} {rec.seconds:10.6f} "
                f"{100.0 * rec.seconds / total:6.1f} "
                f"{rec.cache_hits:5d} {rec.cache_misses:5d}"
            )
        lines.append(
            f"{'total':14s} {self.entries:5d} {self.total_seconds:10.6f} "
            f"(passes account for {100.0 * self.coverage():.1f}%)"
        )
        return "\n".join(lines)


class ToolchainContext:
    """Explicit toolchain state threaded compiler → interp → runtime →
    verify → experiments (see module docstring)."""

    def __init__(self, default_chaos=None, device_config=None):
        self.caches = CacheRegistry()
        self.pass_stats = PassStats()
        # Default FaultPlan for runs that do not pass one explicitly
        # (shared on purpose: one plan's fault budget spans a whole sweep).
        self.default_chaos = default_chaos
        # Default DeviceConfig for runtimes this context spawns (None keeps
        # the stock device).  The CLI's --delta-transfers/--merge-gap flags
        # and the delta-equivalence harness configure runs through this.
        self.device_config = device_config
        # Phase-sampled execution (repro.sampling.SamplingConfig); None —
        # the default — keeps every run bit-identical to an unsampled one.
        self.sampling = None
        # Checkpoint/rollback recovery (repro.runtime.checkpoint
        # .CheckpointConfig); None — the default — runs without snapshots.
        self.checkpoint = None
        # Fault-handling knobs: retry ceiling for transient faults and the
        # backoff base seconds.  None defers to AccRuntime defaults / the
        # cost model, keeping existing runs bit-identical.
        self.max_retries: Optional[int] = None
        self.backoff_base: Optional[float] = None
        # CLI observability hooks.
        self.dump_after: Optional[str] = None
        self.dump_sink: Callable[[str], None] = print
        # Observability layer: span tracer (NULL_TRACER = tracing off) and
        # the run-wide metrics aggregate every runtime's profiler mirrors
        # into.  ``last_runtime`` remembers the most recent AccRuntime this
        # context spawned, so a RunReport can be built even after an error.
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.tracer import NULL_TRACER

        self.tracer = NULL_TRACER
        self.metrics = MetricsRegistry()
        self.last_runtime = None
        # Trace identity (repro.obs.telemetry.TraceContext) of the service
        # request or traced CLI run this context serves; None otherwise.
        # Stamped on RunReports/exports and shipped to pool workers.
        self.trace_context = None
        self._passes = None

    @property
    def passes(self):
        """The context's :class:`~repro.compiler.passes.PassManager`
        (created lazily to keep this module import-light)."""
        if self._passes is None:
            from repro.compiler.passes import PassManager

            self._passes = PassManager(self)
        return self._passes

    def resolve_chaos(self, chaos=None):
        """An explicit plan/spec wins; otherwise the context default.
        A :class:`FaultSpec` is promoted to a fresh plan (own rng/budget)."""
        from repro.runtime.chaos import FaultPlan, FaultSpec

        if chaos is None:
            chaos = self.default_chaos
        if chaos is None:
            return None
        if isinstance(chaos, FaultSpec):
            return FaultPlan(chaos)
        return chaos

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss/size counters for every named cache in this context."""
        return self.caches.stats()

    def clear_caches(self) -> None:
        self.caches.clear()


_DEFAULT_CONTEXT: Optional[ToolchainContext] = None


def default_context() -> ToolchainContext:
    """The process-wide fallback context (compatibility for the historical
    module-level API; new code should construct and thread its own)."""
    global _DEFAULT_CONTEXT
    if _DEFAULT_CONTEXT is None:
        _DEFAULT_CONTEXT = ToolchainContext()
    return _DEFAULT_CONTEXT


def set_default_context(ctx: Optional[ToolchainContext]) -> ToolchainContext:
    """Replace the process-wide fallback context (None installs a fresh
    one).  Returns the previous context so callers can restore it."""
    global _DEFAULT_CONTEXT
    previous = default_context()
    _DEFAULT_CONTEXT = ctx if ctx is not None else ToolchainContext()
    return previous
