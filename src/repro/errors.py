"""Exception hierarchy for the repro package.

Every error raised by the toolchain derives from :class:`ReproError` so that
callers can catch toolchain failures without accidentally swallowing Python
programming errors.  The hierarchy mirrors the pipeline stages: lexing /
parsing, directive handling, semantic analysis, device simulation, runtime,
and verification.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro toolchain."""


class SourceError(ReproError):
    """An error attributable to a location in the input source program."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.line = line
        self.col = col
        if line:
            message = f"line {line}:{col}: {message}"
        super().__init__(message)


class LexError(SourceError):
    """Tokenizer failure (unknown character, bad literal, ...)."""


class ParseError(SourceError):
    """Parser failure (unexpected token, malformed declaration, ...)."""


class PragmaError(SourceError):
    """Malformed or unknown ``#pragma acc`` directive or clause."""


class SemanticError(SourceError):
    """Semantic violation (undeclared variable, type mismatch, illegal
    directive placement, ...)."""


class CompileError(ReproError):
    """Failure inside a compiler pass (kernel generation, demotion, ...)."""


class DeviceError(ReproError):
    """Simulated-device fault (bad address, double free, launch failure)."""


class DeviceMemoryError(DeviceError):
    """Device allocator fault: out of memory, bad free, bad address."""


class RuntimeFault(ReproError):
    """Fault raised by the OpenACC runtime (present-table misuse, bad
    async queue id, update of data not present on the device, ...)."""


class InterpError(ReproError):
    """Host interpreter fault (unbound name, bad subscript, ...)."""


class VerificationError(ReproError):
    """Raised when a verification run itself cannot proceed (NOT raised for
    detected program errors, which are reported as findings)."""


class ConvergenceError(VerificationError):
    """The interactive optimization loop failed to converge within the
    configured iteration limit."""
