"""Exception hierarchy for the repro package.

Every error raised by the toolchain derives from :class:`ReproError` so that
callers can catch toolchain failures without accidentally swallowing Python
programming errors.  The hierarchy mirrors the pipeline stages: lexing /
parsing, directive handling, semantic analysis, device simulation, runtime,
and verification.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for every error raised by the repro toolchain."""


class SourceError(ReproError):
    """An error attributable to a location in the input source program."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.line = line
        self.col = col
        if line:
            message = f"line {line}:{col}: {message}"
        super().__init__(message)


class LexError(SourceError):
    """Tokenizer failure (unknown character, bad literal, ...)."""


class ParseError(SourceError):
    """Parser failure (unexpected token, malformed declaration, ...)."""


class PragmaError(SourceError):
    """Malformed or unknown ``#pragma acc`` directive or clause."""


class SemanticError(SourceError):
    """Semantic violation (undeclared variable, type mismatch, illegal
    directive placement, ...)."""


class CompileError(ReproError):
    """Failure inside a compiler pass (kernel generation, demotion, ...)."""


class DeviceError(ReproError):
    """Simulated-device fault (bad address, double free, launch failure)."""


class DeviceMemoryError(DeviceError):
    """Device allocator fault: out of memory, bad free, bad address."""


class WatchdogTimeout(DeviceError):
    """A kernel exceeded its step budget: the execution-backend watchdog
    fired instead of letting the simulator hang (or, in the experiment
    harness, a benchmark exceeded its wall-clock budget)."""


class ChaosFault(DeviceError):
    """A fault injected by the runtime chaos framework
    (:mod:`repro.runtime.chaos`).  Always raised *before* the faulted
    operation mutates device state, so a caught ``ChaosFault`` can be
    retried or degraded against pristine memory."""

    def __init__(self, message: str, kind: str = "", site: str = "",
                 transient: bool = False):
        self.kind = kind
        self.site = site
        self.transient = transient
        super().__init__(message)


class TransientFault(ChaosFault):
    """A chaos fault marked transient: the runtime's retry-with-backoff
    layer (:mod:`repro.runtime.accrt`) may re-issue the operation."""

    def __init__(self, message: str, kind: str = "", site: str = ""):
        super().__init__(message, kind=kind, site=site, transient=True)


class TransferCorruptionError(DeviceError):
    """Post-transfer verification found the destination differing from the
    source after the retry budget was exhausted."""


class RuntimeFault(ReproError):
    """Fault raised by the OpenACC runtime (present-table misuse, bad
    async queue id, update of data not present on the device, ...)."""


class InterpError(ReproError):
    """Host interpreter fault (unbound name, bad subscript, ...)."""


class SamplingError(ReproError):
    """Fault in the phase-sampled execution mode (:mod:`repro.sampling`)."""


class SamplingConflictError(SamplingError):
    """Sampling was requested together with a feature it is unsound under
    (today: chaos fault injection, whose stochastic draw sequence depends on
    every operation actually executing)."""


class ExtrapolationBoundError(SamplingError):
    """An extrapolated quantity fell outside its declared per-cluster error
    bound.  Raised by the validation path (sampled-vs-full gates, property
    tests) instead of letting a silently-bad number propagate.

    ``quantity``/``expected``/``actual``/``bound`` carry the violated
    comparison for programmatic consumers."""

    def __init__(self, message: str, quantity: str = "",
                 expected: float = 0.0, actual: float = 0.0,
                 bound: float = 0.0):
        self.quantity = quantity
        self.expected = expected
        self.actual = actual
        self.bound = bound
        super().__init__(message)


class ShardingError(ReproError):
    """Fault in the multi-device sharding layer (:mod:`repro.runtime.partition`
    / :class:`repro.device.deviceset.DeviceSet`)."""


class ShardingConflictError(ShardingError):
    """``--devices N>1`` was requested together with a feature that cannot
    shard: race-revealing interleaved launches (backend='interleaved', random
    schedules, vectorization off, or a launch the vectorizer rejects), chaos
    fault injection (draw sequences are per-device-order dependent), or
    sampling fast-forward (skipped launches have no shard footprints).  Raised
    eagerly instead of silently falling back to one device."""


class CheckpointError(ReproError):
    """Fault in the checkpoint/rollback subsystem
    (:mod:`repro.runtime.checkpoint`): unreadable or corrupted snapshot
    file, format-version mismatch, or a restore attempted at a program
    point whose structure no longer matches the snapshot."""


class CheckpointConflictError(CheckpointError):
    """Checkpointing was requested together with a feature it is unsound
    under (today: phase sampling, whose skipped iterations have no concrete
    state to snapshot)."""


class RecoveryExhaustedError(ReproError):
    """The rollback fault budget is spent: the run rolled back
    ``rollbacks`` times without making it to completion, so the recovery
    layer escalates to a typed abort instead of livelocking on a fault
    storm.  ``last_error`` is the fault that triggered the final rollback
    attempt."""

    def __init__(self, message: str, rollbacks: int = 0,
                 last_error: Optional[BaseException] = None):
        self.rollbacks = rollbacks
        self.last_error = last_error
        super().__init__(message)


class ServiceError(ReproError):
    """Fault in the toolchain service layer (:mod:`repro.service`):
    malformed request, unknown operation, or a daemon-side failure that is
    not attributable to the program being served."""


class ServiceProtocolError(ServiceError):
    """The request violates the wire protocol: not a JSON object, missing
    or unknown ``op``, bad field types, or disallowed arguments.  Always
    answered with a typed error payload — a protocol error must never tear
    down the connection or the daemon."""


class VerificationError(ReproError):
    """Raised when a verification run itself cannot proceed (NOT raised for
    detected program errors, which are reported as findings)."""


class ConvergenceError(VerificationError):
    """The interactive optimization loop failed to converge within the
    configured iteration limit.

    ``history`` carries one record per verification round — the findings
    count, the suggestions seen, the edits applied, and whether the round was
    reverted — so a non-converging loop is diagnosable from the exception
    alone."""

    def __init__(self, message: str, history=None):
        self.history = list(history or [])
        super().__init__(message)


# Coarse pipeline stage per error class, most-derived first (CLI one-line
# diagnostics and RunOutcome tagging).
_STAGES = (
    ("LexError", "lex"),
    ("ParseError", "parse"),
    ("PragmaError", "pragma"),
    ("SemanticError", "semantic"),
    ("CompileError", "compile"),
    ("WatchdogTimeout", "watchdog"),
    ("ChaosFault", "chaos"),
    ("TransferCorruptionError", "transfer"),
    ("DeviceMemoryError", "device-memory"),
    ("DeviceError", "device"),
    ("RuntimeFault", "runtime"),
    ("InterpError", "interp"),
    ("ExtrapolationBoundError", "sample"),
    ("SamplingError", "sample"),
    ("ShardingConflictError", "sharding"),
    ("ShardingError", "sharding"),
    ("CheckpointConflictError", "checkpoint"),
    ("CheckpointError", "checkpoint"),
    ("RecoveryExhaustedError", "recovery"),
    ("ServiceProtocolError", "service"),
    ("ServiceError", "service"),
    ("ConvergenceError", "optimize"),
    ("VerificationError", "verify"),
    ("ReproError", "toolchain"),
)


def error_stage(err: BaseException) -> str:
    """The pipeline stage an error belongs to (``'internal'`` for anything
    outside the :class:`ReproError` hierarchy)."""
    table = {globals()[name]: stage for name, stage in _STAGES}
    for cls in type(err).__mro__:
        stage = table.get(cls)
        if stage is not None:
            return stage
    return "internal"
