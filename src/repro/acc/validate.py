"""Directive legality checks.

These run right after parsing (part of the compiler frontend) and catch the
directive-misuse class of bugs *statically*: unknown variables in clauses,
a variable in two conflicting data clauses of one directive, ``loop``
directives outside compute regions, ``update`` naming data not covered by any
enclosing data clause, and malformed reductions.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.acc.directives import DATA_CLAUSES, Directive
from repro.acc.regions import RegionTable, collect_regions
from repro.errors import SemanticError
from repro.lang import ast
from repro.lang.ctypes import CType


class ValidationReport:
    """Accumulated directive diagnostics; ``raise_if_errors`` fails fast."""

    def __init__(self):
        self.errors: List[str] = []
        self.warnings: List[str] = []

    def error(self, message: str, line: int = 0) -> None:
        prefix = f"line {line}: " if line else ""
        self.errors.append(prefix + message)

    def warn(self, message: str, line: int = 0) -> None:
        prefix = f"line {line}: " if line else ""
        self.warnings.append(prefix + message)

    def raise_if_errors(self) -> None:
        if self.errors:
            raise SemanticError("; ".join(self.errors))

    def __repr__(self):
        return f"ValidationReport(errors={self.errors}, warnings={self.warnings})"


def declared_names(func: ast.FuncDef, program: ast.Program) -> Dict[str, CType]:
    """All names visible in ``func``: globals, params, local declarations."""
    names: Dict[str, CType] = {}
    for decl in program.decls:
        names[decl.name] = decl.ctype
    for param in func.params:
        names[param.name] = param.ctype
    for node in func.body.walk():
        if isinstance(node, ast.VarDecl):
            names[node.name] = node.ctype
    return names


def validate_function(func: ast.FuncDef, program: ast.Program) -> ValidationReport:
    """Validate every directive in one function."""
    report = ValidationReport()
    names = declared_names(func, program)
    table = collect_regions(func)

    for node in func.body.walk():
        if not isinstance(node, ast.Stmt):
            continue
        for directive in node.pragmas:
            if directive.namespace != "acc":
                continue
            _check_clause_vars(directive, names, report)
            _check_conflicting_data_clauses(directive, report)
            if directive.name == "loop":
                if not _inside_compute(node, table):
                    report.error(
                        "orphan '#pragma acc loop' outside any compute region",
                        directive.line,
                    )
                if not isinstance(node, ast.For):
                    report.error(
                        "'#pragma acc loop' must annotate a for statement",
                        directive.line,
                    )
            if directive.is_compute and directive.name.endswith("loop"):
                if not isinstance(node, ast.For):
                    report.error(
                        f"'#pragma acc {directive.name}' must annotate a for statement",
                        directive.line,
                    )
            for clause in directive.clauses_named("reduction"):
                if clause.op is None:
                    report.error("reduction clause missing operator", directive.line)

    _check_update_coverage(table, report)
    return report


def validate_program(program: ast.Program) -> ValidationReport:
    """Validate all functions; merged report."""
    merged = ValidationReport()
    for func in program.funcs:
        rep = validate_function(func, program)
        merged.errors.extend(rep.errors)
        merged.warnings.extend(rep.warnings)
    return merged


def _check_clause_vars(directive: Directive, names: Dict[str, CType], report) -> None:
    for clause in directive.clauses:
        for var in clause.var_names():
            if var not in names:
                report.error(
                    f"clause '{clause.name}' names undeclared variable '{var}'",
                    directive.line,
                )


def _check_conflicting_data_clauses(directive: Directive, report) -> None:
    seen: Dict[str, str] = {}
    for clause in directive.clauses:
        if clause.name not in DATA_CLAUSES:
            continue
        for var in clause.var_names():
            if var in seen and seen[var] != clause.name:
                report.error(
                    f"variable '{var}' appears in both '{seen[var]}' and "
                    f"'{clause.name}' clauses",
                    directive.line,
                )
            seen[var] = clause.name


def _inside_compute(node: ast.Stmt, table: RegionTable) -> bool:
    for region in table.compute:
        if any(n is node for n in region.stmt.walk()):
            return True
    return False


def _check_update_coverage(table: RegionTable, report) -> None:
    """``update host/device(v)`` requires v under some enclosing data clause.

    We approximate "enclosing" as: v is named by any data clause of any data
    region or compute region of the function (the runtime present-table does
    the exact dynamic check)."""
    covered: Set[str] = set()
    for region in table.data:
        for _, var in region.directive.data_clause_vars():
            covered.add(var)
    for region in table.compute:
        for _, var in region.directive.data_clause_vars():
            covered.add(var)
    for node in table.func.body.walk():
        for directive in getattr(node, "pragmas", []):
            if directive.namespace == "acc" and directive.name == "enter data":
                for _, var in directive.data_clause_vars():
                    covered.add(var)
    for point in table.updates:
        for clause in point.directive.clauses_named("host", "device", "self"):
            for var in clause.var_names():
                if var not in covered:
                    report.warn(
                        f"update of '{var}' which no data clause covers; the "
                        "runtime will fault if it is not device-resident",
                        point.directive.line,
                    )
