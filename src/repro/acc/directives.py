"""Data model for ``#pragma acc`` directives and clauses (OpenACC 1.0).

A :class:`Directive` is attached to the statement it precedes (the statement's
``pragmas`` list).  Clause argument lists hold :class:`VarRef` objects (a
variable name plus an optional subarray section, which the coherence runtime
ignores because it tracks whole arrays — §III-B of the paper) or expression
ASTs for value-bearing clauses like ``async(1)``.

The ``repro`` namespace carries the paper's §III-C extensions:
``#pragma repro bound(var, lo, hi)`` and ``#pragma repro assert(expr)``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

# Directive names (after normalization; combined forms keep both words).
DATA_DIRECTIVES = frozenset({"data"})
COMPUTE_DIRECTIVES = frozenset({"kernels", "parallel", "kernels loop", "parallel loop"})
EXEC_DIRECTIVES = frozenset({"update", "wait", "enter data", "exit data"})
LOOP_DIRECTIVES = frozenset({"loop"})
OTHER_DIRECTIVES = frozenset({"declare", "cache", "host_data"})
ALL_ACC_DIRECTIVES = (
    DATA_DIRECTIVES | COMPUTE_DIRECTIVES | EXEC_DIRECTIVES | LOOP_DIRECTIVES | OTHER_DIRECTIVES
)

# Clause name -> canonical name (OpenACC 1.0 aliases).
CLAUSE_ALIASES = {
    "pcopy": "present_or_copy",
    "pcopyin": "present_or_copyin",
    "pcopyout": "present_or_copyout",
    "pcreate": "present_or_create",
}

DATA_CLAUSES = frozenset(
    {
        "copy",
        "copyin",
        "copyout",
        "create",
        "present",
        "present_or_copy",
        "present_or_copyin",
        "present_or_copyout",
        "present_or_create",
        "deviceptr",
        "delete",  # exit data only (OpenACC 2.0)
    }
)

VAR_LIST_CLAUSES = DATA_CLAUSES | frozenset(
    {"private", "firstprivate", "host", "device", "self", "use_device"}
)

VALUE_CLAUSES = frozenset(
    {"if", "async", "num_gangs", "num_workers", "vector_length", "collapse", "gang", "worker", "vector", "wait"}
)

FLAG_CLAUSES = frozenset({"seq", "independent"})

REDUCTION_OPS = frozenset({"+", "*", "max", "min", "&", "|", "^", "&&", "||"})

# Which data a clause moves at region entry / exit (whole-array model).
CLAUSE_COPIES_IN = frozenset({"copy", "copyin", "present_or_copy", "present_or_copyin"})
CLAUSE_COPIES_OUT = frozenset({"copy", "copyout", "present_or_copy", "present_or_copyout"})
CLAUSE_ALLOCATES = DATA_CLAUSES - frozenset({"present", "deviceptr"})


class VarRef:
    """A variable mentioned in a clause, optionally with a subarray section
    ``name[start:length]`` (sections are parsed but tracked whole-array)."""

    __slots__ = ("name", "section")

    def __init__(self, name: str, section: Optional[Tuple[object, object]] = None):
        self.name = name
        self.section = section

    def __eq__(self, other):
        return (
            isinstance(other, VarRef)
            and self.name == other.name
            and self.section == other.section
        )

    def __hash__(self):
        return hash((self.name, bool(self.section)))

    def __repr__(self):
        if self.section:
            return f"VarRef({self.name}[{self.section[0]}:{self.section[1]}])"
        return f"VarRef({self.name})"

    def to_source(self) -> str:
        if self.section:
            from repro.lang.printer import expr_to_source

            start, length = self.section
            return f"{self.name}[{expr_to_source(start)}:{expr_to_source(length)}]"
        return self.name


class Clause:
    """One clause of a directive.

    * var-list clauses: ``args`` is a list of :class:`VarRef`.
    * value clauses: ``args`` is a list with one expression AST (possibly
      empty, e.g. bare ``async`` or bare ``gang``).
    * ``reduction``: ``op`` holds the operator, ``args`` the VarRefs.
    """

    __slots__ = ("name", "args", "op")

    def __init__(self, name: str, args: Optional[Sequence] = None, op: Optional[str] = None):
        self.name = CLAUSE_ALIASES.get(name, name)
        self.args = list(args) if args else []
        self.op = op

    def var_names(self) -> List[str]:
        """Names of all VarRef arguments."""
        return [a.name for a in self.args if isinstance(a, VarRef)]

    def __eq__(self, other):
        return (
            isinstance(other, Clause)
            and self.name == other.name
            and self.args == other.args
            and self.op == other.op
        )

    def __hash__(self):
        return hash((self.name, self.op, len(self.args)))

    def __repr__(self):
        inner = ", ".join(map(repr, self.args))
        if self.op:
            inner = f"{self.op}: {inner}"
        return f"Clause({self.name}({inner}))" if inner else f"Clause({self.name})"

    def to_source(self) -> str:
        if not self.args and self.op is None:
            return self.name
        parts = []
        for a in self.args:
            if isinstance(a, VarRef):
                parts.append(a.to_source())
            else:
                from repro.lang.printer import expr_to_source

                parts.append(expr_to_source(a))
        inner = ", ".join(parts)
        if self.op is not None:
            inner = f"{self.op}:{inner}"
        return f"{self.name}({inner})" if inner else self.name


class Directive:
    """A whole ``#pragma <namespace> <name> <clauses...>`` line."""

    __slots__ = ("namespace", "name", "clauses", "line")

    def __init__(
        self,
        name: str,
        clauses: Optional[Sequence[Clause]] = None,
        namespace: str = "acc",
        line: int = 0,
    ):
        self.namespace = namespace
        self.name = name
        self.clauses = list(clauses) if clauses else []
        self.line = line

    # -- queries -----------------------------------------------------------
    @property
    def is_compute(self) -> bool:
        return self.namespace == "acc" and self.name in COMPUTE_DIRECTIVES

    @property
    def is_data(self) -> bool:
        return self.namespace == "acc" and self.name in DATA_DIRECTIVES

    @property
    def is_loop(self) -> bool:
        return self.namespace == "acc" and (
            self.name in LOOP_DIRECTIVES or self.name.endswith("loop")
        )

    def clause(self, name: str) -> Optional[Clause]:
        """First clause with the given canonical name, or None."""
        name = CLAUSE_ALIASES.get(name, name)
        for c in self.clauses:
            if c.name == name:
                return c
        return None

    def clauses_named(self, *names: str) -> List[Clause]:
        wanted = {CLAUSE_ALIASES.get(n, n) for n in names}
        return [c for c in self.clauses if c.name in wanted]

    def has_clause(self, name: str) -> bool:
        return self.clause(name) is not None

    def data_clause_vars(self) -> List[Tuple[str, str]]:
        """All (clause_name, var_name) pairs over the data clauses."""
        out = []
        for c in self.clauses:
            if c.name in DATA_CLAUSES:
                for v in c.var_names():
                    out.append((c.name, v))
        return out

    def remove_clauses(self, *names: str) -> None:
        wanted = {CLAUSE_ALIASES.get(n, n) for n in names}
        self.clauses = [c for c in self.clauses if c.name not in wanted]

    def add_clause(self, clause: Clause) -> None:
        self.clauses.append(clause)

    def clone(self) -> "Directive":
        return Directive(
            self.name,
            [Clause(c.name, list(c.args), c.op) for c in self.clauses],
            namespace=self.namespace,
            line=self.line,
        )

    def __eq__(self, other):
        return (
            isinstance(other, Directive)
            and self.namespace == other.namespace
            and self.name == other.name
            and self.clauses == other.clauses
        )

    def __hash__(self):
        return id(self)

    def __repr__(self):
        return f"Directive(#pragma {self.namespace} {self.name} {self.clauses})"

    def to_source(self) -> str:
        # `wait(queue)` carries the queue in a clause also named "wait";
        # print it in the directive-argument position.
        if self.name == "wait" and len(self.clauses) == 1 and self.clauses[0].name == "wait":
            from repro.lang.printer import expr_to_source

            return f"#pragma {self.namespace} wait({expr_to_source(self.clauses[0].args[0])})"
        parts = [f"#pragma {self.namespace} {self.name}"]
        parts.extend(c.to_source() for c in self.clauses)
        return " ".join(parts)


def merge_var_lists(clauses: Iterable[Clause]) -> List[str]:
    """Union of var names across a clause iterable, order-preserving."""
    seen = []
    for c in clauses:
        for name in c.var_names():
            if name not in seen:
                seen.append(name)
    return seen
