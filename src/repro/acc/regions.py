"""Extraction of OpenACC regions from an annotated AST.

A *compute region* is a statement annotated with ``kernels``/``parallel``
(possibly combined with ``loop``); it becomes one GPU kernel named
``<function>_kernel<N>`` in textual order, matching OpenARC's naming (the
paper's ``main_kernel0``).  A *data region* is a statement annotated with
``data``; data regions nest and each compute region records its enclosing
data regions innermost-first (the demotion pass walks that chain).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.acc.directives import Directive
from repro.lang import ast


class DataRegion:
    """A ``#pragma acc data`` region."""

    def __init__(self, stmt: ast.Stmt, directive: Directive, parent: Optional["DataRegion"]):
        self.stmt = stmt
        self.directive = directive
        self.parent = parent

    def chain(self) -> List["DataRegion"]:
        """This region and its ancestors, innermost first."""
        out = []
        region: Optional[DataRegion] = self
        while region is not None:
            out.append(region)
            region = region.parent
        return out

    def __repr__(self):
        return f"DataRegion({self.directive.to_source()!r})"


class ComputeRegion:
    """A ``kernels``/``parallel`` compute region (one GPU kernel)."""

    def __init__(
        self,
        name: str,
        index: int,
        stmt: ast.Stmt,
        directive: Directive,
        enclosing_data: List[DataRegion],
        func: ast.FuncDef,
    ):
        self.name = name
        self.index = index
        self.stmt = stmt
        self.directive = directive
        self.enclosing_data = enclosing_data  # innermost first
        self.func = func

    @property
    def is_parallel(self) -> bool:
        return self.directive.name.startswith("parallel")

    def __repr__(self):
        return f"ComputeRegion({self.name})"


class UpdatePoint:
    """A ``#pragma acc update`` executable directive site."""

    def __init__(self, stmt: ast.Stmt, directive: Directive, index: int):
        self.stmt = stmt
        self.directive = directive
        self.index = index
        self.name = f"update{index}"

    def __repr__(self):
        return f"UpdatePoint({self.name}: {self.directive.to_source()!r})"


class RegionTable:
    """All regions of one function, in textual order."""

    def __init__(self, func: ast.FuncDef):
        self.func = func
        self.compute: List[ComputeRegion] = []
        self.data: List[DataRegion] = []
        self.updates: List[UpdatePoint] = []

    def kernel(self, name: str) -> ComputeRegion:
        for region in self.compute:
            if region.name == name:
                return region
        raise KeyError(name)

    def kernel_names(self) -> List[str]:
        return [r.name for r in self.compute]

    def region_for_stmt(self, stmt: ast.Stmt) -> Optional[ComputeRegion]:
        for region in self.compute:
            if region.stmt is stmt:
                return region
        return None


def collect_regions(func: ast.FuncDef) -> RegionTable:
    """Walk a function body and build its :class:`RegionTable`."""
    table = RegionTable(func)

    def walk(stmt: ast.Stmt, data_parent: Optional[DataRegion]) -> None:
        current_data = data_parent
        compute_directive = None
        for directive in stmt.pragmas:
            if directive.is_data:
                region = DataRegion(stmt, directive, current_data)
                table.data.append(region)
                current_data = region
            elif directive.is_compute:
                compute_directive = directive
            elif directive.namespace == "acc" and directive.name == "update":
                table.updates.append(UpdatePoint(stmt, directive, len(table.updates)))
        if compute_directive is not None:
            index = len(table.compute)
            region = ComputeRegion(
                name=f"{func.name}_kernel{index}",
                index=index,
                stmt=stmt,
                directive=compute_directive,
                enclosing_data=current_data.chain() if current_data else [],
                func=func,
            )
            table.compute.append(region)
            return  # compute regions do not nest
        for child in _child_statements(stmt):
            walk(child, current_data)

    for top in func.body.body:
        walk(top, None)
    return table


def _child_statements(stmt: ast.Stmt):
    if isinstance(stmt, ast.Block):
        yield from stmt.body
    elif isinstance(stmt, ast.If):
        yield stmt.then
        if stmt.orelse is not None:
            yield stmt.orelse
    elif isinstance(stmt, ast.For):
        yield stmt.body
    elif isinstance(stmt, ast.While):
        yield stmt.body


def collect_program_regions(program: ast.Program) -> Dict[str, RegionTable]:
    """Region tables for every function in the program."""
    return {f.name: collect_regions(f) for f in program.funcs}
