"""OpenACC semantic layer: directive model, region extraction, validation."""

from repro.acc.directives import Clause, Directive, VarRef
from repro.acc.regions import ComputeRegion, DataRegion, collect_regions

__all__ = [
    "Clause",
    "Directive",
    "VarRef",
    "ComputeRegion",
    "DataRegion",
    "collect_regions",
]
