"""Phase fingerprints — the analogue of LoopPoint's basic-block vectors.

A *phase* is one iteration of a counted host loop.  While a phase is open
the sampler records every atomic profiler operation that lands inside it
(``charges`` = ``Profiler.spend`` calls in order, ``counts`` =
``Profiler.count`` deltas, ``observes`` = histogram observations) plus a
*structural* event stream:

* ``("L", kernel, backend, write_sig)`` per kernel launch, where
  ``write_sig`` canonicalizes the vectorized backend's write-set footprints;
* ``("T", var, site, direction)`` per dynamic transfer;
* ``("S", loop, group, n)`` when a nested loop extrapolated ``n`` of its own
  iterations while this phase was open.

Two phases with equal events *and* equal numeric payloads are
signature-exact — extrapolating from either is exact by construction.
Phases that match structurally but drift numerically (a clamp kernel whose
step count wanders, a distance kernel whose branch counts follow centroid
drift) are compared on a fixed-order feature vector: per-category modeled
seconds plus device bytes moved in each direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.runtime.profiler import ALL_CATEGORIES

__all__ = ["PhaseFingerprint", "OpenPhase", "relative_distance", "FEATURE_NAMES"]

FEATURE_NAMES: Tuple[str, ...] = tuple(ALL_CATEGORIES) + ("bytes_h2d", "bytes_d2h")


@dataclass(frozen=True)
class PhaseFingerprint:
    """Immutable record of everything one measured phase did."""

    events: Tuple[tuple, ...]
    charges: Tuple[Tuple[str, float], ...]
    counts: Tuple[Tuple[str, int], ...]
    observes: Tuple[Tuple[str, float], ...]
    dev_h2d: int
    dev_d2h: int

    def charge_sums(self) -> List[Tuple[str, float]]:
        """Per-category totals in first-occurrence order (deterministic, so
        bulk replay charges in a stable order)."""
        sums: Dict[str, float] = {}
        for cat, sec in self.charges:
            sums[cat] = sums.get(cat, 0.0) + sec
        return list(sums.items())

    def count_sums(self) -> List[Tuple[str, int]]:
        sums: Dict[str, int] = {}
        for name, delta in self.counts:
            sums[name] = sums.get(name, 0) + delta
        return list(sums.items())

    def seconds(self) -> float:
        return sum(sec for _, sec in self.charges)

    def features(self) -> Tuple[float, ...]:
        """Fixed-order numeric summary used for near-cluster matching."""
        sums = dict(self.charge_sums())
        return tuple(sums.get(cat, 0.0) for cat in ALL_CATEGORIES) + (
            float(self.dev_h2d), float(self.dev_d2h))

    def launches(self) -> int:
        """Kernel launches inside the phase, including launches a nested
        skip extrapolated (carried by ``("S", ...)`` events' replayed
        counters, which live in ``counts``, not here)."""
        return sum(1 for ev in self.events if ev and ev[0] == "L")


def relative_distance(a: Tuple[float, ...], b: Tuple[float, ...]) -> float:
    """Max componentwise relative distance between two feature vectors
    (0.0 = identical; a component present in only one vector maxes out)."""
    worst = 0.0
    for x, y in zip(a, b):
        if x == y:
            continue
        denom = max(abs(x), abs(y))
        if denom == 0.0:
            continue
        worst = max(worst, abs(x - y) / denom)
    return worst


class OpenPhase:
    """Mutable accumulator for the phase currently executing."""

    __slots__ = ("charges", "counts", "observes", "events",
                 "dev_h2d0", "dev_d2h0")

    def __init__(self, dev_h2d0: int, dev_d2h0: int):
        self.charges: List[Tuple[str, float]] = []
        self.counts: List[Tuple[str, int]] = []
        self.observes: List[Tuple[str, float]] = []
        self.events: List[tuple] = []
        self.dev_h2d0 = dev_h2d0
        self.dev_d2h0 = dev_d2h0

    def seal(self, dev_h2d: int, dev_d2h: int) -> PhaseFingerprint:
        return PhaseFingerprint(
            events=tuple(self.events),
            charges=tuple(self.charges),
            counts=tuple(self.counts),
            observes=tuple(self.observes),
            dev_h2d=dev_h2d - self.dev_h2d0,
            dev_d2h=dev_d2h - self.dev_d2h0,
        )
