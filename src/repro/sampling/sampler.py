"""The phase sampler: measure a few iterations, extrapolate the rest.

``PhaseSampler`` attaches to one run (one ``AccRuntime``/``Interp`` pair)
when ``ToolchainContext.sampling`` is set.  It taps the profiler (every
``spend``/``count``/``observe``), the runtime (kernel launches, transfers),
and the interpreter's counted-``for`` loops.  Each loop gets a
:class:`LoopController` that:

1. records one :class:`~repro.sampling.fingerprint.PhaseFingerprint` per
   iteration (a *phase*),
2. groups phases greedily — exact fingerprint equality first, then
   structural match within a relative feature tolerance
   (:class:`~repro.sampling.cluster.GroupTable`),
3. once ``stability`` consecutive phases land in one group (and ``warmup``
   iterations have been measured since loop entry), computes the loop's
   remaining trip count from its counted-loop shape and *extrapolates*: the
   representative phase's per-category charge sums are bulk-replayed
   ``n_rem`` times, counters are bulk-multiplied, device byte odometers
   advanced, the loop variable fast-forwarded to its exit value, and the
   loop exited without executing the remaining iterations.

Replay goes through the ordinary ``Profiler``/device surfaces, so an
*enclosing* loop's open phase absorbs the extrapolated charges exactly as
it would have absorbed the measured ones — nested loops (CG's ``cgit``
inside ``it``, KMEANS' feature loops inside the point loop) sample
recursively, with a synthetic ``("S", loop, group, n)`` event keeping outer
structural signatures comparable across iterations.

Controllers persist across loop re-entries: an inner loop that stabilized
during the first outer iteration re-measures only ``warmup`` iterations on
each subsequent entry before skipping again.

Sampling is a modeling mode: host code inside skipped iterations never
runs, so program *outputs* are not faithful — modeled time, transfer bytes,
counters, and the distinct coherence finding set are (validated by
``scripts/check_sampling_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ExtrapolationBoundError
from repro.lang import ast
from repro.runtime.profiler import (
    CTR_SAMPLE_SKIPPED_ITERATIONS,
    CTR_SAMPLE_SKIPPED_LAUNCHES,
)
from repro.sampling.cluster import GroupTable, kmeans
from repro.sampling.config import SamplingConfig
from repro.sampling.fingerprint import OpenPhase, PhaseFingerprint

__all__ = ["PhaseSampler", "LoopController", "CountedLoop",
           "analyze_counted_loop", "remaining_trips"]

# Replaying per-iteration histogram observations costs one ``observe`` per
# skipped value; past this many replayed observations the distribution is
# dropped instead (flat counters and modeled time stay exact either way).
_MAX_REPLAY_OBSERVES = 100_000


# ---------------------------------------------------------------------------
# Counted-loop shape analysis
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CountedLoop:
    """A ``for`` loop whose trip count is computable from its header:
    ``var`` compared against a ``bound`` expression free of ``var``, stepped
    by a constant integer ``delta`` each iteration.  ``op`` is normalized so
    the loop variable reads on the left."""

    var: str
    delta: int
    op: str
    bound: object


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _is_name(node, var: str) -> bool:
    return isinstance(node, ast.Name) and node.id == var


def _mentions(node, var: str) -> bool:
    if isinstance(node, ast.Name):
        return node.id == var
    if isinstance(node, (list, tuple)):
        return any(_mentions(item, var) for item in node)
    if hasattr(node, "__dict__"):
        return any(_mentions(value, var) for key, value in vars(node).items()
                   if key not in ("line", "col"))
    return False


def _step_delta(step, var: str) -> Optional[int]:
    """Constant per-iteration increment of ``var``, or None."""
    if isinstance(step, ast.ExprStmt):
        expr = step.expr
        if isinstance(expr, ast.Unary) and _is_name(expr.operand, var):
            if expr.op in ("++", "p++"):
                return 1
            if expr.op in ("--", "p--"):
                return -1
        return None
    if not (isinstance(step, ast.Assign) and _is_name(step.target, var)):
        return None
    if step.op in ("+", "-") and isinstance(step.value, ast.IntLit):
        return step.value.value if step.op == "+" else -step.value.value
    if step.op == "":
        value = step.value
        if isinstance(value, ast.Binary) and value.op in ("+", "-"):
            left, right = value.left, value.right
            if _is_name(left, var) and isinstance(right, ast.IntLit):
                return right.value if value.op == "+" else -right.value
            if (value.op == "+" and _is_name(right, var)
                    and isinstance(left, ast.IntLit)):
                return left.value
    return None


def analyze_counted_loop(stmt, loop_var: str) -> Optional[CountedLoop]:
    """Recognize ``for (init; var REL bound; var += c)`` over ``loop_var``.

    Returns None for anything else — such loops simply never sample.  The
    bound is re-evaluated at skip time, so a bound the loop body itself
    mutates can mis-extrapolate; iterative-benchmark headers (``it < NITER``,
    ``i < n``) are loop-invariant.
    """
    cond, step = stmt.cond, stmt.step
    if cond is None or step is None or loop_var is None:
        return None
    if not (isinstance(cond, ast.Binary) and cond.op in _FLIP):
        return None
    if _is_name(cond.left, loop_var) and not _mentions(cond.right, loop_var):
        op, bound = cond.op, cond.right
    elif _is_name(cond.right, loop_var) and not _mentions(cond.left, loop_var):
        op, bound = _FLIP[cond.op], cond.left
    else:
        return None
    delta = _step_delta(step, loop_var)
    if not delta:
        return None
    if delta > 0 and op not in ("<", "<="):
        return None
    if delta < 0 and op not in (">", ">="):
        return None
    return CountedLoop(var=loop_var, delta=delta, op=op, bound=bound)


def remaining_trips(v0: int, bound: int, delta: int, op: str) -> int:
    """Trips still to run given the loop variable's current value ``v0``
    (the not-yet-executed current iteration counts)."""
    if op == "<":
        return 0 if v0 >= bound else (bound - v0 + delta - 1) // delta
    if op == "<=":
        return 0 if v0 > bound else (bound - v0) // delta + 1
    step = -delta
    if op == ">":
        return 0 if v0 <= bound else (v0 - bound + step - 1) // step
    if op == ">=":
        return 0 if v0 < bound else (v0 - bound) // step + 1
    raise ValueError(f"unsupported relation {op!r}")


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _write_sig(write_sets) -> tuple:
    """Canonical hashable form of LaunchResult.write_sets (None when the
    backend reported no footprints)."""
    if not write_sets:
        return ()
    return tuple(sorted(
        (name, tuple((int(a), int(b)) for a, b in intervals))
        for name, intervals in write_sets.items()))


# ---------------------------------------------------------------------------
# Per-loop controller
# ---------------------------------------------------------------------------

class LoopController:
    """Owns one counted loop's phases, clusters, and skip decision."""

    def __init__(self, sampler: "PhaseSampler", label: str,
                 counted: CountedLoop, bound_fn: Callable):
        self.sampler = sampler
        self.config = sampler.config
        self.label = label
        self.counted = counted
        self.bound_fn = bound_fn
        self.table = GroupTable(self.config.tolerance)
        self.run_gid = -1
        self.run_len = 0
        self.entry_measured = 0
        self.measured = 0
        self.skipped = 0
        self._open: Optional[OpenPhase] = None

    # -- phase lifecycle ----------------------------------------------------
    def enter(self) -> None:
        """Loop (re-)entry: cluster history persists, but ``warmup``
        iterations must be re-measured before this entry may skip."""
        self.entry_measured = 0

    def open_phase(self) -> None:
        device = self.sampler.device
        phase = OpenPhase(device.bytes_h2d, device.bytes_d2h)
        self._open = phase
        self.sampler._stack.append(phase)

    def finish_phase(self) -> None:
        phase = self._open
        if phase is None:
            return
        self._open = None
        stack = self.sampler._stack
        if stack and stack[-1] is phase:
            stack.pop()
        else:
            stack.remove(phase)
        device = self.sampler.device
        fp = phase.seal(device.bytes_h2d, device.bytes_d2h)
        gid = self.table.assign(fp)
        if gid == self.run_gid:
            self.run_len += 1
        else:
            self.run_gid = gid
            self.run_len = 1
        self.entry_measured += 1
        self.measured += 1

    def exit(self) -> None:
        """Loop exit (any path — normal, break, exception): close a phase
        left open mid-iteration."""
        self.finish_phase()

    # -- skip decision ------------------------------------------------------
    def should_skip(self) -> bool:
        return (self.entry_measured >= self.config.warmup
                and self.run_len >= self.config.stability)

    def remaining(self, env) -> Optional[int]:
        """Trips left from the loop variable's current value, or None when
        the header's values are not plain ints right now."""
        counted = self.counted
        try:
            v0 = env.load(counted.var)
            bound = self.bound_fn(env)
        except Exception:
            return None
        if not (_is_int(v0) and _is_int(bound)):
            return None
        return remaining_trips(v0, bound, counted.delta, counted.op)

    def fast_forward(self, env, n_rem: int) -> None:
        counted = self.counted
        env.store(counted.var, env.load(counted.var) + counted.delta * n_rem)

    # -- extrapolation ------------------------------------------------------
    def charge_skip(self, n_rem: int) -> None:
        """Charge ``n_rem`` iterations by bulk-replaying the current run's
        representative phase: one ``spend`` per category, counters and
        device byte odometers multiplied, histogram values replayed (up to
        a budget).  Enclosing open phases absorb all of it through the
        ordinary profiler tap, plus a synthetic ``("S", ...)`` event."""
        group = self.table.groups[self.run_gid]
        if group.spread > self.config.tolerance:
            raise ExtrapolationBoundError(
                f"loop {self.label}: representative group {group.gid} spread "
                f"{group.spread:.3e} exceeds tolerance "
                f"{self.config.tolerance}",
                quantity=f"{self.label}.spread",
                expected=self.config.tolerance, actual=group.spread,
                bound=self.config.tolerance)
        rep = group.rep
        sampler = self.sampler
        profiler = sampler.profiler
        with sampler.tracer.span(
                "sample.extrapolate", category="sample", loop=self.label,
                group=group.gid, skipped=n_rem, exact=group.exact) as sp:
            seconds = 0.0
            for category, total in rep.charge_sums():
                amount = total * n_rem
                seconds += amount
                profiler.spend(category, amount)
            for name, delta in rep.count_sums():
                profiler.count(name, delta * n_rem)
            if rep.observes and n_rem * len(rep.observes) <= _MAX_REPLAY_OBSERVES:
                for _ in range(n_rem):
                    for name, value in rep.observes:
                        profiler.observe(name, value)
            device = sampler.device
            device.bytes_h2d += rep.dev_h2d * n_rem
            device.bytes_d2h += rep.dev_d2h * n_rem
            launches = rep.launches()
            profiler.count(CTR_SAMPLE_SKIPPED_ITERATIONS, n_rem)
            if launches:
                profiler.count(CTR_SAMPLE_SKIPPED_LAUNCHES, launches * n_rem)
            sp.set_attr("seconds", seconds)
        group.skipped += n_rem
        self.skipped += n_rem
        sampler.extrapolated_seconds += seconds
        event = ("S", self.label, group.gid, n_rem)
        for phase in sampler._stack:
            phase.events.append(event)

    # -- reporting ----------------------------------------------------------
    def summary(self) -> dict:
        config = self.config
        groups = []
        points: List[Tuple[float, ...]] = []
        for group in self.table.groups:
            points.extend(group.features)
            groups.append({
                "id": group.gid,
                "members": group.members,
                "skipped": group.skipped,
                "exact": group.exact,
                "spread": group.spread,
                "error_bound": group.declared_bound(config.tolerance),
                "seconds_per_iteration": group.rep.seconds(),
                "launches_per_iteration": group.rep.launches(),
                "bytes_per_iteration": group.rep.dev_h2d + group.rep.dev_d2h,
            })
        centroids, _ = kmeans(points, config.max_clusters)
        return {
            "loop": self.label,
            "measured": self.measured,
            "skipped": self.skipped,
            "groups": groups,
            "kmeans_clusters": len(centroids),
        }


# ---------------------------------------------------------------------------
# The run-wide sampler
# ---------------------------------------------------------------------------

class PhaseSampler:
    """One per sampled run; the profiler tap and runtime event sink."""

    def __init__(self, config: SamplingConfig, runtime):
        self.config = config
        self.runtime = runtime
        self.profiler = runtime.profiler
        self.device = runtime.device
        self.tracer = runtime.tracer
        self._stack: List[OpenPhase] = []
        self._controllers: Dict[int, Tuple[object, Optional[LoopController]]] = {}
        self.extrapolated_seconds = 0.0
        runtime.sampler = self
        self.profiler.tap = self
        # Launch write footprints feed the fingerprint's write-set
        # signature; collecting them never changes modeled time.
        self.device.collect_write_sets = True

    # -- profiler tap --------------------------------------------------------
    def on_spend(self, category: str, seconds: float) -> None:
        for phase in self._stack:
            phase.charges.append((category, seconds))

    def on_count(self, name: str, delta: int) -> None:
        for phase in self._stack:
            phase.counts.append((name, delta))

    def on_observe(self, name: str, value) -> None:
        for phase in self._stack:
            phase.observes.append((name, value))

    # -- runtime hooks -------------------------------------------------------
    def on_launch(self, spec, result) -> None:
        if not self._stack:
            return
        event = ("L", spec.name, result.backend, _write_sig(result.write_sets))
        for phase in self._stack:
            phase.events.append(event)

    def on_transfer(self, var: str, site: str, direction: str,
                    nbytes: int) -> None:
        if not self._stack:
            return
        event = ("T", var, site, direction)
        for phase in self._stack:
            phase.events.append(event)

    # -- interpreter surface -------------------------------------------------
    def controller_for(self, stmt, loop_var: Optional[str],
                       compile_expr: Callable) -> Optional[LoopController]:
        """The (cached) controller for a ``for`` statement; None when the
        loop is not counted.  ``compile_expr`` compiles the bound expression
        once (the interpreter's own expression compiler)."""
        key = id(stmt)
        entry = self._controllers.get(key)
        if entry is not None:
            return entry[1]
        counted = analyze_counted_loop(stmt, loop_var)
        controller = None
        if counted is not None:
            bound_fn = compile_expr(counted.bound)
            label = f"{counted.var}@L{getattr(stmt, 'line', 0)}"
            controller = LoopController(self, label, counted, bound_fn)
        self._controllers[key] = (stmt, controller)
        return controller

    # -- totals / report -----------------------------------------------------
    @property
    def skipped_iterations(self) -> int:
        return sum(ctl.skipped for _, ctl in self._controllers.values()
                   if ctl is not None)

    @property
    def skipped_launches(self) -> int:
        return int(self.profiler.counters.get(CTR_SAMPLE_SKIPPED_LAUNCHES, 0))

    def error_bound(self) -> float:
        """Declared bound for the whole run's modeled time / transfer bytes.

        Per cluster the bound is exact (0.0) for signature-identical groups
        and ``tolerance`` for near groups.  One cross-cluster effect has to
        be priced in at run level: skipping a *pure host* loop (no launches,
        no transfers in its representative) elides host writes, so later
        measured phases run on drifted data and their data-dependent charges
        can wander — bounded by ``tolerance``, not zero.  A run whose only
        skips are kernel-bearing exact clusters (JACOBI) stays declared
        exact."""
        bound = 0.0
        tolerance = self.config.tolerance
        for _, controller in self._controllers.values():
            if controller is None:
                continue
            for group in controller.table.groups:
                if not group.skipped:
                    continue
                declared = group.declared_bound(tolerance)
                if declared == 0.0 and not any(
                        ev and ev[0] in ("L", "T")
                        for ev in group.rep.events):
                    declared = tolerance
                bound = max(bound, declared)
        return bound

    def report(self) -> dict:
        """Cluster summary + extrapolation accounting (JSON-ready)."""
        with self.tracer.span("sample.cluster", category="sample") as sp:
            loops = []
            for _, controller in self._controllers.values():
                if controller is None or controller.measured == 0:
                    continue
                loops.append(controller.summary())
            sp.set_attr("loops", len(loops))
            sp.set_attr("skipped_iterations", self.skipped_iterations)
        return {
            "config": {
                "warmup": self.config.warmup,
                "stability": self.config.stability,
                "tolerance": self.config.tolerance,
                "max_clusters": self.config.max_clusters,
            },
            "loops": loops,
            "skipped_iterations": self.skipped_iterations,
            "skipped_launches": self.skipped_launches,
            "extrapolated_seconds": self.extrapolated_seconds,
            "modeled_seconds": self.profiler.total(),
            "error_bound": self.error_bound(),
        }
