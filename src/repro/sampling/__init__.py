"""Phase-sampled simulation (LoopPoint/SimPoint-style, §perf).

Iterative benchmarks spend their wall-clock re-executing near-identical
iterations.  This package fingerprints each host-loop iteration (a *phase*)
from the launch/transfer stream and the profiler's atomic charges, clusters
phases (greedy signature grouping, k-means for the report), executes one
representative per cluster, and extrapolates the rest — unlocking ``large``
benchmark sizes at a fraction of full-execution cost while keeping modeled
time, transfer bytes, and coherence findings within declared error bounds
(exact for signature-identical clusters).

Off by default: behavior is bit-identical to an unsampled build unless
``ToolchainContext.sampling`` carries a :class:`SamplingConfig`.
"""

from repro.errors import (  # noqa: F401  (re-exported typed surface)
    ExtrapolationBoundError,
    SamplingConflictError,
    SamplingError,
)
from repro.sampling.cluster import GroupTable, PhaseGroup, kmeans
from repro.sampling.config import SamplingConfig
from repro.sampling.extrapolate import (
    EXACT_REL_TOL,
    check_bound,
    relative_error,
)
from repro.sampling.fingerprint import (
    OpenPhase,
    PhaseFingerprint,
    relative_distance,
)
from repro.sampling.sampler import (
    CountedLoop,
    LoopController,
    PhaseSampler,
    analyze_counted_loop,
    remaining_trips,
)

__all__ = [
    "SamplingConfig",
    "PhaseSampler",
    "LoopController",
    "CountedLoop",
    "analyze_counted_loop",
    "remaining_trips",
    "GroupTable",
    "PhaseGroup",
    "kmeans",
    "PhaseFingerprint",
    "OpenPhase",
    "relative_distance",
    "check_bound",
    "relative_error",
    "EXACT_REL_TOL",
    "SamplingError",
    "SamplingConflictError",
    "ExtrapolationBoundError",
]
