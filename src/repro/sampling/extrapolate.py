"""Extrapolation arithmetic and its validation surface.

The sampler charges skipped iterations by bulk-replaying the representative
phase's per-category charge sums (see ``PhaseSampler``); the helpers here
are the *checking* side: relative error, and :func:`check_bound`, which
turns a bound violation into a typed :class:`ExtrapolationBoundError`
instead of a silently-bad number.  The sampled-vs-full equivalence gate and
the property tests both go through ``check_bound``.
"""

from __future__ import annotations

from repro.errors import ExtrapolationBoundError

__all__ = ["relative_error", "check_bound", "EXACT_REL_TOL",
           "ExtrapolationBoundError"]

# Signature-exact clusters extrapolate the *same float charges* the full run
# would make — but in bulk (one multiply per category) rather than one add
# per iteration, and with CPU flushes batched at iteration boundaries rather
# than every 4096 ticks.  Associativity slack between the two summation
# orders is a handful of ulps; 1e-9 relative is "exact" for this purpose
# while still catching any real accounting bug by ~6 orders of magnitude.
EXACT_REL_TOL = 1e-9


def relative_error(expected: float, actual: float) -> float:
    """|expected - actual| relative to the larger magnitude (0.0 when both
    are zero)."""
    denom = max(abs(expected), abs(actual))
    if denom == 0.0:
        return 0.0
    return abs(expected - actual) / denom


def check_bound(quantity: str, expected: float, actual: float,
                bound: float) -> float:
    """Validate an extrapolated ``actual`` against a full-run ``expected``.

    ``bound`` is the declared per-cluster error bound; ``0.0`` (an exact
    cluster) is checked at :data:`EXACT_REL_TOL` to absorb float summation
    order.  Returns the observed relative error; raises
    :class:`ExtrapolationBoundError` when it exceeds the bound.
    """
    effective = max(bound, EXACT_REL_TOL)
    err = relative_error(expected, actual)
    if err > effective:
        raise ExtrapolationBoundError(
            f"extrapolated {quantity} off by {err:.3e} relative "
            f"(expected {expected!r}, got {actual!r}, declared bound "
            f"{bound!r})",
            quantity=quantity, expected=expected, actual=actual, bound=bound)
    return err
