"""Phase clustering: greedy signature grouping plus a small k-means.

The hot path is the greedy :class:`GroupTable` — SimPoint-style clustering
reduced to the structure this simulator actually produces.  Exact-equality
hashing catches the dominant case (iterative solvers repeat bit-identical
iterations); a structural index plus a relative feature tolerance catches
the near-identical case (branch-count jitter).  The dependency-free k-means
here runs only on the report side, merging measured phases of one loop into
at most ``max_clusters`` summary centroids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sampling.fingerprint import PhaseFingerprint, relative_distance

__all__ = ["PhaseGroup", "GroupTable", "kmeans"]


@dataclass
class PhaseGroup:
    """One cluster of measured phases sharing a representative."""

    gid: int
    rep: PhaseFingerprint
    members: int = 1
    exact: bool = True          # every member fingerprint-identical to rep
    spread: float = 0.0         # worst observed feature distance from rep
    skipped: int = 0            # iterations extrapolated from this group
    features: List[Tuple[float, ...]] = field(default_factory=list)

    def declared_bound(self, tolerance: float) -> float:
        """Error bound this group's extrapolations are declared to honor:
        exact clusters extrapolate exactly, near clusters within the
        membership tolerance."""
        return 0.0 if self.exact else tolerance


class GroupTable:
    """Greedy online grouping of a single loop's phases."""

    def __init__(self, tolerance: float):
        self.tolerance = tolerance
        self.groups: List[PhaseGroup] = []
        self._exact: Dict[PhaseFingerprint, int] = {}
        self._by_struct: Dict[Tuple[tuple, ...], List[int]] = {}

    def assign(self, fp: PhaseFingerprint) -> int:
        """Place ``fp`` in a group (exact match, then near match within the
        structural family, else a new group) and return the group id."""
        gid = self._exact.get(fp)
        if gid is not None:
            grp = self.groups[gid]
            grp.members += 1
            grp.features.append(fp.features())
            return gid
        feats = fp.features()
        for gid in self._by_struct.get(fp.events, ()):
            grp = self.groups[gid]
            dist = relative_distance(feats, grp.rep.features())
            if dist <= self.tolerance:
                grp.members += 1
                grp.exact = False
                grp.spread = max(grp.spread, dist)
                grp.features.append(feats)
                self._exact[fp] = gid
                return gid
        gid = len(self.groups)
        grp = PhaseGroup(gid=gid, rep=fp)
        grp.features.append(feats)
        self.groups.append(grp)
        self._exact[fp] = gid
        self._by_struct.setdefault(fp.events, []).append(gid)
        return gid


def kmeans(points: List[Tuple[float, ...]], k: int,
           iterations: int = 20) -> Tuple[List[Tuple[float, ...]], List[int]]:
    """Deterministic, dependency-free k-means.

    Initial centroids are picked evenly from the points *sorted* (no RNG, so
    two runs over the same phases report the same clusters).  Returns
    ``(centroids, assignment)`` with ``assignment[i]`` the centroid index of
    ``points[i]``.  Empty clusters collapse — fewer than ``k`` centroids can
    come back.
    """
    if not points:
        return [], []
    k = max(1, min(k, len(points)))
    ordered = sorted(set(points))
    k = min(k, len(ordered))
    step = len(ordered) / k
    centroids = [ordered[int(i * step)] for i in range(k)]

    assignment = [0] * len(points)
    for _ in range(iterations):
        changed = False
        for i, p in enumerate(points):
            best, best_d = 0, None
            for ci, c in enumerate(centroids):
                d = sum((x - y) ** 2 for x, y in zip(p, c))
                if best_d is None or d < best_d:
                    best, best_d = ci, d
            if assignment[i] != best:
                assignment[i] = best
                changed = True
        sums: Dict[int, List[float]] = {}
        counts: Dict[int, int] = {}
        for i, p in enumerate(points):
            ci = assignment[i]
            acc = sums.setdefault(ci, [0.0] * len(p))
            for j, x in enumerate(p):
                acc[j] += x
            counts[ci] = counts.get(ci, 0) + 1
        new_centroids: List[Tuple[float, ...]] = []
        remap: Dict[int, int] = {}
        for ci in range(len(centroids)):
            if ci in counts:
                remap[ci] = len(new_centroids)
                new_centroids.append(
                    tuple(s / counts[ci] for s in sums[ci]))
        assignment = [remap[ci] for ci in assignment]
        centroids = new_centroids
        if not changed:
            break
    return centroids, assignment
