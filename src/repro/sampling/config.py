"""Configuration for phase-sampled execution.

A :class:`SamplingConfig` hangs off ``ToolchainContext.sampling`` (``None``
by default — sampling off, behavior bit-identical to an unsampled build).
It is a frozen dataclass so it hashes, pickles across the experiment
scheduler's process pool, and cannot drift mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SamplingConfig"]


@dataclass(frozen=True)
class SamplingConfig:
    """Knobs for the phase sampler.

    ``warmup``
        Measured iterations required per loop *entry* before that entry may
        skip (re-entered inner loops keep their cluster history but still
        re-measure this many iterations as regime-change insurance).
    ``stability``
        Consecutive same-cluster phases required before the run is declared
        steady and the remaining trips are extrapolated.
    ``tolerance``
        Relative per-feature distance under which two structurally-identical
        phases join the same (near) cluster; doubles as the declared error
        bound for extrapolations from near clusters.  Signature-exact
        clusters declare a bound of ``0.0``.
    ``max_clusters``
        Cap on ``k`` for the report-side k-means summary.

    Sampling is a *modeling* mode: host loop bodies inside skipped
    iterations do not execute, so program outputs are not faithful — only
    modeled time, transfer bytes, counters, and coherence findings are.
    It is unsound combined with chaos fault injection (the interpreter
    raises :class:`repro.errors.SamplingConflictError`) and meaningless
    under the kernel verifier, which compares program outputs.
    """

    warmup: int = 1
    stability: int = 2
    tolerance: float = 0.05
    max_clusters: int = 8

    def __post_init__(self):
        if self.warmup < 1:
            raise ValueError("warmup must be >= 1")
        if self.stability < 1:
            raise ValueError("stability must be >= 1")
        if not (0.0 < self.tolerance < 1.0):
            raise ValueError("tolerance must be in (0, 1)")
        if self.max_clusters < 1:
            raise ValueError("max_clusters must be >= 1")
