"""Algorithm 2 of the paper: Last-Write analysis.

Backward all-path dataflow, per device side:

    OUT_Write(EXIT) = ∅
    OUT_Write(n) = ⋂ IN_Write(s)
    IN_Write(n)  = OUT_Write(n) + DEF(n) − KILL(n)
    LAST_Write(n) = IN_Write(n) − OUT_Write(n)

v ∈ LAST_Write(n) means n writes v and, on some following path, no later
write of v occurs before the program exits or before the next kernel call
(KILL: any node where the *other* side touches v acts as a barrier, so the
write immediately preceding a kernel is "last" with respect to that kernel).
The check-insertion pass places ``reset_status`` calls at exactly these
sites (§III-B).
"""

from __future__ import annotations

from typing import Set

from repro.ir.cfg import CFG, CFGNode
from repro.ir.dataflow import BACKWARD, DataflowProblem, DataflowResult, INTERSECT, solve
from repro.ir.liveness import all_variables


class LastWriteResult:
    def __init__(self, side: str, result: DataflowResult):
        self.side = side
        self._result = result

    def in_of(self, node: CFGNode) -> Set[str]:
        return set(self._result.in_of(node))

    def out_of(self, node: CFGNode) -> Set[str]:
        return set(self._result.out_of(node))

    def last_writes(self, node: CFGNode) -> Set[str]:
        """LAST_Write(n): variables whose write at n is a last write."""
        return self.in_of(node) - self.out_of(node)

    def is_last_write(self, node: CFGNode, var: str) -> bool:
        return var in self.last_writes(node)


def analyze_lastwrite(cfg: CFG, side: str, universe: Set[str] = None) -> LastWriteResult:
    other = "gpu" if side == "cpu" else "cpu"
    if universe is None:
        universe = all_variables(cfg)
    uni = frozenset(universe)

    def transfer(node: CFGNode, out_val):
        kill = frozenset(node.uses(other) | node.defs(other))
        return (out_val | frozenset(node.defs(side) & uni)) - kill

    problem = DataflowProblem(
        direction=BACKWARD,
        meet=INTERSECT,
        transfer=transfer,
        boundary=frozenset(),
        universe=uni,
        name=f"last-write[{side}]",
    )
    return LastWriteResult(side, solve(cfg, problem))
