"""Intermediate representation and dataflow analyses.

The host function is lowered to a statement-level control-flow graph in which
each compute region collapses to a single *kernel node* carrying the region's
aggregate GPU access sets.  The paper's analyses run over this CFG:

* :mod:`repro.ir.deadness`   — Algorithm 1 (may-dead / may-live / must-dead)
* :mod:`repro.ir.lastwrite`  — Algorithm 2 (last-write)
* :mod:`repro.ir.firstaccess` — first-read / first-write placement analysis
"""

from repro.ir.cfg import CFG, CFGNode, build_cfg
from repro.ir.dataflow import DataflowProblem, solve

__all__ = ["CFG", "CFGNode", "build_cfg", "DataflowProblem", "solve"]
