"""Statement-level control-flow graph.

Each :class:`CFGNode` wraps one simple statement, one branch condition, one
compute region (an entire ``kernels``/``parallel`` statement collapses into a
single *kernel node*), or one ``update``/``wait`` carrier.  Loops are
desugared (``for`` becomes init -> cond -> body -> step -> cond), so every
analysis sees plain edges.

Kernel nodes are opaque to the host-side analyses except for their aggregate
access sets, which :mod:`repro.ir.defuse` fills in.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.acc.regions import RegionTable
from repro.errors import CompileError
from repro.lang import ast

# Node kinds.
ENTRY = "entry"
EXIT = "exit"
STMT = "stmt"
BRANCH = "branch"
KERNEL = "kernel"
UPDATE = "update"
WAIT = "wait"
JOIN = "join"
DATA_ENTER = "data_enter"
DATA_EXIT = "data_exit"


class CFGNode:
    """One CFG vertex."""

    __slots__ = (
        "id",
        "kind",
        "stmt",
        "expr",
        "region",
        "update_point",
        "data_directive",
        "succs",
        "preds",
        "cpu_use",
        "cpu_def",
        "gpu_use",
        "gpu_def",
        "cpu_def_full",
        "gpu_def_full",
        "xfer_to_cpu",
        "xfer_to_gpu",
        "label",
    )

    def __init__(self, id: int, kind: str, stmt=None, expr=None, label: str = ""):
        self.id = id
        self.kind = kind
        self.stmt = stmt
        self.expr = expr
        self.region = None        # ComputeRegion for KERNEL nodes
        self.update_point = None  # UpdatePoint for UPDATE nodes
        self.data_directive = None  # data Directive for DATA_ENTER/EXIT nodes
        self.succs: List["CFGNode"] = []
        self.preds: List["CFGNode"] = []
        # Access sets (variable names), filled by repro.ir.defuse.annotate.
        self.cpu_use: Set[str] = set()
        self.cpu_def: Set[str] = set()
        self.gpu_use: Set[str] = set()
        self.gpu_def: Set[str] = set()
        # Defs that fully overwrite their target (scalar stores); kernel
        # writes are conservatively partial.
        self.cpu_def_full: Set[str] = set()
        self.gpu_def_full: Set[str] = set()
        # Transfer sets of UPDATE nodes.  Kept separate from the access sets
        # so every analysis is *transfer-transparent*: transfers are what the
        # verification optimizes, not program accesses (§III-B).
        self.xfer_to_cpu: Set[str] = set()
        self.xfer_to_gpu: Set[str] = set()
        self.label = label

    @property
    def is_kernel(self) -> bool:
        return self.kind == KERNEL

    def uses(self, side: str) -> Set[str]:
        """Access set accessor: side is 'cpu' or 'gpu'."""
        return self.cpu_use if side == "cpu" else self.gpu_use

    def defs(self, side: str) -> Set[str]:
        return self.cpu_def if side == "cpu" else self.gpu_def

    def full_defs(self, side: str) -> Set[str]:
        return self.cpu_def_full if side == "cpu" else self.gpu_def_full

    def xfers_to(self, side: str) -> Set[str]:
        """Variables a transfer at this node fully overwrites on ``side``."""
        return self.xfer_to_cpu if side == "cpu" else self.xfer_to_gpu

    def __repr__(self):
        tag = self.label or (type(self.stmt).__name__ if self.stmt is not None else "")
        return f"<{self.kind}#{self.id} {tag}>"


class CFG:
    """Control-flow graph of one function."""

    def __init__(self, func: ast.FuncDef):
        self.func = func
        self.nodes: List[CFGNode] = []
        self.entry = self.new_node(ENTRY, label="entry")
        self.exit = self.new_node(EXIT, label="exit")

    def new_node(self, kind: str, stmt=None, expr=None, label: str = "") -> CFGNode:
        node = CFGNode(len(self.nodes), kind, stmt, expr, label)
        self.nodes.append(node)
        return node

    @staticmethod
    def add_edge(src: CFGNode, dst: CFGNode) -> None:
        if dst not in src.succs:
            src.succs.append(dst)
            dst.preds.append(src)

    # -- orderings ----------------------------------------------------------
    def postorder(self) -> List[CFGNode]:
        """Postorder over nodes reachable from entry."""
        seen: Set[int] = set()
        order: List[CFGNode] = []

        def dfs(node: CFGNode) -> None:
            seen.add(node.id)
            for succ in node.succs:
                if succ.id not in seen:
                    dfs(succ)
            order.append(node)

        dfs(self.entry)
        return order

    def rpo(self) -> List[CFGNode]:
        """Reverse postorder (good iteration order for forward problems)."""
        return list(reversed(self.postorder()))

    def kernel_nodes(self) -> List[CFGNode]:
        return [n for n in self.nodes if n.kind == KERNEL]

    def node_for_stmt(self, stmt: ast.Stmt) -> Optional[CFGNode]:
        for node in self.nodes:
            if node.stmt is stmt:
                return node
        return None

    def validate(self) -> None:
        """Internal consistency checks (used by tests)."""
        for node in self.nodes:
            for succ in node.succs:
                if node not in succ.preds:
                    raise CompileError(f"edge {node}->{succ} missing back-pointer")
            for pred in node.preds:
                if node not in pred.succs:
                    raise CompileError(f"edge {pred}->{node} missing forward-pointer")


class _Builder:
    """Recursive CFG construction with break/continue stacks."""

    def __init__(self, cfg: CFG, regions: Optional[RegionTable]):
        self.cfg = cfg
        self.regions = regions
        self.break_targets: List[CFGNode] = []
        self.continue_targets: List[CFGNode] = []

    # Returns the set of "dangling" nodes whose control falls through to
    # whatever comes next (empty when all paths returned/broke).
    def build_stmt(self, stmt: ast.Stmt, preds: List[CFGNode]) -> List[CFGNode]:
        data_directives = [
            p for p in getattr(stmt, "pragmas", [])
            if p.namespace == "acc" and p.is_data
        ]
        if data_directives and self._region_for(stmt) is None:
            # Data-region boundaries become explicit nodes: their transfers
            # (copyin at entry, copyout at exit) participate in the
            # transfer-aware dead analyses.
            current = preds
            exits: List[CFGNode] = []
            for directive in data_directives:
                enter = self.cfg.new_node(DATA_ENTER, stmt=stmt, label="data.enter")
                enter.data_directive = directive
                self._link(current, enter)
                current = [enter]
                exit_node = self.cfg.new_node(DATA_EXIT, stmt=stmt, label="data.exit")
                exit_node.data_directive = directive
                exits.append(exit_node)
            inner_out = self._build_stmt_inner(stmt, current)
            for exit_node in reversed(exits):
                self._link(inner_out, exit_node)
                inner_out = [exit_node]
            return inner_out
        return self._build_stmt_inner(stmt, preds)

    def _build_stmt_inner(self, stmt: ast.Stmt, preds: List[CFGNode]) -> List[CFGNode]:
        region = self._region_for(stmt)
        if region is not None:
            node = self.cfg.new_node(KERNEL, stmt=stmt, label=region.name)
            node.region = region
            self._link(preds, node)
            return [node]
        update = self._update_for(stmt)
        if update is not None:
            node = self.cfg.new_node(UPDATE, stmt=stmt, label=update.name)
            node.update_point = update
            self._link(preds, node)
            return [node]
        if self._is_wait(stmt):
            node = self.cfg.new_node(WAIT, stmt=stmt, label="wait")
            self._link(preds, node)
            return [node]
        if isinstance(stmt, ast.Block):
            current = preds
            for inner in stmt.body:
                if not current:
                    break  # unreachable code after return/break
                current = self.build_stmt(inner, current)
            return current
        if isinstance(stmt, (ast.VarDecl, ast.Assign, ast.ExprStmt)):
            node = self.cfg.new_node(STMT, stmt=stmt)
            self._link(preds, node)
            return [node]
        if isinstance(stmt, ast.If):
            cond = self.cfg.new_node(BRANCH, stmt=stmt, expr=stmt.cond, label="if")
            self._link(preds, cond)
            then_out = self.build_stmt(stmt.then, [cond])
            if stmt.orelse is not None:
                else_out = self.build_stmt(stmt.orelse, [cond])
            else:
                else_out = [cond]
            return then_out + else_out
        if isinstance(stmt, ast.For):
            return self._build_for(stmt, preds)
        if isinstance(stmt, ast.While):
            return self._build_while(stmt, preds)
        if isinstance(stmt, ast.Return):
            node = self.cfg.new_node(STMT, stmt=stmt, label="return")
            self._link(preds, node)
            self.cfg.add_edge(node, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Break):
            node = self.cfg.new_node(STMT, stmt=stmt, label="break")
            self._link(preds, node)
            if not self._pending_breaks:
                raise CompileError("break outside loop")
            self._pending_breaks[-1].append(node)
            return []
        if isinstance(stmt, ast.Continue):
            node = self.cfg.new_node(STMT, stmt=stmt, label="continue")
            self._link(preds, node)
            if not self.continue_targets:
                raise CompileError("continue outside loop")
            self.cfg.add_edge(node, self.continue_targets[-1])
            return []
        raise CompileError(f"cannot lower statement {type(stmt).__name__}")

    _pending_breaks: List[List[CFGNode]]

    def _build_for(self, stmt: ast.For, preds: List[CFGNode]) -> List[CFGNode]:
        current = preds
        if stmt.init is not None:
            init = self.cfg.new_node(STMT, stmt=stmt.init, label="for.init")
            self._link(current, init)
            current = [init]
        cond = self.cfg.new_node(BRANCH, stmt=stmt, expr=stmt.cond, label="for.cond")
        self._link(current, cond)
        step = self.cfg.new_node(
            STMT, stmt=stmt.step, label="for.step"
        ) if stmt.step is not None else cond
        self.continue_targets.append(step)
        self._pending_breaks.append([])
        body_out = self.build_stmt(stmt.body, [cond])
        self.continue_targets.pop()
        breaks = self._pending_breaks.pop()
        if stmt.step is not None:
            self._link(body_out, step)
            self.cfg.add_edge(step, cond)
        else:
            self._link(body_out, cond)
        outs = breaks
        if stmt.cond is not None:
            outs = outs + [cond]
        return outs

    def _build_while(self, stmt: ast.While, preds: List[CFGNode]) -> List[CFGNode]:
        cond = self.cfg.new_node(BRANCH, stmt=stmt, expr=stmt.cond, label="while.cond")
        self._link(preds, cond)
        self.continue_targets.append(cond)
        self._pending_breaks.append([])
        body_out = self.build_stmt(stmt.body, [cond])
        self.continue_targets.pop()
        breaks = self._pending_breaks.pop()
        self._link(body_out, cond)
        return breaks + [cond]

    def _link(self, preds: Iterable[CFGNode], node: CFGNode) -> None:
        for pred in preds:
            self.cfg.add_edge(pred, node)

    def _region_for(self, stmt: ast.Stmt):
        if self.regions is None:
            return None
        for region in self.regions.compute:
            if region.stmt is stmt:
                return region
        return None

    def _update_for(self, stmt: ast.Stmt):
        if self.regions is None:
            return None
        for point in self.regions.updates:
            if point.stmt is stmt:
                return point
        return None

    @staticmethod
    def _is_wait(stmt: ast.Stmt) -> bool:
        return any(
            p.namespace == "acc" and p.name == "wait" for p in getattr(stmt, "pragmas", [])
        )


def build_cfg(func: ast.FuncDef, regions: Optional[RegionTable] = None) -> CFG:
    """Build the CFG of a function; compute regions become kernel nodes."""
    cfg = CFG(func)
    builder = _Builder(cfg, regions)
    builder._pending_breaks = []
    outs = builder.build_stmt(func.body, [cfg.entry])
    for node in outs:
        cfg.add_edge(node, cfg.exit)
    if not cfg.exit.preds:
        # e.g. `while (1) {}` with no break: keep exit reachable for
        # backward analyses by treating the infinite loop as exiting.
        cfg.add_edge(cfg.entry, cfg.exit)
    return cfg


def statement_nodes(cfg: CFG) -> Dict[int, CFGNode]:
    """Map AST statement id -> node, for passes that look nodes up."""
    return {id(n.stmt): n for n in cfg.nodes if n.stmt is not None}
