"""Classic backward liveness (union meet).

Used as a sanity baseline for the more exotic Algorithm-1 analysis (a
must-dead variable can never be live) and by the privatization pass to decide
whether a scalar's value escapes a loop iteration.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.ir.cfg import CFG, CFGNode
from repro.ir.dataflow import BACKWARD, DataflowProblem, DataflowResult, UNION, solve


def analyze_liveness(cfg: CFG, side: str = "cpu") -> DataflowResult:
    """live-in(n) = use(n) ∪ (live-out(n) − def(n)); live-out = ∪ live-in(s).

    ``side`` selects which access sets participate ('cpu' or 'gpu'); the
    other side's writes kill (a remote write makes the local value garbage).
    """
    other = "gpu" if side == "cpu" else "cpu"

    def transfer(node: CFGNode, out_val):
        return frozenset(node.uses(side)) | (
            out_val - frozenset(node.defs(side)) - frozenset(node.defs(other))
        )

    problem = DataflowProblem(
        direction=BACKWARD,
        meet=UNION,
        transfer=transfer,
        boundary=frozenset(),
        name=f"liveness[{side}]",
    )
    return solve(cfg, problem)


def live_in(result: DataflowResult, node: CFGNode) -> Set[str]:
    return set(result.in_of(node))


def all_variables(cfg: CFG, side: Optional[str] = None) -> Set[str]:
    """Every variable any node accesses (optionally restricted to one side)."""
    out: Set[str] = set()
    for node in cfg.nodes:
        if side in (None, "cpu"):
            out |= node.cpu_use | node.cpu_def
        if side in (None, "gpu"):
            out |= node.gpu_use | node.gpu_def
    return out
