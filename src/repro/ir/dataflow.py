"""Generic iterative dataflow solver.

Problems are monotone set frameworks over the CFG: each node has a transfer
function and values meet (union or intersection) over predecessor/successor
edges.  The solver iterates a worklist to the (unique, by Tarski) least fixed
point; set transfer functions of the GEN/KILL form guarantee termination.

Intersection problems need a "universe" for initialization: unvisited OUT
values start at the universe (top) so the first meet does not artificially
drain the sets.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, Iterable, Optional

from repro.ir.cfg import CFG, CFGNode

SetVal = FrozenSet[str]
Transfer = Callable[[CFGNode, SetVal], SetVal]

UNION = "union"
INTERSECT = "intersect"
FORWARD = "forward"
BACKWARD = "backward"


class DataflowProblem:
    """Description of one dataflow problem.

    ``transfer(node, in_val) -> out_val`` must be monotone in ``in_val``.
    For intersection problems supply ``universe`` (top element).
    """

    def __init__(
        self,
        direction: str,
        meet: str,
        transfer: Transfer,
        boundary: SetVal = frozenset(),
        universe: Optional[Iterable[str]] = None,
        name: str = "",
    ):
        if direction not in (FORWARD, BACKWARD):
            raise ValueError(f"bad direction {direction!r}")
        if meet not in (UNION, INTERSECT):
            raise ValueError(f"bad meet {meet!r}")
        if meet == INTERSECT and universe is None:
            raise ValueError("intersection problems require a universe")
        self.direction = direction
        self.meet = meet
        self.transfer = transfer
        self.boundary = frozenset(boundary)
        self.universe = frozenset(universe) if universe is not None else None
        self.name = name


class DataflowResult:
    """IN/OUT value per node id.

    For forward problems IN is the meet over predecessors and OUT the
    transferred value; for backward problems IN is the transferred value and
    OUT the meet over successors (matching the paper's Algorithm 1/2
    notation).
    """

    def __init__(self, inp: Dict[int, SetVal], out: Dict[int, SetVal], name: str = ""):
        self._in = inp
        self._out = out
        self.name = name

    def in_of(self, node: CFGNode) -> SetVal:
        return self._in[node.id]

    def out_of(self, node: CFGNode) -> SetVal:
        return self._out[node.id]

    def __repr__(self):
        return f"DataflowResult({self.name}, {len(self._in)} nodes)"


def solve(cfg: CFG, problem: DataflowProblem) -> DataflowResult:
    """Worklist iteration to fixed point."""
    forward = problem.direction == FORWARD
    boundary_node = cfg.entry if forward else cfg.exit
    top = problem.universe if problem.meet == INTERSECT else frozenset()

    # meet_val[n]: value flowing *into* the transfer (IN for forward,
    # OUT for backward).  xfer_val[n]: value after the transfer.
    meet_val: Dict[int, SetVal] = {n.id: top for n in cfg.nodes}
    xfer_val: Dict[int, SetVal] = {n.id: top for n in cfg.nodes}
    meet_val[boundary_node.id] = problem.boundary
    xfer_val[boundary_node.id] = problem.transfer(boundary_node, problem.boundary)

    def neighbors_in(node: CFGNode):
        return node.preds if forward else node.succs

    def neighbors_out(node: CFGNode):
        return node.succs if forward else node.preds

    order = cfg.rpo() if forward else list(reversed(cfg.rpo()))
    work = deque(order)
    queued = {n.id for n in order}
    while work:
        node = work.popleft()
        queued.discard(node.id)
        sources = neighbors_in(node)
        if node is boundary_node:
            new_meet = problem.boundary
        elif not sources:
            new_meet = top if problem.meet == INTERSECT else frozenset()
        else:
            vals = [xfer_val[s.id] for s in sources]
            new_meet = frozenset.intersection(*vals) if problem.meet == INTERSECT else frozenset().union(*vals)
        new_xfer = problem.transfer(node, new_meet)
        if new_meet != meet_val[node.id] or new_xfer != xfer_val[node.id]:
            meet_val[node.id] = new_meet
            xfer_val[node.id] = new_xfer
            for dep in neighbors_out(node):
                if dep.id not in queued:
                    work.append(dep)
                    queued.add(dep.id)

    if forward:
        return DataflowResult(meet_val, xfer_val, problem.name)
    return DataflowResult(xfer_val, meet_val, problem.name)


def gen_kill_transfer(gen: Callable[[CFGNode], SetVal], kill: Callable[[CFGNode], SetVal]) -> Transfer:
    """Build the classic ``out = gen ∪ (in − kill)`` transfer function."""

    def transfer(node: CFGNode, value: SetVal) -> SetVal:
        return frozenset(gen(node)) | (value - frozenset(kill(node)))

    return transfer
