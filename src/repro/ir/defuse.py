"""DEF/USE computation at array granularity.

Reads and writes are attributed to the *root variable*: ``a[i][j] = b[k]``
defines ``a`` and uses ``b``, ``i``, ``j``, ``k``.  Writes through a
subscript are *partial* writes; the deadness analysis (Algorithm 1) treats
them as DEF all the same — which is exactly why its result is "may"-dead
(§II-C's CG example).  Pointer dereferences expand to the pointer's may-alias
set so the analyses stay conservative.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.ir.cfg import BRANCH, CFG, DATA_ENTER, DATA_EXIT, KERNEL, STMT, UPDATE
from repro.lang import ast


class AccessSets:
    """use/def sets; ``full`` is the subset of defs that fully overwrite
    their target (scalar stores) — a partial (subscripted) store leaves the
    other elements observable, which is what makes Algorithm 1 a *may*
    analysis."""

    __slots__ = ("use", "defs", "full")

    def __init__(self, use: Optional[Set[str]] = None, defs: Optional[Set[str]] = None,
                 full: Optional[Set[str]] = None):
        self.use = use if use is not None else set()
        self.defs = defs if defs is not None else set()
        self.full = full if full is not None else set()

    def __ior__(self, other: "AccessSets") -> "AccessSets":
        self.use |= other.use
        self.defs |= other.defs
        self.full |= other.full
        return self

    def __repr__(self):
        return (
            f"AccessSets(use={sorted(self.use)}, defs={sorted(self.defs)}, "
            f"full={sorted(self.full)})"
        )


def expr_uses(expr: ast.Expr, aliases: Optional[Dict[str, Set[str]]] = None) -> Set[str]:
    """All variables read by evaluating ``expr``."""
    out: Set[str] = set()
    for node in expr.walk():
        if isinstance(node, ast.Name):
            out.add(node.id)
        elif isinstance(node, ast.Unary) and node.op == "*":
            base = ast.base_name(node.operand)
            if base is not None and aliases:
                out |= aliases.get(base, set())
    return out


def lvalue_target(expr: ast.Expr, aliases: Optional[Dict[str, Set[str]]] = None) -> Tuple[Set[str], Set[str]]:
    """Split an lvalue into (defined names, names read to locate the target).

    ``a[i]`` -> ({a}, {i}); ``x`` -> ({x}, {}); ``*p`` -> (alias set of p, {p}).
    """
    if isinstance(expr, ast.Name):
        return {expr.id}, set()
    if isinstance(expr, ast.Subscript):
        reads: Set[str] = set()
        base = expr
        while isinstance(base, ast.Subscript):
            reads |= expr_uses(base.index, aliases)
            base = base.base
        defs, extra = lvalue_target(base, aliases)
        return defs, reads | extra
    if isinstance(expr, ast.Unary) and expr.op == "*":
        base = ast.base_name(expr.operand)
        reads = expr_uses(expr.operand, aliases)
        if base is not None:
            targets = aliases.get(base, {base}) if aliases else {base}
            return set(targets), reads
        return set(), reads
    # Fall back: treat as a read (no definable target found).
    return set(), expr_uses(expr, aliases)


def stmt_access(stmt: ast.Stmt, aliases: Optional[Dict[str, Set[str]]] = None) -> AccessSets:
    """DEF/USE of one *simple* statement (no control flow inside)."""
    acc = AccessSets()
    if isinstance(stmt, ast.VarDecl):
        if stmt.init is not None:
            acc.use |= expr_uses(stmt.init, aliases)
            acc.defs.add(stmt.name)
            acc.full.add(stmt.name)
    elif isinstance(stmt, ast.Assign):
        defs, reads = lvalue_target(stmt.target, aliases)
        acc.defs |= defs
        acc.use |= reads
        acc.use |= expr_uses(stmt.value, aliases)
        if isinstance(stmt.target, ast.Name) and len(defs) == 1:
            acc.full |= defs  # scalar store: full overwrite
        if stmt.op:  # compound assignment reads the target too
            acc.use |= defs
    elif isinstance(stmt, ast.ExprStmt):
        acc.use |= expr_uses(stmt.expr, aliases)
        for node in stmt.expr.walk():
            if isinstance(node, ast.Unary) and node.op in ("++", "--", "p++", "p--"):
                defs, reads = lvalue_target(node.operand, aliases)
                acc.defs |= defs
                acc.use |= reads | defs
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            acc.use |= expr_uses(stmt.value, aliases)
    return acc


def region_access(stmt: ast.Stmt, aliases: Optional[Dict[str, Set[str]]] = None) -> AccessSets:
    """Aggregate DEF/USE over a whole compute region (kernel body)."""
    acc = AccessSets()

    def rec(node: ast.Stmt) -> None:
        if isinstance(node, ast.Block):
            for inner in node.body:
                rec(inner)
        elif isinstance(node, ast.If):
            acc.use |= expr_uses(node.cond, aliases)
            rec(node.then)
            if node.orelse is not None:
                rec(node.orelse)
        elif isinstance(node, ast.For):
            if node.init is not None:
                rec(node.init)
            if node.cond is not None:
                acc.use |= expr_uses(node.cond, aliases)
            if node.step is not None:
                rec(node.step)
            rec(node.body)
        elif isinstance(node, ast.While):
            acc.use |= expr_uses(node.cond, aliases)
            rec(node.body)
        else:
            inner_acc = stmt_access(node, aliases)
            acc.use |= inner_acc.use
            acc.defs |= inner_acc.defs
            # Kernel writes are conservatively partial: whether a loop
            # covers the whole array is exactly the array-section question
            # the paper declares infeasible (§II-C).

    rec(stmt)
    return acc


def annotate(cfg: CFG, aliases: Optional[Dict[str, Set[str]]] = None) -> None:
    """Fill every node's cpu/gpu access sets.

    * plain statements / branch conditions: CPU accesses;
    * kernel nodes: the region's aggregate accesses on the GPU side, with
      region-local variables (loop indices, ``private`` clause vars and
      region-local declarations) excluded;
    * update nodes: ``host(v)`` writes v's CPU copy reading the GPU copy,
      ``device(v)`` the reverse.
    """
    for node in cfg.nodes:
        if node.kind == STMT and node.stmt is not None:
            acc = stmt_access(node.stmt, aliases)
            node.cpu_use = acc.use
            node.cpu_def = acc.defs
            node.cpu_def_full = acc.full
        elif node.kind == BRANCH and node.expr is not None:
            node.cpu_use = expr_uses(node.expr, aliases)
        elif node.kind == KERNEL:
            acc = region_access(node.stmt, aliases)
            local = _region_locals(node)
            node.gpu_use = acc.use - local
            node.gpu_def = acc.defs - local
        elif node.kind == UPDATE:
            # Transfers go in the xfer_* sets, NOT the access sets: for
            # liveness they are not reads, but as full overwrites of their
            # destination they participate in the dead analyses.
            directive = node.update_point.directive
            for clause in directive.clauses_named("host", "self"):
                for var in clause.var_names():
                    node.xfer_to_cpu.add(var)
            for clause in directive.clauses_named("device"):
                for var in clause.var_names():
                    node.xfer_to_gpu.add(var)
        elif node.kind == DATA_ENTER:
            from repro.acc.directives import CLAUSE_COPIES_IN

            for clause_name, var in node.data_directive.data_clause_vars():
                if clause_name in CLAUSE_COPIES_IN:
                    node.xfer_to_gpu.add(var)
        elif node.kind == DATA_EXIT:
            from repro.acc.directives import CLAUSE_COPIES_OUT

            for clause_name, var in node.data_directive.data_clause_vars():
                if clause_name in CLAUSE_COPIES_OUT:
                    node.xfer_to_cpu.add(var)


def _region_locals(node) -> Set[str]:
    """Variables private to a compute region: declared inside it, named by a
    ``private``/``firstprivate`` clause, or used as an annotated loop index."""
    local: Set[str] = set()
    region = node.region
    directives = [region.directive] if region is not None else []
    for sub in node.stmt.walk():
        if isinstance(sub, ast.Stmt):
            directives.extend(p for p in sub.pragmas if p.namespace == "acc")
        if isinstance(sub, ast.VarDecl):
            local.add(sub.name)
    for directive in directives:
        for clause in directive.clauses_named("private", "firstprivate"):
            local |= set(clause.var_names())
    # Loop indices of the partitioned loops (for (i = ...) under acc loop)
    # are implicitly private.
    for sub in node.stmt.walk():
        if isinstance(sub, ast.For):
            idx = _loop_index(sub)
            if idx is not None:
                local.add(idx)
    return local


def _loop_index(loop: ast.For) -> Optional[str]:
    if isinstance(loop.init, ast.VarDecl):
        return loop.init.name
    if isinstance(loop.init, ast.Assign):
        return ast.base_name(loop.init.target)
    return None
