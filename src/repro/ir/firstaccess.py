"""First-read / first-write placement analysis (§III-B optimizations).

The paper inserts ``check_read``/``check_write`` for CPU data "only for the
first-read (first-write) accesses along some path from program entry or from
each GPU kernel call".  We compute, per side, the forward *must* sets

    READ_BEFORE(n)    — v was read on *all* paths reaching n
    WRITTEN_BEFORE(n) — v was written on *all* paths reaching n

with kernel nodes acting as barriers (they reset every variable they touch,
because a kernel call may change the CPU copies' coherence states).  A read
of v at n is a *first read* iff v ∉ READ_BEFORE(n): there exists a path on
which no earlier check covered it, so a check is required; if v is on all
paths already checked, the check is provably redundant and omitted.
"""

from __future__ import annotations

from typing import FrozenSet, Set

from repro.ir.cfg import CFG, CFGNode
from repro.ir.dataflow import DataflowProblem, DataflowResult, FORWARD, INTERSECT, solve
from repro.ir.liveness import all_variables


class FirstAccessResult:
    def __init__(self, side: str, read: DataflowResult, write: DataflowResult):
        self.side = side
        self._read = read
        self._write = write

    def first_reads(self, node: CFGNode) -> Set[str]:
        """Variables whose read at n is a first read (check needed)."""
        return set(node.uses(self.side)) - set(self._read.in_of(node))

    def first_writes(self, node: CFGNode) -> Set[str]:
        return set(node.defs(self.side)) - set(self._write.in_of(node))

    def read_before(self, node: CFGNode) -> Set[str]:
        return set(self._read.in_of(node))

    def written_before(self, node: CFGNode) -> Set[str]:
        return set(self._write.in_of(node))


def _barrier_vars(node: CFGNode, side: str) -> FrozenSet[str]:
    """Variables whose coverage resets at n: everything the other side
    touches (a kernel call for CPU-side analysis, and vice versa)."""
    other = "gpu" if side == "cpu" else "cpu"
    return frozenset(node.uses(other) | node.defs(other))


def analyze_firstaccess(cfg: CFG, side: str, universe: Set[str] = None) -> FirstAccessResult:
    if universe is None:
        universe = all_variables(cfg)
    uni = frozenset(universe)

    def make_transfer(access: str):
        def transfer(node: CFGNode, in_val):
            gen = node.uses(side) if access == "read" else node.defs(side)
            return (in_val - _barrier_vars(node, side)) | (frozenset(gen) & uni)

        return transfer

    def run(access: str) -> DataflowResult:
        return solve(
            cfg,
            DataflowProblem(
                direction=FORWARD,
                meet=INTERSECT,
                transfer=make_transfer(access),
                boundary=frozenset(),
                universe=uni,
                name=f"first-{access}[{side}]",
            ),
        )

    return FirstAccessResult(side, run("read"), run("write"))
