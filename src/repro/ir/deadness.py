"""Algorithm 1 of the paper: May-Dead / May-Live variable analysis.

Backward dataflow, per device side.  Three coupled set problems:

* **may-live** (union meet): v is read on some following path before being
  *fully* overwritten.  A partial (subscripted or kernel) write leaves the
  remaining elements observable, so only full scalar stores end liveness.
* **dead** (intersection meet, boundary = universe at exit): on every
  following path, v is written before it is read — or never accessed again
  (at program exit every value is trivially dead).
* **full-dead** (intersection meet, boundary = universe): as above, but the
  first write on every path fully overwrites v.  A partial first write
  removes v from this set: deciding whether the unwritten elements matter
  is exactly the array-section problem the paper declares infeasible
  (§II-C's CG example).

Classification for the §III-B dead-target gating:

* ``must-dead``: v ∈ dead ∧ v ∈ full-dead — safe to pin ``notstale``
  (transfers into v are *definitely* redundant);
* ``may-dead``:  v ∈ dead ∧ v ∉ full-dead — pinned ``maystale``; the
  resulting may-redundant reports are the suggestions that can be wrong
  (Table III's BACKPROP/LUD incorrect iterations);
* ``live``: otherwise.

Deviations from the paper's literal Algorithm 1, both necessary to avoid
false *definite* verdicts (documented in DESIGN.md): transfers are
transparent (they move values, they are not accesses), and the remote
side's writes (the paper's KILL set) do not terminate local liveness — a
stale local copy is still the location a later local read observes after a
refreshing transfer.
"""

from __future__ import annotations

from typing import FrozenSet, Set

from repro.ir.cfg import CFG, CFGNode
from repro.ir.dataflow import (
    BACKWARD,
    DataflowProblem,
    DataflowResult,
    INTERSECT,
    UNION,
    solve,
)
from repro.ir.liveness import all_variables


class DeadnessResult:
    """Per-node classification sets for one side."""

    def __init__(self, side: str, universe: FrozenSet[str],
                 live: DataflowResult, dead: DataflowResult, fulldead: DataflowResult):
        self.side = side
        self.universe = universe
        self._live = live
        self._dead = dead
        self._fulldead = fulldead

    # -- entrance (IN) of a node -------------------------------------------
    def may_dead_in(self, node: CFGNode) -> Set[str]:
        return set(self._dead.in_of(node)) & self.universe

    def may_live_in(self, node: CFGNode) -> Set[str]:
        return set(self._live.in_of(node)) & self.universe

    def must_dead_in(self, node: CFGNode) -> Set[str]:
        return self.may_dead_in(node) & set(self._fulldead.in_of(node))

    # -- exit (OUT) of a node ----------------------------------------------
    def may_dead_out(self, node: CFGNode) -> Set[str]:
        return set(self._dead.out_of(node)) & self.universe

    def may_live_out(self, node: CFGNode) -> Set[str]:
        return set(self._live.out_of(node)) & self.universe

    def must_dead_out(self, node: CFGNode) -> Set[str]:
        return self.may_dead_out(node) & set(self._fulldead.out_of(node))

    def classify_out(self, node: CFGNode, var: str) -> str:
        """'must-dead', 'may-dead', or 'live' for v just after n executes."""
        if var in self.must_dead_out(node):
            return "must-dead"
        if var in self.may_dead_out(node):
            return "may-dead"
        return "live"

    def classify_in(self, node: CFGNode, var: str) -> str:
        """Same classification at the entrance of n."""
        if var in self.must_dead_in(node):
            return "must-dead"
        if var in self.may_dead_in(node):
            return "may-dead"
        return "live"

    def __repr__(self):
        return f"DeadnessResult(side={self.side}, |universe|={len(self.universe)})"


def analyze_deadness(cfg: CFG, side: str, universe: Set[str] = None,
                     transfers_as_defs: bool = False) -> DeadnessResult:
    """Run the (adapted) Algorithm 1 for one side ('cpu' or 'gpu').

    Two views, selected by ``transfers_as_defs``:

    * **value view** (False, default): transfers are transparent — "will the
      value written *now* ever reach a reader (possibly through transfers)?"
      This gates the write-site resets: CPU-write -> is the GPU copy dead,
      kernel-write -> is the CPU copy dead.
    * **location view** (True): a transfer into this side fully overwrites
      the destination — "will the value a transfer delivers be read before
      the next overwrite (including by another transfer)?"  This gates the
      transfer-site pins and catches eager copyouts whose payload the next
      copyout replaces (the SRAD/JACOBI pattern).
    """
    if universe is None:
        universe = all_variables(cfg)
    uni = frozenset(universe)

    def xfer(node: CFGNode) -> FrozenSet[str]:
        if transfers_as_defs:
            return frozenset(node.xfers_to(side)) & uni
        return frozenset()

    def live_transfer(node: CFGNode, out_val):
        return (
            (out_val - frozenset(node.full_defs(side)) - xfer(node))
            | frozenset(node.uses(side))
        )

    def dead_transfer(node: CFGNode, out_val):
        gen = (frozenset(node.defs(side)) & uni) | xfer(node)
        return (out_val | gen) - frozenset(node.uses(side))

    def fulldead_transfer(node: CFGNode, out_val):
        full = (frozenset(node.full_defs(side)) & uni) | xfer(node)
        partial = (frozenset(node.defs(side)) - full) & uni
        return ((out_val | full) - partial) - frozenset(node.uses(side))

    live = solve(
        cfg,
        DataflowProblem(
            direction=BACKWARD,
            meet=UNION,
            transfer=live_transfer,
            boundary=frozenset(),
            name=f"may-live[{side}]",
        ),
    )
    dead = solve(
        cfg,
        DataflowProblem(
            direction=BACKWARD,
            meet=INTERSECT,
            transfer=dead_transfer,
            boundary=uni,
            universe=uni,
            name=f"dead[{side}]",
        ),
    )
    fulldead = solve(
        cfg,
        DataflowProblem(
            direction=BACKWARD,
            meet=INTERSECT,
            transfer=fulldead_transfer,
            boundary=uni,
            universe=uni,
            name=f"full-dead[{side}]",
        ),
    )
    return DeadnessResult(side, uni, live, dead, fulldead)
