"""Conservative may-alias analysis for mini-C pointers.

Flow-insensitive points-to: every assignment whose target is a pointer and
whose source mentions an array or another pointer merges alias classes.
``p = a;``, ``p = &a[0];``, ``p = q;``, and conditional re-assignments all
land in the same bucket.  The result maps each pointer to the set of arrays
it may point at, and flags *ambiguous* pointers (more than one array, or a
pointer whose target could not be resolved at all).

Ambiguity is what drives the paper's Table III: when the compiler cannot
resolve (may-)aliased pointers, its may-dead verdicts can be wrong, the tool
suggests an incorrect transfer deletion, and the kernel-verification pass
catches the corruption one iteration later (BACKPROP, LUD).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.lang import ast
from repro.lang.ctypes import Array, Pointer


class AliasInfo:
    """Result of the analysis."""

    def __init__(self, points_to: Dict[str, Set[str]], ambiguous: Set[str]):
        self.points_to = points_to
        self.ambiguous = ambiguous

    def aliases_of(self, name: str) -> Set[str]:
        """Memory objects an access through ``name`` may touch (includes the
        name itself when it is an array)."""
        return self.points_to.get(name, {name})

    def is_ambiguous(self, name: str) -> bool:
        return name in self.ambiguous

    def expand(self, names: Set[str]) -> Set[str]:
        out: Set[str] = set()
        for n in names:
            out |= self.aliases_of(n)
        return out

    def alias_map(self) -> Dict[str, Set[str]]:
        """Mapping suitable for :func:`repro.ir.defuse.annotate`."""
        return dict(self.points_to)

    def __repr__(self):
        return f"AliasInfo(points_to={self.points_to}, ambiguous={sorted(self.ambiguous)})"


def analyze_aliases(program: ast.Program, func: Optional[ast.FuncDef] = None) -> AliasInfo:
    """Flow-insensitive points-to over globals plus one function's locals."""
    pointer_names: Set[str] = set()
    array_names: Set[str] = set()

    def scan_decl(name: str, ctype) -> None:
        if isinstance(ctype, Pointer):
            pointer_names.add(name)
        elif isinstance(ctype, Array):
            array_names.add(name)

    for decl in program.decls:
        scan_decl(decl.name, decl.ctype)
    funcs = [func] if func is not None else program.funcs
    for f in funcs:
        for param in f.params:
            scan_decl(param.name, param.ctype)
        for node in f.body.walk():
            if isinstance(node, ast.VarDecl):
                scan_decl(node.name, node.ctype)

    points_to: Dict[str, Set[str]] = {p: set() for p in pointer_names}
    unresolved: Set[str] = set()

    def source_targets(expr: ast.Expr) -> Optional[Set[str]]:
        """Objects the RHS of a pointer assignment may denote."""
        if isinstance(expr, ast.Name):
            if expr.id in array_names:
                return {expr.id}
            if expr.id in pointer_names:
                return points_to.get(expr.id, set()) | {("?ptr", expr.id)}  # type: ignore[arg-type]
            return None
        if isinstance(expr, ast.Unary) and expr.op == "&":
            base = ast.base_name(expr.operand)
            if base in array_names:
                return {base}
            return None
        if isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
            # pointer arithmetic: p = a + k
            return source_targets(expr.left)
        if isinstance(expr, ast.Ternary):
            left = source_targets(expr.then)
            right = source_targets(expr.other)
            if left is None or right is None:
                return None
            return left | right
        if isinstance(expr, ast.Cast):
            return source_targets(expr.operand)
        return None

    # Iterate to closure: pointer-to-pointer copies need the final sets.
    for _ in range(len(pointer_names) + 2):
        changed = False
        for f in funcs:
            for node in f.body.walk():
                target_name = None
                value = None
                if isinstance(node, ast.Assign) and not node.op:
                    target_name = ast.base_name(node.target)
                    value = node.value
                elif isinstance(node, ast.VarDecl) and node.init is not None:
                    target_name = node.name
                    value = node.init
                if target_name not in pointer_names or value is None:
                    continue
                if not isinstance(node, ast.VarDecl) and not isinstance(
                    node.target, ast.Name
                ):
                    continue  # *p = x writes through, not rebinding
                targets = source_targets(value)
                if targets is None:
                    if target_name not in unresolved:
                        unresolved.add(target_name)
                        changed = True
                    continue
                concrete = {t for t in targets if isinstance(t, str)}
                ptr_deps = {t[1] for t in targets if isinstance(t, tuple)}
                for dep in ptr_deps:
                    concrete |= points_to.get(dep, set())
                    if dep in unresolved and target_name not in unresolved:
                        unresolved.add(target_name)
                        changed = True
                if not concrete <= points_to[target_name]:
                    points_to[target_name] |= concrete
                    changed = True
        if not changed:
            break

    ambiguous = set(unresolved)
    for p, targets in points_to.items():
        if len(targets) > 1:
            ambiguous.add(p)
        if not targets and p not in unresolved:
            # Never assigned: unknown target — maximally conservative.
            points_to[p] = set(array_names)
            if array_names:
                ambiguous.add(p)
    return AliasInfo(points_to, ambiguous)
