"""Deterministic input generators for the benchmark suite.

Every generator takes a seed so experiment runs are reproducible.  Sizes are
deliberately small: the device is an interpreter, and the evaluation cares
about *relative* shapes, not absolute scale.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def rng_for(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def dense_vector(n: int, seed: int = 0, lo: float = 0.0, hi: float = 1.0) -> np.ndarray:
    return rng_for(seed).uniform(lo, hi, size=n)


def dense_matrix(rows: int, cols: int, seed: int = 0) -> np.ndarray:
    return rng_for(seed).uniform(-1.0, 1.0, size=(rows, cols))


def spd_matrix(n: int, seed: int = 0) -> np.ndarray:
    """Symmetric positive-definite dense matrix (for LUD / CG)."""
    m = rng_for(seed).uniform(0.0, 1.0, size=(n, n))
    return m @ m.T + n * np.eye(n)


def csr_laplacian_like(n: int, nnz_per_row: int = 4, seed: int = 0):
    """A diagonally dominant sparse matrix in CSR form (SPMUL, CG).

    Returns (rowptr[n+1], colidx[nnz], values[nnz]).
    """
    rng = rng_for(seed)
    rowptr = np.zeros(n + 1, dtype=np.int64)
    cols = []
    vals = []
    for i in range(n):
        offs = sorted(set([i] + list(rng.integers(0, n, size=nnz_per_row - 1))))
        row_vals = []
        for j in offs:
            if j == i:
                row_vals.append(float(nnz_per_row + 1))
            else:
                row_vals.append(float(rng.uniform(-1.0, 0.0)))
        cols.extend(offs)
        vals.extend(row_vals)
        rowptr[i + 1] = len(cols)
    return rowptr, np.array(cols, dtype=np.int64), np.array(vals, dtype=np.float64)


def random_graph_csr(nodes: int, degree: int = 3, seed: int = 0):
    """Connected-ish random digraph in CSR adjacency form (BFS).

    Returns (offsets[nodes+1], edges[sum degree]).  Node i always links to
    (i+1) % nodes so every node is reachable from 0.
    """
    rng = rng_for(seed)
    offsets = np.zeros(nodes + 1, dtype=np.int64)
    edges = []
    for i in range(nodes):
        targets = {(i + 1) % nodes}
        while len(targets) < degree:
            targets.add(int(rng.integers(0, nodes)))
        targets.discard(i)
        edges.extend(sorted(targets))
        offsets[i + 1] = len(edges)
    return offsets, np.array(edges, dtype=np.int64)


def heat_grid(n: int, seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Initial temperature and power maps (HOTSPOT)."""
    rng = rng_for(seed)
    temp = 323.0 + rng.uniform(-1.0, 1.0, size=(n, n))
    power = rng.uniform(0.0, 0.01, size=(n, n))
    return temp, power


def speckled_image(n: int, seed: int = 0) -> np.ndarray:
    """Positive image with multiplicative speckle (SRAD)."""
    rng = rng_for(seed)
    base = 1.0 + 0.2 * np.sin(np.add.outer(np.arange(n), np.arange(n)) / 4.0)
    noise = rng.gamma(shape=16.0, scale=1.0 / 16.0, size=(n, n))
    return base * noise


def cluster_points(n: int, features: int, clusters: int, seed: int = 0) -> np.ndarray:
    """Gaussian blobs around `clusters` centers (KMEANS)."""
    rng = rng_for(seed)
    centers = rng.uniform(-5.0, 5.0, size=(clusters, features))
    labels = rng.integers(0, clusters, size=n)
    return centers[labels] + rng.normal(0.0, 0.3, size=(n, features))


def sequences(n: int, seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Two integer 'DNA' sequences (NW), alphabet {0..3}."""
    rng = rng_for(seed)
    return (
        rng.integers(0, 4, size=n).astype(np.int64),
        rng.integers(0, 4, size=n).astype(np.int64),
    )


def blosum_like(alphabet: int = 4, seed: int = 0) -> np.ndarray:
    """Symmetric substitution score matrix (NW)."""
    rng = rng_for(seed)
    m = rng.integers(-3, 3, size=(alphabet, alphabet)).astype(np.float64)
    m = (m + m.T) / 2.0
    np.fill_diagonal(m, 4.0)
    return m
