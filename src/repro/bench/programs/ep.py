"""EP — NAS "embarrassingly parallel" Gaussian-deviate benchmark.

Each index derives two pseudo-random uniforms from a per-thread LCG stream,
applies the acceptance test, and accumulates the deviate sums (a reduction
kernel).  A separate kernel bins the deviates into concentric squares.
"""

NAME = "EP"

# 2*M samples; q[] counts deviates per ring, sx/sy are the deviate sums.
OPTIMIZED = """
int M, NQ;
double gx[M], gy[M];
double q[NQ];
double sx, sy, qchk;

void main()
{
    double t1, t2, t3, t4, x1, x2;
    #pragma acc data create(gx, gy) copy(q)
    {
        #pragma acc kernels loop gang worker private(t1, t2, t3, t4, x1, x2)
        for (int i = 0; i < M; i++) {
            t1 = (double)(((i + 1) * 62089911 + 12345) % 2147483647) / 2147483647.0;
            t2 = (double)(((i + 1) * 93419407 + 54321) % 2147483647) / 2147483647.0;
            x1 = 2.0 * t1 - 1.0;
            x2 = 2.0 * t2 - 1.0;
            t3 = x1 * x1 + x2 * x2;
            if (t3 <= 1.0 && t3 > 0.0) {
                t4 = sqrt(-2.0 * log(t3) / t3);
                gx[i] = x1 * t4;
                gy[i] = x2 * t4;
            } else {
                gx[i] = 0.0;
                gy[i] = 0.0;
            }
        }
        sx = 0.0;
        sy = 0.0;
        #pragma acc kernels loop gang worker reduction(+:sx, sy)
        for (int i = 0; i < M; i++) {
            int l = (int)fmax(fabs(gx[i]), fabs(gy[i]));
            if (l < NQ) {
                q[l] = q[l] + 1.0;
            }
            sx = sx + gx[i];
            sy = sy + gy[i];
        }
    }
    qchk = 0.0;
    for (int l2 = 0; l2 < NQ; l2++) { qchk = qchk + q[l2]; }
}
"""

UNOPTIMIZED = """
int M, NQ;
double gx[M], gy[M];
double q[NQ];
double sx, sy, qchk;

void main()
{
    double t1, t2, t3, t4, x1, x2;
    #pragma acc data copy(gx, gy, q)
    {
        #pragma acc kernels loop gang worker private(t1, t2, t3, t4, x1, x2)
        for (int i = 0; i < M; i++) {
            t1 = (double)(((i + 1) * 62089911 + 12345) % 2147483647) / 2147483647.0;
            t2 = (double)(((i + 1) * 93419407 + 54321) % 2147483647) / 2147483647.0;
            x1 = 2.0 * t1 - 1.0;
            x2 = 2.0 * t2 - 1.0;
            t3 = x1 * x1 + x2 * x2;
            if (t3 <= 1.0 && t3 > 0.0) {
                t4 = sqrt(-2.0 * log(t3) / t3);
                gx[i] = x1 * t4;
                gy[i] = x2 * t4;
            } else {
                gx[i] = 0.0;
                gy[i] = 0.0;
            }
        }
        #pragma acc update host(gx, gy)
        sx = 0.0;
        sy = 0.0;
        #pragma acc kernels loop gang worker reduction(+:sx, sy)
        for (int i = 0; i < M; i++) {
            int l = (int)fmax(fabs(gx[i]), fabs(gy[i]));
            if (l < NQ) {
                q[l] = q[l] + 1.0;
            }
            sx = sx + gx[i];
            sy = sy + gy[i];
        }
        #pragma acc update host(q)
    }
    qchk = 0.0;
    for (int l2 = 0; l2 < NQ; l2++) { qchk = qchk + q[l2]; }
}
"""

SIZES = {
    "tiny": {"M": 32, "NQ": 10},
    "small": {"M": 256, "NQ": 10},
    "large": {"M": 2048, "NQ": 10},
}

OUTPUTS = ["q", "sx", "sy", "qchk"]


def make_params(size: str = "small", seed: int = 0):
    return dict(SIZES[size])
