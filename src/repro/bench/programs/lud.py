"""LUD — Rodinia LU decomposition (in-place, unblocked).

Three kernels per elimination step: pivot/scaling extraction, column scale,
and trailing-submatrix update.  Three auxiliary vectors (``diag``, ``piv``,
``scl``) are *seeded by the host* at element 0 and extended by the GPU one
element per step.  Each host seed is followed by a required ``update
device``; the compiler's whole-array deadness sees the GPU's write-first
access and calls all three may-dead, so the tool issues three wrong
may-redundant suggestions — the paper's Table III LUD row (4 iterations, 3
incorrect).
"""

from repro.bench.workloads import spd_matrix

NAME = "LUD"

_COMMON = """
int N, NM1;
double m[N][N];
double diag[N], piv[N], scl[N];
double checksum;
"""

_KERNELS = """
            #pragma acc kernels loop gang worker
            for (int i = k; i < N - 1; i++) {
                if (i == k) {
                    diag[k + 1] = 0.0;
                    piv[k + 1] = 1.0;
                    scl[k + 1] = 1.0;
                }
            }
            #pragma acc kernels loop gang worker
            for (int i = k + 1; i < N; i++) {
                m[i][k] = m[i][k] / (diag[k] * scl[k]);
            }
            #pragma acc kernels loop collapse(2) private(contrib)
            for (int i = k + 1; i < N; i++) {
                for (int j = k + 1; j < N; j++) {
                    contrib = m[i][k] * m[k][j] * piv[k];
                    m[i][j] = m[i][j] - contrib;
                    if (i == k + 1 && j == k + 1) {
                        diag[k + 1] = m[k + 1][k + 1];
                    }
                }
            }
"""

_SEED = """
    diag[0] = m[0][0];
    piv[0] = 1.0;
    scl[0] = 1.0;
"""

_EPILOG = """
    checksum = 0.0;
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) { checksum = checksum + m[i][j]; }
    }
}
"""

OPTIMIZED = (
    _COMMON
    + """
void main()
{
    double contrib;
"""
    + _SEED
    + """
    #pragma acc data copy(m) create(diag, piv, scl)
    {
        #pragma acc update device(diag)
        #pragma acc update device(piv)
        #pragma acc update device(scl)
        for (int k = 0; k < NM1; k++) {
"""
    + _KERNELS
    + """
        }
    }
"""
    + _EPILOG
)

UNOPTIMIZED = (
    _COMMON
    + """
void main()
{
    double contrib;
"""
    + _SEED
    + """
    #pragma acc data copy(m) create(diag, piv, scl)
    {
        #pragma acc update device(diag)
        #pragma acc update device(piv)
        #pragma acc update device(scl)
        for (int k = 0; k < NM1; k++) {
"""
    + _KERNELS
    + """
        }
    }
"""
    + _EPILOG
)

SIZES = {
    "tiny": {"N": 8},
    "small": {"N": 16},
    "large": {"N": 48},
}

OUTPUTS = ["m", "checksum"]


def make_params(size: str = "small", seed: int = 0):
    cfg = dict(SIZES[size])
    n = cfg["N"]
    cfg["NM1"] = n - 1
    cfg["m"] = spd_matrix(n, seed=seed)
    return cfg
