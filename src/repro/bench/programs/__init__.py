"""The twelve benchmark program sources (mini-C with OpenACC directives)."""
