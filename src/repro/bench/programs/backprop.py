"""BACKPROP — Rodinia neural-net training step.

Five kernels: two matrix-vector forward passes (private accumulators), the
output/hidden delta computations, and a 2D weight-adjust.  The hidden layer
keeps its bias unit in ``hidden[0]``, written by the *host*; the GPU kernels
only ever write ``hidden[1..]``.  That partial-write pattern makes the
compiler's GPU-side deadness analysis conclude ``hidden`` is *may-dead* at
the host write, so the (required!) ``update device(hidden)`` is reported
may-redundant — the incorrect suggestion the paper attributes to BACKPROP in
Table III, which the output check then catches.
"""

from repro.bench.workloads import dense_matrix, dense_vector

NAME = "BACKPROP"

_COMMON = """
int IN1, HID1, OUT1, EPOCHS;
double input[IN1], target[OUT1];
double w_ih[IN1][HID1], w_ho[HID1][OUT1];
double hidden[HID1], output[OUT1];
double delta_o[OUT1], delta_h[HID1];
double err, lr, wchk;
"""

_KERNELS = """
            #pragma acc kernels loop gang worker private(sum)
            for (int j = 1; j < HID1; j++) {
                sum = 0.0;
                for (int i = 0; i < IN1; i++) {
                    sum = sum + input[i] * w_ih[i][j];
                }
                hidden[j] = 1.0 / (1.0 + exp(-sum));
            }
            #pragma acc kernels loop gang worker private(sum)
            for (int k = 1; k < OUT1; k++) {
                sum = 0.0;
                for (int j = 0; j < HID1; j++) {
                    sum = sum + hidden[j] * w_ho[j][k];
                }
                output[k] = 1.0 / (1.0 + exp(-sum));
            }
            #pragma acc kernels loop gang worker
            for (int k = 1; k < OUT1; k++) {
                delta_o[k] = output[k] * (1.0 - output[k]) * (target[k] - output[k]);
            }
            #pragma acc kernels loop gang worker
            for (int j = 1; j < HID1; j++) {
                double s = 0.0;
                for (int k = 1; k < OUT1; k++) {
                    s = s + delta_o[k] * w_ho[j][k];
                }
                delta_h[j] = hidden[j] * (1.0 - hidden[j]) * s;
            }
            #pragma acc kernels loop collapse(2)
            for (int j = 0; j < HID1; j++) {
                for (int k = 1; k < OUT1; k++) {
                    w_ho[j][k] = w_ho[j][k] + lr * delta_o[k] * hidden[j];
                }
            }
"""

OPTIMIZED = (
    _COMMON
    + """
void main()
{
    double sum;
    hidden[0] = 1.0;
    #pragma acc data copyin(input, target, w_ih) copy(w_ho) \\
                     create(hidden, delta_o, delta_h, output)
    {
        #pragma acc update device(hidden)
        for (int e = 0; e < EPOCHS; e++) {
"""
    + _KERNELS
    + """
            #pragma acc update host(output)
            err = 0.0;
            for (int k = 1; k < OUT1; k++) {
                err = err + (target[k] - output[k]) * (target[k] - output[k]);
            }
        }
    }
    wchk = 0.0;
    for (int j = 0; j < HID1; j++) {
        for (int k = 0; k < OUT1; k++) { wchk = wchk + w_ho[j][k]; }
    }
}
"""
)

UNOPTIMIZED = (
    _COMMON
    + """
void main()
{
    double sum;
    hidden[0] = 1.0;
    #pragma acc data copy(input, target, w_ih, w_ho, hidden, delta_o, delta_h, output)
    {
        #pragma acc update device(hidden)
        for (int e = 0; e < EPOCHS; e++) {
"""
    + _KERNELS
    + """
            #pragma acc update host(output, hidden, delta_o, delta_h)
            err = 0.0;
            for (int k = 1; k < OUT1; k++) {
                err = err + (target[k] - output[k]) * (target[k] - output[k]);
            }
        }
    }
    wchk = 0.0;
    for (int j = 0; j < HID1; j++) {
        for (int k = 0; k < OUT1; k++) { wchk = wchk + w_ho[j][k]; }
    }
}
"""
)

SIZES = {
    "tiny": {"IN1": 5, "HID1": 5, "OUT1": 3, "EPOCHS": 2},
    "small": {"IN1": 17, "HID1": 9, "OUT1": 3, "EPOCHS": 3},
    "large": {"IN1": 65, "HID1": 17, "OUT1": 5, "EPOCHS": 5},
}

OUTPUTS = ["w_ho", "err", "wchk"]


def make_params(size: str = "small", seed: int = 0):
    cfg = dict(SIZES[size])
    cfg["lr"] = 0.3
    cfg["input"] = dense_vector(cfg["IN1"], seed=seed)
    cfg["target"] = dense_vector(cfg["OUT1"], seed=seed + 1)
    cfg["w_ih"] = dense_matrix(cfg["IN1"], cfg["HID1"], seed=seed + 2) * 0.1
    cfg["w_ho"] = dense_matrix(cfg["HID1"], cfg["OUT1"], seed=seed + 3) * 0.1
    return cfg
