"""KMEANS — Rodinia k-means clustering.

The GPU assigns points to the nearest centroid (private distance
accumulators); centroid recomputation stays on the host (like the Rodinia
OpenACC port), so memberships come back and new centroids go down every
iteration — both transfers genuinely needed.  The unoptimized variant also
re-ships the (GPU-resident, read-only) feature matrix every iteration.
"""

from repro.bench.workloads import cluster_points

NAME = "KMEANS"

_COMMON = """
int NPTS, NF, K, ITER;
double feat[NPTS][NF], featscaled[NPTS][NF];
double cent[K][NF];
long assign[NPTS], oldassign[NPTS], changed[NPTS];
double scale;
int delta;
"""

_ASSIGN_KERNELS = """
            #pragma acc kernels loop gang worker private(best, mind, dist)
            for (int i = 0; i < NPTS; i++) {
                best = 0;
                mind = 1.0e30;
                for (int c = 0; c < K; c++) {
                    dist = 0.0;
                    for (int f = 0; f < NF; f++) {
                        dist = dist + (featscaled[i][f] - cent[c][f])
                                    * (featscaled[i][f] - cent[c][f]);
                    }
                    if (dist < mind) {
                        mind = dist;
                        best = c;
                    }
                }
                assign[i] = best;
            }
            #pragma acc kernels loop gang worker
            for (int i = 0; i < NPTS; i++) {
                changed[i] = assign[i] != oldassign[i] ? 1 : 0;
            }
            #pragma acc kernels loop gang worker
            for (int i = 0; i < NPTS; i++) {
                oldassign[i] = assign[i];
            }
"""

_HOST_UPDATE = """
            delta = 0;
            for (int i = 0; i < NPTS; i++) {
                delta = delta + (int)changed[i];
            }
            for (int c = 0; c < K; c++) {
                for (int f = 0; f < NF; f++) { cent[c][f] = 0.0; }
            }
            for (int i = 0; i < NPTS; i++) {
                for (int f = 0; f < NF; f++) {
                    cent[(int)assign[i]][f] = cent[(int)assign[i]][f] + feat[i][f] * scale;
                }
            }
"""

OPTIMIZED = (
    _COMMON
    + """
void main()
{
    int best;
    double mind, dist, sc;
    #pragma acc data copyin(feat, oldassign) create(featscaled, assign, changed) copyin(cent)
    {
        #pragma acc kernels loop collapse(2) private(sc)
        for (int i = 0; i < NPTS; i++) {
            for (int f = 0; f < NF; f++) {
                sc = feat[i][f] * scale;
                featscaled[i][f] = sc;
            }
        }
        for (int it = 0; it < ITER; it++) {
"""
    + _ASSIGN_KERNELS
    + """
            #pragma acc update host(assign, changed)
"""
    + _HOST_UPDATE
    + """
            #pragma acc update device(cent)
        }
    }
}
"""
)

UNOPTIMIZED = (
    _COMMON
    + """
void main()
{
    int best;
    double mind, dist, sc;
    #pragma acc data copy(feat, featscaled, assign, oldassign, changed, cent)
    {
        #pragma acc kernels loop collapse(2) private(sc)
        for (int i = 0; i < NPTS; i++) {
            for (int f = 0; f < NF; f++) {
                sc = feat[i][f] * scale;
                featscaled[i][f] = sc;
            }
        }
        #pragma acc update host(featscaled)
        for (int it = 0; it < ITER; it++) {
"""
    + _ASSIGN_KERNELS
    + """
            #pragma acc update host(assign, changed, oldassign)
"""
    + _HOST_UPDATE
    + """
            #pragma acc update device(cent)
        }
    }
}
"""
)

SIZES = {
    "tiny": {"NPTS": 16, "NF": 2, "K": 2, "ITER": 2},
    "small": {"NPTS": 48, "NF": 3, "K": 3, "ITER": 3},
    # 50k points x 4 features; sized for phase-sampled execution
    # (repro.sampling), which elides the O(NPTS) host update loops after a
    # warmup iteration.
    "large": {"NPTS": 50_000, "NF": 4, "K": 8, "ITER": 20},
}

OUTPUTS = ["cent", "assign", "delta"]


def make_params(size: str = "small", seed: int = 0):
    cfg = dict(SIZES[size])
    pts = cluster_points(cfg["NPTS"], cfg["NF"], cfg["K"], seed=seed)
    cfg["feat"] = pts
    cfg["cent"] = pts[: cfg["K"]].copy()
    cfg["scale"] = 1.0
    return cfg
