"""NW — Rodinia Needleman-Wunsch sequence alignment.

The DP score matrix fills along anti-diagonal wavefronts: cells on one
diagonal are independent, so each wave is a kernel launch whose bounds the
host computes.  Four kernels: first-row init, first-column init, and the
two wavefront phases (upper-left and lower-right triangles).
"""

from repro.bench.workloads import blosum_like, sequences

NAME = "NW"

_COMMON = """
int N, N1, PENALTY;
long s1[N], s2[N];
double sub[4][4];
double score[N1][N1];
double best;
"""

_WAVE_UP = """
            #pragma acc kernels loop gang worker private(up, left, diagv)
            for (int i = ilo; i <= ihi; i++) {
                up = score[i - 1][w - i] - (double)PENALTY;
                left = score[i][w - i - 1] - (double)PENALTY;
                diagv = score[i - 1][w - i - 1]
                      + sub[(int)s1[i - 1]][(int)s2[w - i - 1]];
                score[i][w - i] = fmax(diagv, fmax(up, left));
            }
"""

_BODY = """
    #pragma acc kernels loop gang worker
    for (int j = 0; j <= N; j++) {
        score[0][j] = (double)(-j * PENALTY);
    }
    #pragma acc kernels loop gang worker
    for (int i = 1; i <= N; i++) {
        score[i][0] = (double)(-i * PENALTY);
    }
    for (int w = 2; w <= N; w++) {
        ilo = 1;
        ihi = w - 1;
"""

_BODY2 = """
    }
    for (int w = N + 1; w <= 2 * N; w++) {
        ilo = w - N;
        ihi = N;
"""

_EPILOG = """
    }
"""


_WAVE_DOWN = """
            #pragma acc kernels loop gang worker private(up2, left2, diag2)
            for (int i = ilo; i <= ihi; i++) {
                up2 = score[i - 1][w - i] - (double)PENALTY;
                left2 = score[i][w - i - 1] - (double)PENALTY;
                diag2 = score[i - 1][w - i - 1]
                      + sub[(int)s1[i - 1]][(int)s2[w - i - 1]];
                score[i][w - i] = fmax(diag2, fmax(up2, left2));
            }
"""


def _program(data_pragma: str, extra_updates: str) -> str:
    wave_lower = _WAVE_DOWN
    return (
        _COMMON
        + """
void main()
{
    int ilo, ihi;
    double up, left, diagv, up2, left2, diag2;
"""
        + f"    {data_pragma}\n    {{\n"
        + _BODY
        + _WAVE_UP
        + extra_updates
        + _BODY2
        + wave_lower
        + extra_updates
        + _EPILOG
        + """
    }
    best = score[N][N];
}
"""
    )


OPTIMIZED = _program(
    "#pragma acc data copyin(s1, s2, sub) copy(score)", ""
)

UNOPTIMIZED = _program(
    "#pragma acc data copy(s1, s2, sub, score)",
    "        #pragma acc update host(score)\n",
)

SIZES = {
    "tiny": {"N": 8, "PENALTY": 2},
    "small": {"N": 24, "PENALTY": 2},
    "large": {"N": 64, "PENALTY": 2},
}

OUTPUTS = ["score", "best"]


def make_params(size: str = "small", seed: int = 0):
    cfg = dict(SIZES[size])
    n = cfg["N"]
    a, b = sequences(n, seed=seed)
    cfg.update(N1=n + 1, s1=a, s2=b, sub=blosum_like(seed=seed + 1))
    return cfg
