"""CFD — Rodinia Euler solver, reduced to a 1D ring of cells.

Six kernels in the manually optimized version: field init, old-state copy,
step factor (private), flux (private), time step, and a one-element monitor
extraction that feeds the host's convergence check.  The *unoptimized*
variant instead ships the whole residual field to the host every iteration;
because the host genuinely reads (one element of) it each time, whole-array
coherence tracking can never call that transfer redundant — the one
redundancy the tool cannot catch in the paper's Table III (CFD row).
"""

from repro.bench.workloads import dense_vector

NAME = "CFD"

_COMMON = """
int NC, ITER;
double dens[NC], mom[NC], ener[NC];
double dens_old[NC], mom_old[NC], ener_old[NC];
double step[NC], flux_d[NC], flux_m[NC], flux_e[NC];
double residual[NC];
double res0[1];
double cfl, monitor, fchk;
"""

_INIT_KERNEL = """
        #pragma acc kernels loop gang worker
        for (int i = 0; i < NC; i++) {
            mom[i] = dens[i] * 0.1;
            ener[i] = dens[i] * 2.5;
            residual[i] = 0.0;
        }
"""

_ITER_KERNELS = """
            #pragma acc kernels loop gang worker
            for (int i = 0; i < NC; i++) {
                dens_old[i] = dens[i];
                mom_old[i] = mom[i];
                ener_old[i] = ener[i];
            }
            #pragma acc kernels loop gang worker private(vel, pres, spd)
            for (int i = 0; i < NC; i++) {
                vel = mom_old[i] / dens_old[i];
                pres = 0.4 * (ener_old[i] - 0.5 * dens_old[i] * vel * vel);
                spd = sqrt(1.4 * pres / dens_old[i]);
                step[i] = cfl / (fabs(vel) + spd);
            }
            #pragma acc kernels loop gang worker private(il, ir)
            for (int i = 0; i < NC; i++) {
                il = (i + NC - 1) % NC;
                ir = (i + 1) % NC;
                flux_d[i] = 0.5 * (mom_old[il] - mom_old[ir]);
                flux_m[i] = 0.5 * (mom_old[il] * mom_old[il] / dens_old[il]
                                 - mom_old[ir] * mom_old[ir] / dens_old[ir]);
                flux_e[i] = 0.5 * (ener_old[il] * mom_old[il] / dens_old[il]
                                 - ener_old[ir] * mom_old[ir] / dens_old[ir]);
            }
            #pragma acc kernels loop gang worker
            for (int i = 0; i < NC; i++) {
                dens[i] = dens_old[i] + step[i] * flux_d[i];
                mom[i] = mom_old[i] + step[i] * flux_m[i];
                ener[i] = ener_old[i] + step[i] * flux_e[i];
                residual[i] = fabs(dens[i] - dens_old[i]);
            }
"""

OPTIMIZED = (
    _COMMON
    + """
void main()
{
    double vel, pres, spd;
    int il, ir;
    #pragma acc data copy(dens, mom, ener) \\
                     create(dens_old, mom_old, ener_old) \\
                     create(step, flux_d, flux_m, flux_e, residual, res0)
    {
"""
    + _INIT_KERNEL
    + """
        for (int it = 0; it < ITER; it++) {
"""
    + _ITER_KERNELS
    + """
            #pragma acc kernels loop gang worker
            for (int i = 0; i < 1; i++) {
                res0[0] = residual[0];
            }
            #pragma acc update host(res0)
            monitor = res0[0];
        }
    }
    fchk = 0.0;
    for (int i = 0; i < NC; i++) {
        fchk = fchk + dens[i] + mom[i] + ener[i];
    }
}
"""
)

UNOPTIMIZED = (
    _COMMON
    + """
void main()
{
    double vel, pres, spd;
    int il, ir;
    #pragma acc data copy(dens, mom, ener, dens_old, mom_old, ener_old) \\
                     copy(step, flux_d, flux_m, flux_e, residual, res0)
    {
"""
    + _INIT_KERNEL
    + """
        for (int it = 0; it < ITER; it++) {
"""
    + _ITER_KERNELS
    + """
            #pragma acc update host(residual)
            monitor = residual[0];
            #pragma acc update host(dens, mom, ener)
        }
    }
    fchk = 0.0;
    for (int i = 0; i < NC; i++) {
        fchk = fchk + dens[i] + mom[i] + ener[i];
    }
}
"""
)

SIZES = {
    "tiny": {"NC": 16, "ITER": 2},
    "small": {"NC": 48, "ITER": 4},
    "large": {"NC": 192, "ITER": 8},
}

OUTPUTS = ["dens", "mom", "ener", "monitor", "fchk"]


def make_params(size: str = "small", seed: int = 0):
    cfg = dict(SIZES[size])
    cfg["dens"] = dense_vector(cfg["NC"], seed=seed, lo=0.8, hi=1.2)
    cfg["cfl"] = 0.05
    return cfg
