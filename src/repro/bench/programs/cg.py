"""CG — NAS conjugate-gradient benchmark (CSR sparse).

The paper's Listing 1 comes from this port: ``q`` and ``p`` live only on
the GPU (``create``) for the whole solve, and the inner cgit loop runs
matvec + two dot-product reduction kernels + axpy updates.  The unoptimized
variant copies the GPU-only vectors around every iteration.
"""

from repro.bench.workloads import csr_laplacian_like, dense_vector

NAME = "CG"

_BODY = """
        for (int it = 0; it < NITER; it++) {
            for (int cgit = 0; cgit < CGITMAX; cgit++) {
                #pragma acc kernels loop gang worker private(sum)
                for (int i = 0; i < N; i++) {
                    sum = 0.0;
                    for (int j = (int)rowptr[i]; j < (int)rowptr[i + 1]; j++) {
                        sum = sum + vals[j] * p[(int)colidx[j]];
                    }
                    q[i] = sum;
                }
                d = 0.0;
                #pragma acc kernels loop reduction(+:d)
                for (int i = 0; i < N; i++) {
                    d = d + p[i] * q[i];
                }
                alpha = rho / d;
                rho0 = rho;
                #pragma acc kernels loop gang worker
                for (int i = 0; i < N; i++) {
                    z[i] = z[i] + alpha * p[i];
                    r[i] = r[i] - alpha * q[i];
                }
                rho = 0.0;
                #pragma acc kernels loop reduction(+:rho)
                for (int i = 0; i < N; i++) {
                    rho = rho + r[i] * r[i];
                }
                beta = rho / rho0;
                #pragma acc kernels loop gang worker
                for (int i = 0; i < N; i++) {
                    p[i] = r[i] + beta * p[i];
                }
%EXTRA%
            }
        }
"""

_PROLOG = """
int N, NNZ, NITER, CGITMAX;
long rowptr[N1], colidx[NNZ];
double vals[NNZ];
double x[N], z[N], r[N], p[N], q[N];
double rho, rho0, alpha, beta, d;
double znorm;

void main()
{
    double sum;
    for (int i = 0; i < N; i++) {
        z[i] = 0.0;
        r[i] = x[i];
        p[i] = x[i];
    }
    rho = 0.0;
    for (int i = 0; i < N; i++) { rho = rho + r[i] * r[i]; }
"""

_EPILOG = """
    znorm = 0.0;
    for (int i = 0; i < N; i++) { znorm = znorm + z[i] * z[i]; }
}
"""

OPTIMIZED = (
    _PROLOG
    + """
    #pragma acc data copyin(rowptr, colidx, vals, p, r) create(q) copy(z)
    {
"""
    + _BODY.replace("%EXTRA%", "")
    + """
    }
"""
    + _EPILOG
)

UNOPTIMIZED = (
    _PROLOG
    + """
    #pragma acc data copy(rowptr, colidx, vals, p, q, z, r)
    {
"""
    + _BODY.replace(
        "%EXTRA%",
        """
                #pragma acc update host(q, z, r, p)
""",
    )
    + """
    }
"""
    + _EPILOG
)

SIZES = {
    "tiny": {"N": 16, "NITER": 1, "CGITMAX": 2},
    "small": {"N": 48, "NITER": 1, "CGITMAX": 4},
    # ~600k nonzeros over 150k rows; sized for phase-sampled execution
    # (repro.sampling), which measures a few cgit iterations per solve and
    # extrapolates the rest.
    "large": {"N": 150_000, "NITER": 1, "CGITMAX": 25},
}

OUTPUTS = ["z", "znorm", "rho"]


def make_params(size: str = "small", seed: int = 0):
    cfg = dict(SIZES[size])
    n = cfg["N"]
    rowptr, colidx, vals = csr_laplacian_like(n, nnz_per_row=4, seed=seed)
    cfg.update(
        N1=n + 1,
        NNZ=len(colidx),
        rowptr=rowptr,
        colidx=colidx,
        vals=vals,
        x=dense_vector(n, seed=seed + 2, lo=0.5, hi=1.0),
    )
    return cfg
