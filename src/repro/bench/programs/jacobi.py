"""JACOBI — 1D Jacobi-style relaxation (kernel benchmark).

Two kernels per iteration (stencil + copy-back).  The unoptimized variant
carries the paper's Listing-3 pattern: an eager ``update host`` of the
solution every iteration, plus a conservative ``copy`` data region; the tool
should defer the update past the iteration loop and demote the dead
copyouts (Listing 4's suggestions).
"""

from repro.bench.workloads import dense_vector

NAME = "JACOBI"

OPTIMIZED = """
int N, ITER;
double a[N], anew[N], b[N];
double resid;

void main()
{
    #pragma acc data copyin(b) copy(a) create(anew)
    {
        for (int k = 0; k < ITER; k++) {
            #pragma acc kernels loop gang worker
            for (int i = 1; i < N - 1; i++) {
                anew[i] = 0.5 * (a[i - 1] + a[i + 1]) + b[i];
            }
            #pragma acc kernels loop gang worker
            for (int i = 1; i < N - 1; i++) {
                a[i] = anew[i];
            }
        }
    }
    resid = a[N / 2];
}
"""

UNOPTIMIZED = """
int N, ITER;
double a[N], anew[N], b[N];
double resid;

void main()
{
    #pragma acc data copy(a, b) create(anew)
    {
        for (int k = 0; k < ITER; k++) {
            #pragma acc kernels loop gang worker
            for (int i = 1; i < N - 1; i++) {
                anew[i] = 0.5 * (a[i - 1] + a[i + 1]) + b[i];
            }
            #pragma acc kernels loop gang worker
            for (int i = 1; i < N - 1; i++) {
                a[i] = anew[i];
            }
            #pragma acc update host(a)
        }
    }
    resid = a[N / 2];
}
"""

SIZES = {
    "tiny": {"N": 16, "ITER": 3},
    "small": {"N": 64, "ITER": 5},
    # Realistic scale (millions of elements): tractable because the phase
    # sampler (repro.sampling) measures a couple of iterations and
    # extrapolates the rest; a full unsampled run still completes, slowly.
    "large": {"N": 1_500_000, "ITER": 30},
}

OUTPUTS = ["a", "resid"]


def make_params(size: str = "small", seed: int = 0):
    cfg = dict(SIZES[size])
    n = cfg["N"]
    cfg["a"] = dense_vector(n, seed=seed)
    cfg["b"] = dense_vector(n, seed=seed + 1, lo=-0.1, hi=0.1)
    return cfg
