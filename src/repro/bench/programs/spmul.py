"""SPMUL — repeated sparse matrix-vector multiply (kernel benchmark).

CSR storage; each iteration computes y = A*x, the norm of y (reduction
kernel), and renormalizes x = y / norm.  The sparse arrays are GPU-only
after the initial copyin; the unoptimized variant re-updates them and the
iterate every round.
"""

from repro.bench.workloads import csr_laplacian_like, dense_vector

NAME = "SPMUL"

OPTIMIZED = """
int N, NNZ, ITER;
long rowptr[N1], colidx[NNZ];
double vals[NNZ], x[N], y[N];
double norm, xchk;

void main()
{
    double sum;
    #pragma acc data copyin(rowptr, colidx, vals) copy(x) create(y)
    {
        for (int it = 0; it < ITER; it++) {
            #pragma acc kernels loop gang worker private(sum)
            for (int i = 0; i < N; i++) {
                sum = 0.0;
                for (int j = (int)rowptr[i]; j < (int)rowptr[i + 1]; j++) {
                    sum = sum + vals[j] * x[(int)colidx[j]];
                }
                y[i] = sum;
            }
            norm = 0.0;
            #pragma acc kernels loop reduction(+:norm)
            for (int i = 0; i < N; i++) {
                norm = norm + y[i] * y[i];
            }
            norm = sqrt(norm);
            #pragma acc kernels loop gang worker
            for (int i = 0; i < N; i++) {
                x[i] = y[i] / norm;
            }
        }
    }
    xchk = 0.0;
    for (int i = 0; i < N; i++) { xchk = xchk + x[i]; }
}
"""

UNOPTIMIZED = """
int N, NNZ, ITER;
long rowptr[N1], colidx[NNZ];
double vals[NNZ], x[N], y[N];
double norm, xchk;

void main()
{
    double sum;
    #pragma acc data copy(rowptr, colidx, vals, x, y)
    {
        for (int it = 0; it < ITER; it++) {
            #pragma acc update device(x)
            #pragma acc kernels loop gang worker private(sum)
            for (int i = 0; i < N; i++) {
                sum = 0.0;
                for (int j = (int)rowptr[i]; j < (int)rowptr[i + 1]; j++) {
                    sum = sum + vals[j] * x[(int)colidx[j]];
                }
                y[i] = sum;
            }
            norm = 0.0;
            #pragma acc kernels loop reduction(+:norm)
            for (int i = 0; i < N; i++) {
                norm = norm + y[i] * y[i];
            }
            norm = sqrt(norm);
            #pragma acc kernels loop gang worker
            for (int i = 0; i < N; i++) {
                x[i] = y[i] / norm;
            }
            #pragma acc update host(x, y)
        }
    }
    xchk = 0.0;
    for (int i = 0; i < N; i++) { xchk = xchk + x[i]; }
}
"""

SIZES = {
    "tiny": {"N": 16, "ITER": 2},
    "small": {"N": 64, "ITER": 4},
    "large": {"N": 256, "ITER": 8},
}

OUTPUTS = ["x", "norm", "xchk"]


def make_params(size: str = "small", seed: int = 0):
    cfg = dict(SIZES[size])
    n = cfg["N"]
    rowptr, colidx, vals = csr_laplacian_like(n, nnz_per_row=4, seed=seed)
    cfg.update(
        N1=n + 1,
        NNZ=len(colidx),
        rowptr=rowptr,
        colidx=colidx,
        vals=vals,
        x=dense_vector(n, seed=seed + 1, lo=0.5, hi=1.5),
    )
    return cfg
