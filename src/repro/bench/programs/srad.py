"""SRAD — Rodinia speckle-reducing anisotropic diffusion.

Eight kernels: log-compress, boundary-coefficient init, gradient stack
(private temporaries), diffusion coefficient (private), coefficient clamp,
image update, exp-expand, and ROI extraction.  The ROI statistics (mean and
variance feeding q0²) are computed on the *host* each iteration, like the
Rodinia OpenACC port, so the image comes back every iteration even in the
manually optimized version.
"""

from repro.bench.workloads import speckled_image

NAME = "SRAD"

_COMMON = """
int N, ITER, ROI;
double img[N][N], dn[N][N], ds[N][N], de[N][N], dw[N][N], c[N][N];
double roi_sum, roi_sum2, q0sqr, lambda;
double roivals[RN];
double imgchk;
"""

_ITER_KERNELS = """
            #pragma acc kernels loop collapse(2)
            for (int i = 0; i < N; i++) {
                for (int j = 0; j < N; j++) {
                    dn[i][j] = (i > 0 ? img[i - 1][j] : img[i][j]) - img[i][j];
                    ds[i][j] = (i < N - 1 ? img[i + 1][j] : img[i][j]) - img[i][j];
                    dw[i][j] = (j > 0 ? img[i][j - 1] : img[i][j]) - img[i][j];
                    de[i][j] = (j < N - 1 ? img[i][j + 1] : img[i][j]) - img[i][j];
                }
            }
            #pragma acc kernels loop collapse(2) private(g2, l, num, den, qsq)
            for (int i = 0; i < N; i++) {
                for (int j = 0; j < N; j++) {
                    g2 = (dn[i][j] * dn[i][j] + ds[i][j] * ds[i][j]
                        + dw[i][j] * dw[i][j] + de[i][j] * de[i][j])
                        / (img[i][j] * img[i][j]);
                    l = (dn[i][j] + ds[i][j] + dw[i][j] + de[i][j]) / img[i][j];
                    num = 0.5 * g2 - 0.0625 * l * l;
                    den = 1.0 + 0.25 * l;
                    qsq = num / (den * den);
                    c[i][j] = 1.0 / (1.0 + (qsq - q0sqr) / (q0sqr * (1.0 + q0sqr)));
                }
            }
            #pragma acc kernels loop collapse(2)
            for (int i = 0; i < N; i++) {
                for (int j = 0; j < N; j++) {
                    if (c[i][j] < 0.0) { c[i][j] = 0.0; }
                    if (c[i][j] > 1.0) { c[i][j] = 1.0; }
                }
            }
            #pragma acc kernels loop collapse(2) private(cn, cs, cw, ce, dval)
            for (int i = 0; i < N; i++) {
                for (int j = 0; j < N; j++) {
                    cn = c[i][j];
                    cs = i < N - 1 ? c[i + 1][j] : c[i][j];
                    cw = c[i][j];
                    ce = j < N - 1 ? c[i][j + 1] : c[i][j];
                    dval = cn * dn[i][j] + cs * ds[i][j]
                         + cw * dw[i][j] + ce * de[i][j];
                    img[i][j] = img[i][j] + 0.25 * lambda * dval;
                }
            }
"""


def _program(data_pragma: str, extra_updates: str) -> str:
    return (
        _COMMON
        + """
void main()
{
    double g2, l, num, den, qsq, cn, cs, cw, ce, dval, mean, var;
"""
        + f"    {data_pragma}\n    {{\n"
        + """
        #pragma acc kernels loop collapse(2)
        for (int i = 0; i < N; i++) {
            for (int j = 0; j < N; j++) {
                img[i][j] = exp(img[i][j] / 255.0);
            }
        }
        #pragma acc kernels loop collapse(2)
        for (int i = 0; i < N; i++) {
            for (int j = 0; j < N; j++) {
                c[i][j] = 1.0;
            }
        }
        for (int it = 0; it < ITER; it++) {
            #pragma acc kernels loop collapse(2)
            for (int i = 0; i < ROI; i++) {
                for (int j = 0; j < ROI; j++) {
                    roivals[i * ROI + j] = img[i][j];
                }
            }
            #pragma acc update host(roivals)
            roi_sum = 0.0;
            roi_sum2 = 0.0;
            for (int i = 0; i < ROI * ROI; i++) {
                roi_sum = roi_sum + roivals[i];
                roi_sum2 = roi_sum2 + roivals[i] * roivals[i];
            }
            mean = roi_sum / (double)(ROI * ROI);
            var = roi_sum2 / (double)(ROI * ROI) - mean * mean;
            q0sqr = var / (mean * mean);
"""
        + _ITER_KERNELS
        + extra_updates
        + """
        }
        #pragma acc kernels loop collapse(2)
        for (int i = 0; i < N; i++) {
            for (int j = 0; j < N; j++) {
                img[i][j] = log(img[i][j]) * 255.0;
            }
        }
    }
    imgchk = 0.0;
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) { imgchk = imgchk + img[i][j]; }
    }
}
"""
    )


OPTIMIZED = _program(
    "#pragma acc data copy(img) create(dn, ds, de, dw, c, roivals)", ""
)

UNOPTIMIZED = _program(
    "#pragma acc data copy(img, dn, ds, de, dw, c, roivals)",
    "            #pragma acc update host(img, c)\n",
)

SIZES = {
    "tiny": {"N": 8, "ITER": 2, "ROI": 4},
    "small": {"N": 16, "ITER": 3, "ROI": 8},
    # 512x512 image (262k elements per array); sized for phase-sampled
    # execution (repro.sampling).
    "large": {"N": 512, "ITER": 16, "ROI": 32},
}

OUTPUTS = ["img", "imgchk"]


def make_params(size: str = "small", seed: int = 0):
    cfg = dict(SIZES[size])
    cfg["RN"] = cfg["ROI"] * cfg["ROI"]
    cfg["img"] = speckled_image(cfg["N"], seed=seed) * 100.0
    cfg["lambda"] = 0.5
    return cfg
