"""HOTSPOT — Rodinia thermal simulation (2D stencil).

One 2D stencil kernel (private neighbor temporaries) plus a grid copy per
time step.  The unoptimized variant drags the temperature field back to the
host every step.
"""

from repro.bench.workloads import heat_grid

NAME = "HOTSPOT"

_COMMON = """
int N, STEPS;
double temp[N][N], power[N][N], tnew[N][N];
double cap, rx, ry, rz, amb;
double tchk;
"""

_EPILOG = """
    tchk = 0.0;
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) { tchk = tchk + temp[i][j]; }
    }
}
"""

_KERNELS = """
            #pragma acc kernels loop collapse(2) private(tc, tn, ts, te, tw)
            for (int i = 0; i < N; i++) {
                for (int j = 0; j < N; j++) {
                    tc = temp[i][j];
                    tn = i > 0 ? temp[i - 1][j] : tc;
                    ts = i < N - 1 ? temp[i + 1][j] : tc;
                    tw = j > 0 ? temp[i][j - 1] : tc;
                    te = j < N - 1 ? temp[i][j + 1] : tc;
                    tnew[i][j] = tc + cap * (power[i][j]
                        + (tn + ts - 2.0 * tc) / ry
                        + (te + tw - 2.0 * tc) / rx
                        + (amb - tc) / rz);
                }
            }
            #pragma acc kernels loop collapse(2)
            for (int i = 0; i < N; i++) {
                for (int j = 0; j < N; j++) {
                    temp[i][j] = tnew[i][j];
                }
            }
"""

OPTIMIZED = (
    _COMMON
    + """
void main()
{
    double tc, tn, ts, te, tw;
    #pragma acc data copyin(power) copy(temp) create(tnew)
    {
        for (int s = 0; s < STEPS; s++) {
"""
    + _KERNELS
    + """
        }
    }
"""
    + _EPILOG
)

UNOPTIMIZED = (
    _COMMON
    + """
void main()
{
    double tc, tn, ts, te, tw;
    #pragma acc data copy(power, temp, tnew)
    {
        for (int s = 0; s < STEPS; s++) {
"""
    + _KERNELS
    + """
            #pragma acc update host(temp)
        }
    }
"""
    + _EPILOG
)

SIZES = {
    "tiny": {"N": 8, "STEPS": 2},
    "small": {"N": 16, "STEPS": 4},
    "large": {"N": 64, "STEPS": 8},
}

OUTPUTS = ["temp", "tchk"]


def make_params(size: str = "small", seed: int = 0):
    cfg = dict(SIZES[size])
    temp, power = heat_grid(cfg["N"], seed=seed)
    cfg.update(
        temp=temp,
        power=power,
        cap=0.5,
        rx=1.0,
        ry=1.0,
        rz=4.0,
        amb=80.0,
    )
    return cfg
