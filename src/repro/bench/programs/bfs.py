"""BFS — Rodinia breadth-first search over a CSR graph.

Level-synchronous frontier expansion; the host inspects the stop flag each
wave (a mandatory one-element transfer).  The unoptimized variant also
ships the whole level/frontier arrays back every wave.
"""

from repro.bench.workloads import random_graph_csr

NAME = "BFS"

_COMMON = """
int NODES, NODES1, EDGES, MAXDEPTH;
long offsets[NODES1], edges[EDGES];
long levels[NODES];
long f1[NODES], f2[NODES];
long stop[1];
int depth, cont;
long lvlchk;
"""

_KERNELS = """
        #pragma acc kernels loop gang worker private(jstart, jend)
        for (int i = 0; i < NODES; i++) {
            if (f1[i] == 1) {
                jstart = (int)offsets[i];
                jend = (int)offsets[i + 1];
                for (int j = jstart; j < jend; j++) {
                    if (levels[(int)edges[j]] < 0) {
                        levels[(int)edges[j]] = depth + 1;
                        f2[(int)edges[j]] = 1;
                    }
                }
            }
        }
        #pragma acc kernels loop gang worker
        for (int i = 0; i < NODES; i++) {
            f1[i] = f2[i];
            f2[i] = 0;
            if (f1[i] == 1) {
                stop[0] = stop[0] + 1;
            }
        }
"""

OPTIMIZED = (
    _COMMON
    + """
void main()
{
    int jstart, jend;
    for (int i = 0; i < NODES; i++) {
        levels[i] = -1;
        f1[i] = 0;
        f2[i] = 0;
    }
    levels[0] = 0;
    f1[0] = 1;
    depth = 0;
    cont = 1;
    #pragma acc data copyin(offsets, edges, f1, f2, stop) copy(levels)
    {
        while (cont == 1 && depth < MAXDEPTH) {
            stop[0] = 0;
            #pragma acc update device(stop)
"""
    + _KERNELS
    + """
            #pragma acc update host(stop)
            cont = (int)stop[0];
            depth = depth + 1;
        }
    }
    lvlchk = 0;
    for (int i = 0; i < NODES; i++) { lvlchk = lvlchk + levels[i]; }
}
"""
)

UNOPTIMIZED = (
    _COMMON
    + """
void main()
{
    int jstart, jend;
    for (int i = 0; i < NODES; i++) {
        levels[i] = -1;
        f1[i] = 0;
        f2[i] = 0;
    }
    levels[0] = 0;
    f1[0] = 1;
    depth = 0;
    cont = 1;
    #pragma acc data copy(offsets, edges, f1, f2, levels, stop)
    {
        while (cont == 1 && depth < MAXDEPTH) {
            stop[0] = 0;
            #pragma acc update device(stop)
"""
    + _KERNELS
    + """
            #pragma acc update host(stop, levels, f1, f2)
            cont = (int)stop[0];
            depth = depth + 1;
        }
    }
    lvlchk = 0;
    for (int i = 0; i < NODES; i++) { lvlchk = lvlchk + levels[i]; }
}
"""
)

SIZES = {
    "tiny": {"NODES": 16, "MAXDEPTH": 20},
    "small": {"NODES": 64, "MAXDEPTH": 70},
    "large": {"NODES": 512, "MAXDEPTH": 520},
}

OUTPUTS = ["levels", "depth", "lvlchk"]


def make_params(size: str = "small", seed: int = 0):
    cfg = dict(SIZES[size])
    n = cfg["NODES"]
    offsets, edges = random_graph_csr(n, degree=3, seed=seed)
    cfg.update(
        NODES1=n + 1,
        EDGES=len(edges),
        offsets=offsets,
        edges=edges,
    )
    return cfg
