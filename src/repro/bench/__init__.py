"""The twelve OpenACC benchmarks of the paper's evaluation (§IV-A).

Two kernel benchmarks (JACOBI, SPMUL), two NAS Parallel Benchmarks (EP, CG)
and eight Rodinia benchmarks (BACKPROP, BFS, CFD, SRAD, HOTSPOT, KMEANS,
LUD, NW), re-ported to the mini-C language.  Each benchmark ships a
*manually optimized* variant (tuned data regions and deferred updates — the
paper's baseline for Figure 1 and the target of Table III) and an
*unoptimized* variant (conservative per-iteration transfers — the starting
point of the §IV-C interactive-optimization study).
"""

from repro.bench.suite import Benchmark, all_names, get

__all__ = ["Benchmark", "all_names", "get"]
