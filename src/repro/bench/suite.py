"""Benchmark registry.

Each entry wraps one program module (name, the two source variants, input
generator, output variables) and convenience compile/run helpers used by the
experiments and tests.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.compiler import CompiledProgram, CompilerOptions, compile_source

_MODULES = [
    "backprop",
    "bfs",
    "cfd",
    "cg",
    "ep",
    "hotspot",
    "jacobi",
    "kmeans",
    "lud",
    "nw",
    "spmul",
    "srad",
]


@dataclass
class Benchmark:
    name: str
    optimized_source: str
    unoptimized_source: str
    outputs: List[str]
    sizes: Dict[str, dict]
    module: object

    def params(self, size: str = "small", seed: int = 0) -> dict:
        return self.module.make_params(size, seed)

    def compile(self, variant: str = "optimized",
                options: Optional[CompilerOptions] = None,
                ctx=None) -> CompiledProgram:
        source = (
            self.optimized_source if variant == "optimized" else self.unoptimized_source
        )
        return compile_source(source, options, ctx=ctx)

    def naive_program(self, ctx=None):
        """The OpenACC-default-scheme variant (Figure 1 baseline): the
        optimized source with every manual memory-management construct
        stripped."""
        from repro.lang.parser import parse_program
        from repro.toolchain import default_context

        ctx = ctx or default_context()
        return ctx.passes.rewrite(
            "fault.strip_data", parse_program(self.optimized_source)
        )


_REGISTRY: Dict[str, Benchmark] = {}


def _load() -> None:
    if _REGISTRY:
        return
    for mod_name in _MODULES:
        try:
            mod = importlib.import_module(f"repro.bench.programs.{mod_name}")
        except ModuleNotFoundError:
            continue
        bench = Benchmark(
            name=mod.NAME,
            optimized_source=mod.OPTIMIZED,
            unoptimized_source=mod.UNOPTIMIZED,
            outputs=list(mod.OUTPUTS),
            sizes=dict(mod.SIZES),
            module=mod,
        )
        _REGISTRY[bench.name] = bench


def all_names() -> List[str]:
    """Benchmark names in the paper's (alphabetical) Figure order."""
    _load()
    return sorted(_REGISTRY)


def get(name: str) -> Benchmark:
    _load()
    return _REGISTRY[name.upper()]
