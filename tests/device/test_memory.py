"""Device memory allocator tests."""

import numpy as np
import pytest

from repro.device.memory import DeviceMemory
from repro.errors import DeviceMemoryError


class TestAlloc:
    def test_alloc_returns_zeroed_buffer(self):
        mem = DeviceMemory()
        a = mem.alloc("a", (4,), np.float64)
        assert a.data.shape == (4,) and np.all(a.data == 0.0)

    def test_handles_unique(self):
        mem = DeviceMemory()
        a = mem.alloc("a", (4,), np.float64)
        b = mem.alloc("b", (4,), np.float64)
        assert a.handle != b.handle

    def test_used_accounting(self):
        mem = DeviceMemory()
        a = mem.alloc("a", (10,), np.float64)
        assert mem.used == 80
        mem.free(a.handle)
        assert mem.used == 0

    def test_capacity_limit(self):
        mem = DeviceMemory(capacity_bytes=100)
        with pytest.raises(DeviceMemoryError):
            mem.alloc("big", (1000,), np.float64)

    def test_2d_alloc(self):
        mem = DeviceMemory()
        a = mem.alloc("m", (3, 5), np.float32)
        assert a.nbytes == 60


class TestFree:
    def test_double_free_raises(self):
        mem = DeviceMemory()
        a = mem.alloc("a", (4,), np.float64)
        mem.free(a.handle)
        with pytest.raises(DeviceMemoryError):
            mem.free(a.handle)

    def test_free_unknown_handle_raises(self):
        with pytest.raises(DeviceMemoryError):
            DeviceMemory().free(99)

    def test_access_after_free_raises(self):
        mem = DeviceMemory()
        a = mem.alloc("a", (4,), np.float64)
        mem.free(a.handle)
        with pytest.raises(DeviceMemoryError):
            mem.get(a.handle)

    def test_alloc_free_counts(self):
        mem = DeviceMemory()
        h = mem.alloc("a", (4,), np.float64).handle
        mem.free(h)
        assert mem.alloc_count == 1 and mem.free_count == 1


class TestLookup:
    def test_find_by_name(self):
        mem = DeviceMemory()
        mem.alloc("a", (4,), np.float64)
        b = mem.alloc("b", (4,), np.float64)
        assert mem.find_by_name("b") is b
        assert mem.find_by_name("zzz") is None

    def test_live_allocations(self):
        mem = DeviceMemory()
        h = mem.alloc("a", (4,), np.float64).handle
        assert mem.live_allocations == 1
        mem.free(h)
        assert mem.live_allocations == 0
