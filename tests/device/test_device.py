"""Device facade tests: transfers, events, cost model."""

import numpy as np
import pytest

from repro.device import Device, DeviceConfig
from repro.device.compile import compile_body
from repro.device.device import EV_ALLOC, EV_D2H, EV_FREE, EV_H2D, EV_LAUNCH
from repro.device.engine import LaunchSpec
from repro.device.transfer import CostModel
from repro.errors import DeviceError
from repro.lang import parse_program


def simple_spec(a):
    prog = parse_program("void main() { for (int i = 0; i < 4; i++) { a[i] = 1.0; } }")
    body = prog.func("main").body.body[0].body.body
    return LaunchSpec("k", compile_body(body), ("i",), [(i,) for i in range(4)], arrays={"a": a})


class TestTransfers:
    def test_h2d_then_d2h_roundtrip(self):
        dev = Device()
        h = dev.alloc("a", (8,), np.float64)
        src = np.arange(8.0)
        dst = np.zeros(8)
        dev.memcpy_h2d(h, src)
        dev.memcpy_d2h(dst, h)
        assert np.array_equal(dst, src)

    def test_host_and_device_spaces_are_separate(self):
        dev = Device()
        h = dev.alloc("a", (4,), np.float64)
        host = np.ones(4)
        dev.memcpy_h2d(h, host)
        host[:] = 99.0  # mutating host must not affect the device copy
        out = np.zeros(4)
        dev.memcpy_d2h(out, h)
        assert np.all(out == 1.0)

    def test_shape_mismatch_raises(self):
        dev = Device()
        h = dev.alloc("a", (4,), np.float64)
        with pytest.raises(DeviceError):
            dev.memcpy_h2d(h, np.zeros(5))

    def test_transferred_bytes_accounting(self):
        dev = Device()
        h = dev.alloc("a", (8,), np.float64)
        dev.memcpy_h2d(h, np.zeros(8))
        dev.memcpy_d2h(np.zeros(8), h)
        assert dev.bytes_h2d == 64 and dev.bytes_d2h == 64
        assert dev.total_transferred_bytes() == 128


class TestEventsAndCosts:
    def test_event_sequence(self):
        dev = Device()
        h = dev.alloc("a", (4,), np.float64)
        a_dev = dev.array(h)
        dev.memcpy_h2d(h, np.zeros(4))
        dev.launch(simple_spec(a_dev))
        dev.memcpy_d2h(np.zeros(4), h)
        dev.free(h)
        kinds = [e.kind for e in dev.events]
        assert kinds == [EV_ALLOC, EV_H2D, EV_LAUNCH, EV_D2H, EV_FREE]

    def test_transfer_cost_scales_with_bytes(self):
        costs = CostModel()
        small = costs.transfer_time(8)
        large = costs.transfer_time(8 * 1024 * 1024)
        assert large > small > 0

    def test_latency_floor(self):
        costs = CostModel(transfer_latency_s=1e-5)
        assert costs.transfer_time(0) == pytest.approx(1e-5)

    def test_kernel_cost_scales_with_steps(self):
        costs = CostModel()
        assert costs.kernel_time(1000) > costs.kernel_time(10)

    def test_total_seconds_by_kind(self):
        dev = Device()
        h = dev.alloc("a", (4,), np.float64)
        dev.memcpy_h2d(h, np.zeros(4))
        assert dev.total_seconds(EV_H2D) > 0
        assert dev.total_seconds(EV_D2H) == 0
        assert dev.total_seconds() > dev.total_seconds(EV_H2D)

    def test_launch_executes_on_device_memory(self):
        dev = Device()
        h = dev.alloc("a", (4,), np.float64)
        dev.launch(simple_spec(dev.array(h)))
        out = np.zeros(4)
        dev.memcpy_d2h(out, h)
        assert np.all(out == 1.0)

    def test_reset_events(self):
        dev = Device()
        dev.alloc("a", (4,), np.float64)
        dev.reset_events()
        assert not dev.events and dev.total_transferred_bytes() == 0

    def test_custom_config(self):
        config = DeviceConfig(capacity_bytes=128)
        dev = Device(config)
        from repro.errors import DeviceMemoryError

        with pytest.raises(DeviceMemoryError):
            dev.alloc("big", (1024,), np.float64)
