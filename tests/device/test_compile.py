"""Kernel bytecode lowering tests."""

import pytest

from repro.device.bytecode import Branch, Dump, Jump, Simple, TmpEval, TmpStore, disassemble
from repro.device.compile import compile_body
from repro.errors import CompileError
from repro.lang import parse_program


def body_of(src):
    prog = parse_program(f"void main() {{ {src} }}")
    return prog.func("main").body.body


def lower(src, **kw):
    return compile_body(body_of(src), **kw)


class TestStraightLine:
    def test_assignments_become_simple(self):
        instrs = lower("a[0] = 1.0; a[1] = 2.0;")
        assert all(isinstance(i, Simple) for i in instrs)
        assert len(instrs) == 2

    def test_declaration(self):
        instrs = lower("double t = 1.0;")
        assert isinstance(instrs[0], Simple)


class TestControlFlow:
    def test_if_without_else(self):
        instrs = lower("if (x > 0) { a[0] = 1.0; }")
        assert isinstance(instrs[0], Branch)
        assert instrs[0].target == len(instrs)  # skips past the body

    def test_if_else_has_jump_over_else(self):
        instrs = lower("if (x > 0) { a[0] = 1.0; } else { a[0] = 2.0; }")
        kinds = [type(i).__name__ for i in instrs]
        assert kinds == ["Branch", "Simple", "Jump", "Simple"]
        assert instrs[0].target == 3  # else branch
        assert instrs[2].target == 4  # end

    def test_for_loop_back_edge(self):
        instrs = lower("for (int j = 0; j < 3; j++) { a[j] = 1.0; }")
        jumps = [i for i in instrs if isinstance(i, Jump)]
        assert jumps and jumps[-1].target == 1  # back to the condition

    def test_while_loop(self):
        instrs = lower("while (x > 0) { x = x - 1.0; }")
        assert isinstance(instrs[0], Branch)
        assert instrs[0].target == len(instrs)

    def test_break_jumps_to_loop_end(self):
        instrs = lower("for (int j = 0; j < 9; j++) { if (j > 2) { break; } }")
        breaks = [i for i in instrs if isinstance(i, Jump) and i.target == len(instrs)]
        assert breaks

    def test_continue_jumps_to_step(self):
        instrs = lower("for (int j = 0; j < 9; j++) { if (j > 2) { continue; } a[j] = 1.0; }")
        # One Jump targets the step instruction (second to last Simple).
        step_targets = [i.target for i in instrs if isinstance(i, Jump)]
        assert len(set(step_targets)) >= 1

    def test_break_outside_loop_raises(self):
        with pytest.raises(CompileError):
            compile_body(body_of("break;"))

    def test_return_rejected(self):
        with pytest.raises(CompileError):
            compile_body(body_of("return;"))


class TestSplitting:
    def test_rmw_on_split_var(self):
        instrs = lower("s = s + a[0];", split_vars={"s"})
        assert isinstance(instrs[0], TmpEval)
        assert isinstance(instrs[1], TmpStore)

    def test_compound_assign_split(self):
        instrs = lower("s += a[0];", split_vars={"s"})
        assert isinstance(instrs[0], TmpEval) and isinstance(instrs[1], TmpStore)

    def test_plain_overwrite_not_split(self):
        instrs = lower("s = a[0];", split_vars={"s"})
        assert isinstance(instrs[0], Simple)

    def test_unrelated_var_not_split(self):
        instrs = lower("t = t + 1.0;", split_vars={"s"})
        assert isinstance(instrs[0], Simple)

    def test_unique_temp_registers(self):
        instrs = lower("s = s + 1.0; s = s + 2.0;", split_vars={"s"})
        regs = {i.reg for i in instrs if isinstance(i, TmpEval)}
        assert len(regs) == 2


class TestDumps:
    def test_dump_appended_per_var(self):
        instrs = lower("t = a[0];", dump_vars=["t"])
        assert isinstance(instrs[-1], Dump) and instrs[-1].name == "t"

    def test_dump_order(self):
        instrs = lower("t = a[0];", dump_vars=["t", "u"])
        assert [i.name for i in instrs if isinstance(i, Dump)] == ["t", "u"]


class TestDisassembly:
    def test_listing_format(self):
        instrs = lower("if (x > 0) { a[0] = 1.0; }")
        text = disassemble(instrs)
        assert "0:" in text and "Branch" in text
