"""Kernel engine tests: correctness, races, reductions, schedules."""

import numpy as np
import pytest

from repro.device.compile import compile_body
from repro.device.engine import KernelEngine, LaunchSpec, Schedule
from repro.errors import DeviceError
from repro.lang import parse_program


def body_of(src):
    """Statements of main()'s single top-level for loop body."""
    prog = parse_program(f"void main() {{ {src} }}")
    loop = prog.func("main").body.body[0]
    return loop.body.body


def make_spec(body_src, n=16, split=None, dump=None, **kw):
    stmts = body_of(f"for (int i = 0; i < {n}; i++) {{ {body_src} }}")
    instrs = compile_body(stmts, split_vars=split, dump_vars=dump)
    return LaunchSpec(
        name="k",
        instrs=instrs,
        index_vars=("i",),
        threads=[(i,) for i in range(n)],
        **kw,
    )


class TestBasicExecution:
    def test_elementwise_copy(self):
        a = np.zeros(16)
        b = np.arange(16, dtype=np.float64)
        spec = make_spec("a[i] = b[i] * 2.0;", arrays={"a": a, "b": b})
        KernelEngine().launch(spec, Schedule.round_robin())
        assert np.allclose(a, b * 2.0)

    def test_scalar_param(self):
        a = np.zeros(8)
        spec = make_spec("a[i] = (double)c;", n=8, arrays={"a": a}, scalars={"c": 7})
        KernelEngine().launch(spec)
        assert np.all(a == 7.0)

    def test_inner_sequential_loop(self):
        a = np.zeros(4)
        spec = make_spec(
            "double s = 0.0; for (int j = 0; j < 5; j++) { s = s + 1.0; } a[i] = s;",
            n=4,
            arrays={"a": a},
        )
        KernelEngine().launch(spec)
        assert np.all(a == 5.0)

    def test_branch_in_body(self):
        a = np.zeros(10)
        spec = make_spec(
            "if (i % 2 == 0) { a[i] = 1.0; } else { a[i] = -1.0; }",
            n=10,
            arrays={"a": a},
        )
        KernelEngine().launch(spec)
        assert np.all(a[::2] == 1.0) and np.all(a[1::2] == -1.0)

    def test_while_and_break(self):
        a = np.zeros(4)
        spec = make_spec(
            "int j = 0; while (1) { j = j + 1; if (j > 3) { break; } } a[i] = (double)j;",
            n=4,
            arrays={"a": a},
        )
        KernelEngine().launch(spec)
        assert np.all(a == 4.0)

    def test_continue(self):
        a = np.zeros(1)
        spec = make_spec(
            "double s = 0.0; for (int j = 0; j < 6; j++) { if (j % 2 == 1) { continue; } s = s + 1.0; } a[i] = s;",
            n=1,
            arrays={"a": a},
        )
        KernelEngine().launch(spec)
        assert a[0] == 3.0

    def test_float32_array_truncates(self):
        a = np.zeros(1, dtype=np.float32)
        spec = make_spec("a[i] = 1.0000000001;", n=1, arrays={"a": a})
        KernelEngine().launch(spec)
        assert a[0] == np.float32(1.0000000001)

    def test_step_budget_enforced(self):
        spec = make_spec("while (1) { int z = 0; }", n=1, arrays={})
        engine = KernelEngine(max_total_steps=1000)
        with pytest.raises(DeviceError):
            engine.launch(spec)

    def test_2d_index_space(self):
        a = np.zeros((4, 4))
        prog = parse_program(
            "void main() { for (int i = 0; i < 4; i++) { for (int j = 0; j < 4; j++) { a[i][j] = (double)(i * 4 + j); } } }"
        )
        inner = prog.func("main").body.body[0].body.body[0]
        instrs = compile_body(inner.body.body)
        spec = LaunchSpec(
            "k2d", instrs, ("i", "j"),
            [(i, j) for i in range(4) for j in range(4)],
            arrays={"a": a},
        )
        KernelEngine().launch(spec)
        assert np.allclose(a, np.arange(16.0).reshape(4, 4))


class TestReductions:
    def test_recognized_reduction_correct(self):
        b = np.arange(32, dtype=np.float64)
        spec = make_spec(
            "s = s + b[i];", n=32, arrays={"b": b},
            reductions=[("s", "+", np.float64)],
        )
        res = KernelEngine().launch(spec)
        assert res.reductions["s"] == pytest.approx(b.sum())

    def test_max_reduction(self):
        b = np.array([3.0, 9.0, 1.0, 7.0])
        spec = make_spec(
            "if (b[i] > m) { m = b[i]; }", n=4, arrays={"b": b},
            reductions=[("m", "max", np.float64)],
        )
        res = KernelEngine().launch(spec)
        assert res.reductions["m"] == 9.0

    def test_float32_tree_order_differs_from_sequential(self):
        rng = np.random.default_rng(42)
        vals = (rng.random(4096, dtype=np.float32) * 1000).astype(np.float32)
        from repro.device.reduction import sequential_reduce, tree_reduce

        tree = tree_reduce("+", list(vals), np.float32)
        seq = sequential_reduce("+", list(vals), np.float32)
        assert tree != seq  # rounding order matters in float32
        assert tree == pytest.approx(seq, rel=1e-4)

    def test_missing_reduction_races_under_interleaving(self):
        # Unrecognized reduction: shared scalar + split RMW -> lost updates.
        b = np.ones(64, dtype=np.float64)
        spec = make_spec(
            "s = s + b[i];", n=64, arrays={"b": b},
            scalars={"s": 0.0}, shared_writable={"s"}, split=["s"],
        )
        res = KernelEngine().launch(spec, Schedule.round_robin(quantum=1))
        assert res.shared_final["s"] < 64.0  # updates lost: active error

    def test_missing_reduction_sequential_schedule_hides_race(self):
        b = np.ones(64, dtype=np.float64)
        spec = make_spec(
            "s = s + b[i];", n=64, arrays={"b": b},
            scalars={"s": 0.0}, shared_writable={"s"}, split=["s"],
        )
        res = KernelEngine().launch(spec, Schedule.sequential())
        assert res.shared_final["s"] == 64.0  # no interleaving, no race


class TestPrivatization:
    def test_private_variable_isolated(self):
        a = np.zeros(8)
        spec = make_spec(
            "t = (double)i; a[i] = t * 2.0;", n=8, arrays={"a": a},
            private_decls={"t": np.float64},
        )
        KernelEngine().launch(spec, Schedule.round_robin())
        assert np.allclose(a, np.arange(8.0) * 2.0)

    def test_firstprivate_initial_value(self):
        a = np.zeros(4)
        spec = make_spec(
            "a[i] = t + (double)i;", n=4, arrays={"a": a},
            firstprivate={"t": 10.0},
        )
        KernelEngine().launch(spec)
        assert np.allclose(a, 10.0 + np.arange(4.0))

    def test_cached_var_latent_race(self):
        # Falsely-shared scalar with register caching + dump-back: per-thread
        # results stay correct (latent), but the shared final value is one
        # thread's value.
        a = np.zeros(8)
        spec = make_spec(
            "t = (double)i; a[i] = t * 2.0;", n=8, arrays={"a": a},
            cached_vars={"t": 0.0}, shared_writable={"t"}, dump=["t"],
        )
        res = KernelEngine().launch(spec, Schedule.round_robin())
        assert np.allclose(a, np.arange(8.0) * 2.0)  # outputs unaffected
        assert res.shared_final["t"] in {float(i) for i in range(8)}

    def test_truly_shared_without_caching_races(self):
        # The same code with t genuinely shared (no caching, no privatization)
        # corrupts outputs under interleaving: this is what a compiler bug
        # would do with memory-resident scalars.
        a = np.zeros(8)
        spec = make_spec(
            "t = (double)i; a[i] = t * 2.0;", n=8, arrays={"a": a},
            scalars={"t": 0.0}, shared_writable={"t"},
        )
        KernelEngine().launch(spec, Schedule.round_robin(quantum=1))
        assert not np.allclose(a, np.arange(8.0) * 2.0)


class TestSchedules:
    def test_random_schedule_deterministic_per_seed(self):
        def run(seed):
            a = np.zeros(16)
            spec = make_spec(
                "t = (double)i; a[i] = t;", n=16, arrays={"a": a},
                scalars={"t": 0.0}, shared_writable={"t"},
            )
            KernelEngine().launch(spec, Schedule.random(seed=seed))
            return a.copy()

        assert np.array_equal(run(7), run(7))

    def test_sequential_matches_roundrobin_when_race_free(self):
        def run(schedule):
            a = np.zeros(16)
            b = np.arange(16, dtype=np.float64)
            spec = make_spec("a[i] = b[i] + 1.0;", arrays={"a": a, "b": b})
            KernelEngine().launch(spec, schedule)
            return a

        assert np.array_equal(run(Schedule.sequential()), run(Schedule.round_robin()))

    def test_step_counts_reported(self):
        a = np.zeros(4)
        spec = make_spec("a[i] = 1.0;", n=4, arrays={"a": a})
        res = KernelEngine().launch(spec)
        assert res.total_steps >= 4
        assert res.max_thread_steps >= 1

    def test_bad_schedule_kind_raises(self):
        with pytest.raises(ValueError):
            Schedule("chaotic")
