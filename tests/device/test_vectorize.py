"""Vectorized backend vs. interleaved stepper equivalence + analysis units.

The load-bearing property: for every benchmark kernel the vectorized fast
path must be *observably identical* to the interleaved stepper — same output
arrays bit for bit, same reductions, same per-launch step accounting (and
therefore the same modeled times).  Race-revealing launches must provably
take the interleaved path.
"""

import numpy as np
import pytest

from repro.bench import suite
from repro.compiler import CompilerOptions, compile_source
from repro.device import vectorize
from repro.device.bytecode import Simple
from repro.device.device import Device, DeviceConfig
from repro.device.engine import KernelEngine, LaunchSpec, Schedule
from repro.interp import run_compiled
from repro.lang.parser import parse_program
from repro.runtime.accrt import AccRuntime
from repro.runtime.profiler import (
    CTR_LAUNCH_INTERLEAVED,
    CTR_LAUNCH_VECTORIZED,
    Profiler,
)


def _run_variant(bench, variant, *, vectorized: bool, schedule=None):
    runtime = AccRuntime(Device(DeviceConfig(vectorize=vectorized)), Profiler())
    compiled = bench.compile(variant)
    return run_compiled(
        compiled, params=bench.params("tiny"), runtime=runtime, schedule=schedule
    )


class TestBackendEquivalence:
    """Both backends must agree on every observable, benchmark by benchmark."""

    @pytest.mark.parametrize("name", suite.all_names())
    @pytest.mark.parametrize("variant", ["optimized", "unoptimized"])
    def test_outputs_and_accounting_match(self, name, variant):
        bench = suite.get(name)
        fast = _run_variant(bench, variant, vectorized=True)
        slow = _run_variant(bench, variant, vectorized=False)

        # Output variables: bit-identical arrays and scalars.
        for out in bench.outputs:
            got = fast.env.load(out)
            ref = slow.env.load(out)
            if isinstance(ref, np.ndarray):
                np.testing.assert_array_equal(got, ref, err_msg=f"{name}:{out}")
            else:
                assert got == ref, f"{name}:{out}: {got!r} != {ref!r}"

        # Per-launch step accounting drives the modeled kernel time; it must
        # match launch by launch, as must the reductions.
        assert len(fast.runtime.launch_log) == len(slow.runtime.launch_log)
        for f, s in zip(fast.runtime.launch_log, slow.runtime.launch_log):
            assert f.name == s.name
            assert f.total_steps == s.total_steps, f.name
            assert f.max_thread_steps == s.max_thread_steps, f.name
            assert f.reductions == s.reductions, f.name

        # Identical modeled host clock.
        assert fast.runtime.profiler.total() == slow.runtime.profiler.total()

    @pytest.mark.parametrize("name", suite.all_names())
    def test_sequential_schedule_matches_too(self, name):
        bench = suite.get(name)
        fast = _run_variant(
            bench, "optimized", vectorized=True, schedule=Schedule.sequential()
        )
        slow = _run_variant(
            bench, "optimized", vectorized=False, schedule=Schedule.sequential()
        )
        for out in bench.outputs:
            got, ref = fast.env.load(out), slow.env.load(out)
            if isinstance(ref, np.ndarray):
                np.testing.assert_array_equal(got, ref, err_msg=f"{name}:{out}")
            else:
                assert got == ref, f"{name}:{out}"
        for f, s in zip(fast.runtime.launch_log, slow.runtime.launch_log):
            assert (f.total_steps, f.max_thread_steps) == (s.total_steps, s.max_thread_steps)

    def test_fast_path_actually_taken(self):
        """The equivalence tests above are vacuous if nothing vectorizes."""
        bench = suite.get("JACOBI")
        interp = _run_variant(bench, "optimized", vectorized=True)
        counters = interp.runtime.profiler.counters
        assert counters.get(CTR_LAUNCH_VECTORIZED, 0) > 0
        assert counters.get(CTR_LAUNCH_INTERLEAVED, 0) == 0


def _spec(source: str, arrays, threads, index_vars=("i",), **kw) -> LaunchSpec:
    from repro.device.compile import compile_body

    # Same idiom as test_engine: wrap the body in main()'s partitioned loop.
    prog = parse_program(f"void main() {{ for (int i = 0; i < 1; i++) {source} }}")
    body = prog.func("main").body.body[0].body.body
    instrs = compile_body(
        body, split_vars=kw.pop("split_vars", None), dump_vars=kw.pop("dump_vars", None)
    )
    return LaunchSpec(
        name="k", instrs=instrs, index_vars=index_vars, threads=threads,
        arrays=arrays, **kw,
    )


class TestAnalysis:
    """Unit coverage of the vectorizability classification."""

    def test_elementwise_kernel_vectorizes(self):
        spec = _spec(
            "{ b[i] = a[i] * 2.0; }",
            {"a": np.arange(4.0), "b": np.zeros(4)},
            [(0,), (1,), (2,), (3,)],
        )
        assert vectorize.plan_for(spec) is not None

    def test_shared_writable_scalar_falls_back(self):
        spec = _spec(
            "{ t = a[i]; }",
            {"a": np.arange(4.0)},
            [(0,), (1,), (2,), (3,)],
            scalars={"t": 0.0},
            shared_writable={"t"},
        )
        assert vectorize.plan_for(spec) is None

    def test_split_rmw_falls_back(self):
        # Unrecognized reduction: split TmpEval/TmpStore is the active-race
        # construct and must stay on the interleaved stepper.
        spec = _spec(
            "{ s = s + a[i]; }",
            {"a": np.arange(4.0)},
            [(0,), (1,), (2,), (3,)],
            scalars={"s": 0.0},
            shared_writable={"s"},
            split_vars=("s",),
        )
        assert vectorize.plan_for(spec) is None

    def test_histogram_scatter_falls_back(self):
        # q[l] with a thread-computed l is not provably one-element-per-lane.
        spec = _spec(
            "{ long l; l = (long) a[i]; q[l] = q[l] + 1.0; }",
            {"a": np.arange(4.0), "q": np.zeros(4)},
            [(0,), (1,), (2,), (3,)],
        )
        assert vectorize.plan_for(spec) is None

    def test_stencil_read_of_written_array_falls_back(self):
        spec = _spec(
            "{ a[i] = a[i - 1] + 1.0; }",
            {"a": np.arange(4.0)},
            [(1,), (2,), (3,)],
        )
        assert vectorize.plan_for(spec) is None

    def test_recognized_reduction_vectorizes(self):
        spec = _spec(
            "{ s = s + a[i]; }",
            {"a": np.arange(4.0)},
            [(0,), (1,), (2,), (3,)],
            reductions=[("s", "+", np.float64)],
        )
        assert vectorize.plan_for(spec) is not None
        engine = KernelEngine()
        result = engine.launch(spec, Schedule.round_robin())
        assert result.backend == "vectorized"
        ref = KernelEngine(vectorize=False).launch(
            LaunchSpec(
                name="k", instrs=spec.instrs, index_vars=("i",),
                threads=spec.threads, arrays=spec.arrays,
                reductions=spec.reductions,
            ),
            Schedule.round_robin(),
        )
        assert result.reductions == ref.reductions
        assert result.total_steps == ref.total_steps

    def test_random_schedule_forces_interleaved(self):
        spec = _spec(
            "{ b[i] = a[i] * 2.0; }",
            {"a": np.arange(4.0), "b": np.zeros(4)},
            [(0,), (1,), (2,), (3,)],
        )
        result = KernelEngine().launch(spec, Schedule.random(seed=7))
        assert result.backend == "interleaved"

    def test_vectorize_false_disables_fast_path(self):
        spec = _spec(
            "{ b[i] = a[i] * 2.0; }",
            {"a": np.arange(4.0), "b": np.zeros(4)},
            [(0,), (1,), (2,), (3,)],
        )
        result = KernelEngine(vectorize=False).launch(spec, Schedule.round_robin())
        assert result.backend == "interleaved"


class TestTable2RacePath:
    """Fault-injected kernels must provably run on the interleaved stepper —
    that is where Table II's race detection lives."""

    @pytest.mark.parametrize("name", ["SPMUL", "EP", "CG", "BACKPROP"])
    def test_fault_injected_kernels_interleave(self, name):
        from repro.compiler.faults import drop_private_clauses, drop_reduction_clauses
        from repro.compiler.driver import compile_ast
        from repro.lang.parser import parse_program

        bench = suite.get(name)
        options = CompilerOptions(
            auto_privatize=False, auto_reduction=False, strict_validation=False
        )
        program = parse_program(bench.optimized_source)
        faulty = drop_reduction_clauses(drop_private_clauses(program))
        compiled = compile_ast(faulty, options)

        runtime = AccRuntime(Device(DeviceConfig()), Profiler())
        run_compiled(compiled, params=bench.params("tiny"), runtime=runtime)
        # Every launch that carries race-revealing state must have gone
        # interleaved; the faulty variants of these four all do.
        assert runtime.profiler.counters.get(CTR_LAUNCH_INTERLEAVED, 0) > 0
        for result in runtime.launch_log:
            if result.shared_final:
                assert result.backend == "interleaved"
