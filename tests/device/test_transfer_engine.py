"""Byte-accurate transfer engine: batching, diffing, and batched copies."""

import numpy as np
import pytest

from repro.device.device import Device, DeviceConfig
from repro.device.transfer import (
    CostModel,
    bitwise_neq_mask,
    coalesce_intervals,
    diff_intervals,
    mask_to_intervals,
)
from repro.errors import DeviceError


class TestBatchedCost:
    def test_single_batch_matches_classic_transfer(self):
        costs = CostModel()
        assert costs.transfer_time_batched(1, 4096) == costs.transfer_time(4096)

    def test_zero_batches_cost_nothing(self):
        assert CostModel().transfer_time_batched(0, 0) == 0.0

    def test_each_batch_pays_latency(self):
        costs = CostModel()
        assert (costs.transfer_time_batched(3, 100)
                == pytest.approx(3 * costs.transfer_latency_s
                                 + 100 / costs.transfer_bandwidth_Bps))

    def test_merge_break_even(self):
        costs = CostModel()
        gap = costs.merge_break_even_bytes()
        # Moving `gap` filler bytes costs the same as one extra latency.
        assert gap / costs.transfer_bandwidth_Bps == pytest.approx(
            costs.transfer_latency_s)
        assert DeviceConfig().merge_gap_bytes() == gap
        assert DeviceConfig(transfer_merge_gap_bytes=7).merge_gap_bytes() == 7


class TestCoalesce:
    def test_merges_within_gap(self):
        assert coalesce_intervals([(0, 4), (6, 10)], 2) == [(0, 10)]

    def test_keeps_beyond_gap(self):
        assert coalesce_intervals([(0, 4), (7, 10)], 2) == [(0, 4), (7, 10)]

    def test_zero_gap_merges_only_adjacent(self):
        assert coalesce_intervals([(0, 4), (4, 6), (8, 9)], 0) == [(0, 6), (8, 9)]

    def test_empty(self):
        assert coalesce_intervals([], 5) == []


class TestDiff:
    def test_mask_to_intervals_runs(self):
        mask = np.array([1, 1, 0, 0, 1, 0, 1], dtype=bool)
        assert mask_to_intervals(mask) == [(0, 2), (4, 5), (6, 7)]

    def test_mask_all_false(self):
        assert mask_to_intervals(np.zeros(8, dtype=bool)) == []

    def test_mask_all_true(self):
        assert mask_to_intervals(np.ones(5, dtype=bool)) == [(0, 5)]

    def test_equal_arrays_no_diff(self):
        a = np.arange(10, dtype=np.float64)
        assert diff_intervals(a, a.copy()) == []

    def test_negative_zero_differs_bitwise(self):
        # -0.0 == +0.0 numerically, but the bytes differ: skipping the copy
        # would leave the destination bit-different from a whole-array copy.
        a = np.array([0.0, 1.0])
        b = np.array([-0.0, 1.0])
        assert bitwise_neq_mask(a, b).tolist() == [True, False]

    def test_nan_vs_nan_same_bits_is_equal(self):
        a = np.array([np.nan, 2.0])
        assert diff_intervals(a, a.copy()) == []

    def test_nan_vs_value_differs(self):
        a = np.array([np.nan, 2.0])
        b = np.array([1.0, 2.0])
        assert diff_intervals(a, b) == [(0, 1)]

    def test_2d_arrays_flattened(self):
        a = np.zeros((3, 3))
        b = a.copy()
        b[1, 1] = 5.0
        assert diff_intervals(a, b) == [(4, 5)]

    def test_int8_fast_path(self):
        a = np.array([1, 2, 3], dtype=np.int8)
        b = np.array([1, 9, 3], dtype=np.int8)
        assert diff_intervals(a, b) == [(1, 2)]


class TestBatchedMemcpy:
    @pytest.fixture
    def device(self):
        return Device(DeviceConfig(delta_transfers=True))

    def test_h2d_copies_only_intervals(self, device):
        handle = device.alloc("a", (10,), np.float64)
        host = np.arange(10, dtype=np.float64)
        device.memcpy_h2d(handle, host, intervals=[(0, 3), (7, 10)])
        dev = device.array(handle)
        assert np.array_equal(dev[0:3], host[0:3])
        assert np.array_equal(dev[7:10], host[7:10])
        assert np.all(dev[3:7] == 0)   # untouched

    def test_d2h_copies_only_intervals(self, device):
        handle = device.alloc("a", (8,), np.float64)
        device.array(handle)[:] = 7.0
        host = np.zeros(8)
        device.memcpy_d2h(host, handle, intervals=[(2, 5)])
        assert np.all(host[2:5] == 7.0)
        assert np.all(host[:2] == 0) and np.all(host[5:] == 0)

    def test_event_records_batches_and_bytes(self, device):
        handle = device.alloc("a", (10,), np.float64)
        device.memcpy_h2d(handle, np.ones(10), intervals=[(0, 2), (5, 8)])
        event = device.events[-1]
        assert event.kind == "h2d"
        assert event.batches == 2
        assert event.nbytes == 5 * 8
        assert device.bytes_h2d == 5 * 8

    def test_batched_cost_formula(self, device):
        handle = device.alloc("a", (10,), np.float64)
        seconds = device.memcpy_h2d(handle, np.ones(10),
                                    intervals=[(0, 2), (5, 8)])
        assert seconds == pytest.approx(
            device.config.costs.transfer_time_batched(2, 40))

    def test_whole_array_single_batch_matches_classic(self, device):
        h1 = device.alloc("a", (16,), np.float64)
        h2 = device.alloc("b", (16,), np.float64)
        host = np.random.default_rng(0).random(16)
        classic = device.memcpy_h2d(h1, host)
        batched = device.memcpy_h2d(h2, host, intervals=[(0, 16)])
        assert batched == pytest.approx(classic)
        assert np.array_equal(device.array(h1), device.array(h2))

    @pytest.mark.parametrize("intervals", [
        [(3, 2)],            # empty/reversed
        [(0, 4), (2, 6)],    # overlapping
        [(5, 3)],            # stop < start
        [(0, 99)],           # out of bounds
    ])
    def test_bad_intervals_rejected(self, device, intervals):
        handle = device.alloc("a", (10,), np.float64)
        with pytest.raises(DeviceError):
            device.memcpy_h2d(handle, np.ones(10), intervals=intervals)


class _CountingPlan:
    """Chaos stand-in: counts transfer draws, never injects."""

    def __init__(self):
        self.draws = 0

    def draw(self, kind, site=""):
        if kind == "transfer":
            self.draws += 1
        return None


def test_chaos_drawn_once_per_batch():
    device = Device(DeviceConfig(delta_transfers=True))
    plan = _CountingPlan()
    device.attach_chaos(plan)
    handle = device.alloc("a", (10,), np.float64)
    device.memcpy_h2d(handle, np.ones(10), intervals=[(0, 2), (4, 6), (8, 10)])
    assert plan.draws == 3
    device.memcpy_h2d(handle, np.ones(10))   # classic path: one draw
    assert plan.draws == 4
