"""Benchmark suite correctness tests.

Every benchmark, in every variant (manually optimized, unoptimized,
naive-default), must produce the sequential reference results.  These are
the substrate guarantees the evaluation experiments stand on.
"""

import numpy as np
import pytest

from repro.bench import all_names, get
from repro.compiler.driver import CompilerOptions, compile_ast
from repro.interp import run_compiled, run_sequential

NAMES = all_names()


def assert_outputs_match(bench, compiled, params):
    seq = run_sequential(compiled, params=params)
    acc = run_compiled(compiled, params=params)
    for out in bench.outputs:
        ref = seq.env.load(out)
        got = acc.env.load(out)
        if isinstance(ref, np.ndarray):
            assert np.allclose(ref, got, rtol=1e-6, atol=1e-9), f"{bench.name}:{out}"
        else:
            assert np.isclose(float(ref), float(got), rtol=1e-6, atol=1e-9), (
                f"{bench.name}:{out}: {ref} vs {got}"
            )
    return acc


class TestRegistry:
    def test_twelve_benchmarks(self):
        assert len(NAMES) == 12

    def test_expected_names(self):
        assert NAMES == sorted(
            ["BACKPROP", "BFS", "CFD", "CG", "EP", "HOTSPOT",
             "JACOBI", "KMEANS", "LUD", "NW", "SPMUL", "SRAD"]
        )

    def test_lookup_case_insensitive(self):
        assert get("jacobi").name == "JACOBI"

    @pytest.mark.parametrize("name", NAMES)
    def test_sizes_available(self, name):
        bench = get(name)
        assert {"tiny", "small", "large"} <= set(bench.sizes)

    @pytest.mark.parametrize("name", NAMES)
    def test_params_deterministic(self, name):
        bench = get(name)
        p1, p2 = bench.params("tiny", seed=3), bench.params("tiny", seed=3)
        for key, val in p1.items():
            if isinstance(val, np.ndarray):
                assert np.array_equal(val, p2[key])
            else:
                assert val == p2[key]


class TestCorrectness:
    @pytest.mark.parametrize("name", NAMES)
    def test_optimized_matches_sequential(self, name):
        bench = get(name)
        assert_outputs_match(bench, bench.compile("optimized"), bench.params("tiny"))

    @pytest.mark.parametrize("name", NAMES)
    def test_unoptimized_matches_sequential(self, name):
        bench = get(name)
        assert_outputs_match(bench, bench.compile("unoptimized"), bench.params("tiny"))

    @pytest.mark.parametrize("name", NAMES)
    def test_naive_default_scheme_matches_sequential(self, name):
        bench = get(name)
        compiled = compile_ast(bench.naive_program(),
                               CompilerOptions(strict_validation=False))
        assert_outputs_match(bench, compiled, bench.params("tiny"))

    @pytest.mark.parametrize("name", NAMES)
    def test_device_memory_released(self, name):
        bench = get(name)
        acc = run_compiled(bench.compile("optimized"), params=bench.params("tiny"))
        assert acc.runtime.device.mem.live_allocations == 0


class TestTransferBehaviour:
    @pytest.mark.parametrize("name", NAMES)
    def test_unoptimized_transfers_at_least_as_much(self, name):
        bench = get(name)
        params = bench.params("tiny")
        opt = run_compiled(bench.compile("optimized"), params=params)
        unopt = run_compiled(bench.compile("unoptimized"), params=params)
        assert (
            unopt.runtime.device.total_transferred_bytes()
            >= opt.runtime.device.total_transferred_bytes()
        )

    @pytest.mark.parametrize("name", NAMES)
    def test_naive_transfers_strictly_more(self, name):
        bench = get(name)
        params = bench.params("tiny")
        opt = run_compiled(bench.compile("optimized"), params=params)
        naive_compiled = compile_ast(bench.naive_program(),
                                     CompilerOptions(strict_validation=False))
        naive = run_compiled(naive_compiled, params=params)
        assert (
            naive.runtime.device.total_transferred_bytes()
            > opt.runtime.device.total_transferred_bytes()
        )


class TestTableIICensus:
    """The kernel census must reproduce Table II's structural rows."""

    def _census(self):
        kernels = privates = reductions = 0
        for name in NAMES:
            compiled = get(name).compile("optimized")
            kernels += len(compiled.kernels)
            privates += sum(
                1 for r in compiled.regions.compute if r.directive.clause("private")
            )
            reductions += sum(1 for p in compiled.kernels.values() if p.reductions)
        return kernels, privates, reductions

    def test_46_kernels(self):
        assert self._census()[0] == 46

    def test_16_kernels_with_private_data(self):
        assert self._census()[1] == 16

    def test_4_kernels_with_reduction(self):
        assert self._census()[2] == 4
