"""Workload-generator tests: determinism and structural invariants."""

import numpy as np

from repro.bench import workloads


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = workloads.dense_matrix(5, 5, seed=7)
        b = workloads.dense_matrix(5, 5, seed=7)
        assert np.array_equal(a, b)

    def test_different_seed_different_data(self):
        a = workloads.dense_vector(100, seed=1)
        b = workloads.dense_vector(100, seed=2)
        assert not np.array_equal(a, b)


class TestCSR:
    def test_structure_consistent(self):
        rowptr, colidx, vals = workloads.csr_laplacian_like(32, seed=0)
        assert rowptr[0] == 0 and rowptr[-1] == len(colidx) == len(vals)
        assert np.all(np.diff(rowptr) >= 1)
        assert colidx.min() >= 0 and colidx.max() < 32

    def test_diagonally_dominant(self):
        n = 16
        rowptr, colidx, vals = workloads.csr_laplacian_like(n, seed=3)
        for i in range(n):
            row = slice(rowptr[i], rowptr[i + 1])
            diag = sum(v for c, v in zip(colidx[row], vals[row]) if c == i)
            off = sum(abs(v) for c, v in zip(colidx[row], vals[row]) if c != i)
            assert diag > off

    def test_diagonal_present_every_row(self):
        n = 16
        rowptr, colidx, _ = workloads.csr_laplacian_like(n, seed=5)
        for i in range(n):
            assert i in colidx[rowptr[i]:rowptr[i + 1]]


class TestGraph:
    def test_csr_adjacency_valid(self):
        offsets, edges = workloads.random_graph_csr(24, degree=3, seed=1)
        assert offsets[0] == 0 and offsets[-1] == len(edges)
        assert edges.min() >= 0 and edges.max() < 24

    def test_every_node_reachable_from_zero(self):
        n = 40
        offsets, edges = workloads.random_graph_csr(n, seed=2)
        seen = {0}
        frontier = [0]
        while frontier:
            nxt = []
            for u in frontier:
                for v in edges[offsets[u]:offsets[u + 1]]:
                    if v not in seen:
                        seen.add(int(v))
                        nxt.append(int(v))
            frontier = nxt
        assert len(seen) == n

    def test_no_self_loops(self):
        offsets, edges = workloads.random_graph_csr(20, seed=4)
        for i in range(20):
            assert i not in edges[offsets[i]:offsets[i + 1]]


class TestDomainInputs:
    def test_spd_matrix_is_spd(self):
        m = workloads.spd_matrix(12, seed=0)
        assert np.allclose(m, m.T)
        assert np.all(np.linalg.eigvalsh(m) > 0)

    def test_heat_grid_shapes(self):
        temp, power = workloads.heat_grid(8, seed=0)
        assert temp.shape == power.shape == (8, 8)
        assert np.all(power >= 0)

    def test_speckled_image_positive(self):
        img = workloads.speckled_image(16, seed=0)
        assert np.all(img > 0)

    def test_cluster_points_shape(self):
        pts = workloads.cluster_points(50, 3, 4, seed=0)
        assert pts.shape == (50, 3)

    def test_sequences_alphabet(self):
        a, b = workloads.sequences(30, seed=0)
        assert set(np.unique(a)) <= {0, 1, 2, 3}
        assert len(a) == len(b) == 30

    def test_blosum_symmetric_positive_diagonal(self):
        m = workloads.blosum_like(seed=0)
        assert np.allclose(m, m.T)
        assert np.all(np.diag(m) > 0)
